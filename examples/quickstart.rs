//! Quickstart: manage a small heterogeneous cluster with Quasar.
//!
//! Builds the paper's 40-server local cluster, bootstraps the offline
//! classification history, submits one Hadoop-style analytics job and one
//! memcached-style service — each with a *performance target*, never a
//! reservation — and reports how Quasar did.
//!
//! Run with: `cargo run --release --example quickstart`

use quasar::cluster::{ClusterSpec, JobState, SimConfig, Simulation};
use quasar::core::{QuasarConfig, QuasarManager};
use quasar::workloads::generate::Generator;
use quasar::workloads::{
    Dataset, LoadPattern, PlatformCatalog, Priority, QosTarget, WorkloadClass,
};

fn main() {
    // The ten platforms of Table 1 (dual-core Atoms through 24-core
    // Xeons), four servers each.
    let catalog = PlatformCatalog::local();

    // Offline bootstrap: exhaustively profile a couple dozen training
    // workloads so collaborative filtering has dense rows to lean on.
    // (Expensive; real deployments do this once per hardware generation.)
    println!("bootstrapping offline classification history...");
    let manager = QuasarManager::bootstrap(&catalog, QuasarConfig::default());

    let mut sim = Simulation::new(
        ClusterSpec::uniform(catalog.clone(), 4),
        Box::new(manager),
        SimConfig::default(),
    );

    // Workloads express *what* they need, not how many servers.
    let mut generator = Generator::new(catalog, 42);
    let job = generator.analytics_job(
        WorkloadClass::Hadoop,
        "recommender",
        Dataset::new("netflix", 10.0, 1.2),
        4,
        1_800.0,
        Priority::Guaranteed,
    );
    let job_id = job.id();
    let job_target = job.spec().target;

    let service = generator.service(
        WorkloadClass::Memcached,
        "session-cache",
        32.0,
        LoadPattern::Flat { qps: 80_000.0 },
        Priority::Guaranteed,
    );
    let service_id = service.id();

    println!("submitting {} and {}", job.spec(), service.spec());
    sim.submit_at(job, 0.0);
    sim.submit_at(service, 10.0);

    // Fill the leftover capacity with best-effort batch work.
    for (i, filler) in generator.best_effort_fill(10).into_iter().enumerate() {
        sim.submit_at(filler, 20.0 + i as f64 * 5.0);
    }

    sim.run_until(3.0 * 3_600.0);

    // --- Results ---
    let world = sim.world();
    assert_eq!(
        world.state(job_id),
        JobState::Completed,
        "job should finish"
    );
    let record = world
        .completions()
        .into_iter()
        .find(|r| r.id == job_id)
        .expect("job record");
    let QosTarget::CompletionTime { seconds: target } = job_target else {
        unreachable!()
    };
    println!(
        "analytics job: target {:.0}s, executed in {:.0}s ({:.1}% from target, {:.0}s of profiling)",
        target,
        record.execution_s().unwrap(),
        (record.execution_s().unwrap() / target - 1.0) * 100.0,
        record.profiling_s,
    );

    let qos = world
        .qos_records()
        .into_iter()
        .find(|r| r.id == service_id)
        .expect("service record");
    println!(
        "service: served {:.1}% of offered load, {:.1}% of queries within the 200us p99 bound",
        qos.served_fraction() * 100.0,
        qos.qos_fraction() * 100.0,
    );
    println!(
        "cluster: {:.1}% mean CPU utilization over the run",
        world.metrics().summary().mean_cpu * 100.0
    );
}
