//! A latency-critical web service under a traffic spike (the Fig. 8
//! scenario): Quasar sizes the service from its QPS/latency target,
//! right-sizes as load changes, and absorbs a 4x spike by scaling up in
//! place before scaling out — while best-effort work soaks up the idle
//! capacity.
//!
//! Run with: `cargo run --release --example latency_service`

use quasar::cluster::{ClusterSpec, Observation, SimConfig, Simulation};
use quasar::core::{QuasarConfig, QuasarManager};
use quasar::workloads::generate::Generator;
use quasar::workloads::{LoadPattern, PlatformCatalog, Priority, WorkloadClass};

fn main() {
    let catalog = PlatformCatalog::local();
    println!("bootstrapping offline history...");
    let manager = QuasarManager::bootstrap(&catalog, QuasarConfig::default());
    let stats = manager.stats_handle();

    let mut sim = Simulation::new(
        ClusterSpec::uniform(catalog.clone(), 4),
        Box::new(manager),
        SimConfig::default(),
    );

    let horizon = 7_200.0;
    let load = LoadPattern::Spike {
        base_qps: 60_000.0,
        spike_qps: 240_000.0,
        start_s: horizon * 0.5,
        duration_s: horizon * 0.2,
    };
    let mut generator = Generator::new(catalog, 0x11);
    let service = generator.service(
        WorkloadClass::Webserver,
        "hotcrp",
        6.0,
        load,
        Priority::Guaranteed,
    );
    let id = service.id();
    println!("submitting {} (load spikes 4x mid-run)", service.spec());
    sim.submit_at(service, 0.0);
    for (i, filler) in generator.best_effort_fill(25).into_iter().enumerate() {
        sim.submit_at(filler, 30.0 + i as f64 * 20.0);
    }

    println!(
        "{:>6}  {:>9}  {:>9}  {:>7}  {:>9}",
        "t(min)", "offered", "achieved", "cores", "p99(us)"
    );
    let mut t = 0.0;
    while t < horizon {
        t += 300.0;
        sim.run_until(t);
        let world = sim.world();
        let (achieved, p99) = match world.observation(id) {
            Some(Observation::Service(o)) => (o.achieved_qps, o.p99_latency_us),
            _ => (0.0, f64::NAN),
        };
        let cores = world.placement(id).map(|p| p.total_cores()).unwrap_or(0);
        println!(
            "{:>6.0}  {:>9.0}  {:>9.0}  {:>7}  {:>9.0}",
            t / 60.0,
            load.qps_at(t),
            achieved,
            cores,
            p99
        );
    }

    let record = &sim.world().qos_records()[0];
    println!(
        "\nqueries meeting the 100ms p99 QoS: {:.1}%  (windows met: {}/{})",
        record.qos_fraction() * 100.0,
        record.windows_met,
        record.windows_total
    );
    let s = stats.lock().unwrap();
    println!(
        "manager activity: {} classifications, {} adaptations, {} best-effort evictions",
        s.classifications, s.adaptations, s.evictions
    );

    // The decision journal explains how the spike was absorbed.
    println!("\nlast decisions for the service:");
    for (t, event) in sim
        .world()
        .journal()
        .for_workload(id)
        .iter()
        .rev()
        .take(8)
        .rev()
    {
        println!("  [{:>7.0}s] {event}", t);
    }
}
