//! A tour of the §4.4 extension features: cost targets, predictive
//! scaling, resource partitioning, and manager failover.
//!
//! Run with: `cargo run --release --example extensions_tour`

use quasar::cluster::{ClusterSpec, SimConfig, Simulation};
use quasar::core::{HistorySet, QuasarConfig, QuasarManager};
use quasar::workloads::generate::Generator;
use quasar::workloads::{LoadPattern, PlatformCatalog, Priority, WorkloadClass};

fn serve(config: QuasarConfig, cost_limit: Option<f64>, history: &HistorySet) -> (f64, u32) {
    let catalog = PlatformCatalog::local();
    let manager = QuasarManager::with_history(history.clone(), config);
    let mut sim = Simulation::new(
        ClusterSpec::uniform(catalog.clone(), 4),
        Box::new(manager),
        SimConfig::default(),
    );
    let mut generator = Generator::new(catalog, 0xE57);
    let mut service = generator.service(
        WorkloadClass::Webserver,
        "api-tier",
        6.0,
        LoadPattern::Fluctuating {
            base_qps: 200_000.0,
            amplitude_qps: 150_000.0,
            period_s: 1_800.0,
        },
        Priority::Guaranteed,
    );
    if let Some(limit) = cost_limit {
        service = service.with_cost_limit(limit);
    }
    sim.submit_at(service, 0.0);
    sim.run_until(3_600.0);
    let record = &sim.world().qos_records()[0];
    (record.served_fraction(), record.peak_cores)
}

fn main() {
    let catalog = PlatformCatalog::local();
    println!("bootstrapping offline history...");
    let history = HistorySet::bootstrap(&catalog, 16, 0xE57);

    // --- Cost targets (§4.4): "a user could also specify a cost
    //     constraint ... a limit for resource allocation". ---
    let (served, cores) = serve(QuasarConfig::default(), None, &history);
    println!(
        "unconstrained:    served {:5.1}% with up to {cores} cores",
        served * 100.0
    );
    let (served, cores) = serve(QuasarConfig::default(), Some(0.25), &history);
    println!(
        "capped at $0.25/h: served {:5.1}% with up to {cores} cores",
        served * 100.0
    );

    // --- Predictive scaling (§4.1 future work). ---
    let (reactive, _) = serve(QuasarConfig::default(), None, &history);
    let (predictive, _) = serve(QuasarConfig::predictive(), None, &history);
    println!(
        "reactive scaling served {:5.1}%; predictive served {:5.1}%",
        reactive * 100.0,
        predictive * 100.0
    );

    // --- Resource partitioning (§4.4): enabled managers flip hardware
    //     isolation on when interference dominates. ---
    let partitioned = QuasarConfig {
        resource_partitioning: true,
        ..QuasarConfig::default()
    };
    let (served, _) = serve(partitioned, None, &history);
    println!(
        "with partitioning available: served {:5.1}%",
        served * 100.0
    );

    // --- Fault tolerance (§4.4): master-slave mirroring. ---
    let manager = QuasarManager::with_history(history.clone(), QuasarConfig::default());
    let snapshot = manager.snapshot();
    println!(
        "manager snapshot: {} workloads, ~{} bytes of replicated state",
        snapshot.workload_count(),
        snapshot.approx_bytes()
    );
    let _standby = QuasarManager::restore(history, QuasarConfig::default(), &snapshot);
    println!("hot-standby restored and ready for failover");
}
