//! A shared analytics cluster (the Fig. 6 scenario): Hadoop, Storm, and
//! Spark jobs arrive every few seconds while best-effort single-node work
//! fills leftover capacity. Runs the same workload trace under the
//! framework self-schedulers + least-loaded placement and under Quasar,
//! then compares per-job execution times and cluster utilization.
//!
//! Run with: `cargo run --release --example analytics_cluster`

use std::collections::HashMap;

use quasar::baselines::{AllocationPolicy, AssignmentPolicy, BaselineManager, UserErrorModel};
use quasar::cluster::{ClusterSpec, Manager, SimConfig, Simulation};
use quasar::core::{HistorySet, QuasarConfig, QuasarManager};
use quasar::workloads::generate::Generator;
use quasar::workloads::{PlatformCatalog, WorkloadId};

fn run_trace(manager: Box<dyn Manager>, label: &str) -> (HashMap<WorkloadId, f64>, f64) {
    let catalog = PlatformCatalog::local();
    let mut sim = Simulation::new(
        ClusterSpec::uniform(catalog.clone(), 4),
        manager,
        SimConfig::default(),
    );
    // Same generator seed in both runs → identical workloads.
    let mut generator = Generator::new(catalog, 7);
    let jobs = generator.batch_mix(6, 2, 2);
    let ids: Vec<WorkloadId> = jobs.iter().map(|j| j.id()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        sim.submit_at(job, i as f64 * 5.0);
    }
    for (i, filler) in generator.best_effort_fill(30).into_iter().enumerate() {
        sim.submit_at(filler, i as f64);
    }

    let mut t = 0.0;
    while t < 40_000.0 {
        t += 600.0;
        sim.run_until(t);
        if ids
            .iter()
            .all(|&id| sim.world().state(id) == quasar::cluster::JobState::Completed)
        {
            break;
        }
    }

    let mut executions = HashMap::new();
    let mut busy_until = 0.0_f64;
    for record in sim.world().completions() {
        if record.best_effort {
            continue;
        }
        if let Some(exec) = record.execution_s() {
            executions.insert(record.id, exec);
            busy_until = busy_until.max(record.finished_s.unwrap_or(0.0));
        }
    }
    let utilization = sim
        .world()
        .metrics()
        .summary_between(0.0, busy_until.max(1.0))
        .mean_cpu;
    println!(
        "{label}: {} guaranteed jobs finished, {:.1}% mean CPU utilization while busy",
        executions.len(),
        utilization * 100.0
    );
    (executions, utilization)
}

fn main() {
    let catalog = PlatformCatalog::local();
    println!("bootstrapping offline history...");
    let history = HistorySet::bootstrap(&catalog, 16, 0xA11);

    let (baseline, _) = run_trace(
        Box::new(BaselineManager::new(
            AllocationPolicy::Reservation(UserErrorModel::exact()),
            AssignmentPolicy::LeastLoaded,
            None,
            1,
        )),
        "framework schedulers + least-loaded",
    );
    let (quasar, _) = run_trace(
        Box::new(QuasarManager::with_history(
            history,
            QuasarConfig::default(),
        )),
        "quasar",
    );

    let mut speedups: Vec<f64> = Vec::new();
    for (id, base) in &baseline {
        if let Some(q) = quasar.get(id) {
            speedups.push((base - q) / base * 100.0);
        }
    }
    speedups.sort_by(f64::total_cmp);
    let mean = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    println!(
        "per-job execution-time reduction under quasar: mean {:.1}% (min {:.1}%, max {:.1}%)",
        mean,
        speedups.first().copied().unwrap_or(0.0),
        speedups.last().copied().unwrap_or(0.0),
    );
}
