//! Datacenter scale (the Fig. 11 scenario, shrunk): a mixed fleet of
//! analytics jobs, latency-critical services, and single-node batch work
//! arrives every couple of seconds on an EC2-style heterogeneous cluster.
//! Prints performance normalized to each workload's target and the
//! steady-state utilization Quasar achieves.
//!
//! Run with: `cargo run --release --example datacenter_scale`

use quasar::cluster::{ClusterSpec, SimConfig, Simulation};
use quasar::core::{QuasarConfig, QuasarManager};
use quasar::workloads::generate::Generator;
use quasar::workloads::{PlatformCatalog, QosTarget};

fn main() {
    let catalog = PlatformCatalog::ec2();
    println!(
        "cluster: {} servers across {} EC2-style instance types",
        ClusterSpec::uniform(catalog.clone(), 8).total_servers(),
        catalog.len()
    );
    println!("bootstrapping offline history...");
    let manager = QuasarManager::bootstrap(&catalog, QuasarConfig::default());

    let mut sim = Simulation::new(
        ClusterSpec::uniform(catalog.clone(), 8),
        Box::new(manager),
        SimConfig {
            metrics_interval_s: 60.0,
            ..SimConfig::default()
        },
    );

    let mut generator = Generator::new(catalog, 0xDC);
    let fleet = generator.mixed_fleet(48);
    let ids: Vec<_> = fleet.iter().map(|w| (w.id(), w.spec().target)).collect();
    for (i, w) in fleet.into_iter().enumerate() {
        sim.submit_at(w, i as f64 * 2.0);
    }
    let arrival_end = ids.len() as f64 * 2.0;
    sim.run_until(arrival_end + 8_000.0);

    let world = sim.world();
    let completions = world.completions();
    let qos = world.qos_records();
    let mut scores = Vec::new();
    for (id, target) in &ids {
        let score = match target {
            QosTarget::CompletionTime { seconds } => completions
                .iter()
                .find(|r| r.id == *id)
                .and_then(|r| r.execution_s())
                .map(|exec| (seconds / exec).min(1.0))
                .unwrap_or(0.0),
            QosTarget::Ips { ips } => completions
                .iter()
                .find(|r| r.id == *id)
                .and_then(|r| r.achieved_rate())
                .map(|rate| (rate / ips).min(1.0))
                .unwrap_or(0.0),
            QosTarget::Throughput { .. } => qos
                .iter()
                .find(|r| r.id == *id)
                .map(|r| r.qos_fraction())
                .unwrap_or(0.0),
        };
        scores.push(score);
    }
    scores.sort_by(f64::total_cmp);

    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    println!(
        "performance normalized to target: mean {:.2}, median {:.2}, worst {:.2}",
        mean,
        scores[scores.len() / 2],
        scores.first().copied().unwrap_or(0.0)
    );
    let summary = world
        .metrics()
        .summary_between(arrival_end * 0.5, world.now() * 0.9);
    println!(
        "steady-state utilization: {:.1}% CPU used, {:.1}% allocated",
        summary.mean_cpu * 100.0,
        summary.mean_allocated_cpu * 100.0
    );
}
