//! iBench-style contention microbenchmarks.

use crate::pressure::PressureVector;
use crate::resource::SharedResource;

/// A synthetic contention source that pressures exactly one shared
/// resource at a tunable intensity, mirroring the iBench microbenchmarks
/// the paper injects during interference classification (§3.2) and
/// in-place phase detection (§4.1).
///
/// # Examples
///
/// ```
/// use quasar_interference::{Microbenchmark, SharedResource};
///
/// let mut bench = Microbenchmark::new(SharedResource::MemoryBandwidth, 10.0);
/// bench.ramp(25.0);
/// assert_eq!(bench.intensity(), 35.0);
/// assert_eq!(
///     bench.caused_pressure().get(SharedResource::MemoryBandwidth),
///     35.0,
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Microbenchmark {
    resource: SharedResource,
    intensity: f64,
}

impl Microbenchmark {
    /// Creates a microbenchmark for `resource` at the given intensity
    /// (clamped to `[0, 100]`).
    pub fn new(resource: SharedResource, intensity: f64) -> Microbenchmark {
        Microbenchmark {
            resource,
            intensity: intensity.clamp(0.0, PressureVector::MAX),
        }
    }

    /// The resource this microbenchmark contends on.
    pub fn resource(&self) -> SharedResource {
        self.resource
    }

    /// Current contention intensity in `[0, 100]`.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    /// Increases intensity by `step` (clamped to 100).
    pub fn ramp(&mut self, step: f64) {
        self.intensity = (self.intensity + step).clamp(0.0, PressureVector::MAX);
    }

    /// Whether the intensity has reached the maximum.
    pub fn saturated(&self) -> bool {
        self.intensity >= PressureVector::MAX
    }

    /// The pressure this microbenchmark exerts on its neighbours: its
    /// intensity in its target resource, zero elsewhere.
    pub fn caused_pressure(&self) -> PressureVector {
        let mut p = PressureVector::zero();
        p.set(self.resource, self.intensity);
        p
    }

    /// One microbenchmark per shared resource at the given intensity.
    pub fn full_suite(intensity: f64) -> Vec<Microbenchmark> {
        SharedResource::ALL
            .into_iter()
            .map(|r| Microbenchmark::new(r, intensity))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caused_pressure_targets_single_resource() {
        let b = Microbenchmark::new(SharedResource::DiskIo, 42.0);
        let p = b.caused_pressure();
        assert_eq!(p.get(SharedResource::DiskIo), 42.0);
        assert_eq!(p.total(), 42.0);
    }

    #[test]
    fn ramp_saturates() {
        let mut b = Microbenchmark::new(SharedResource::Cpu, 90.0);
        b.ramp(50.0);
        assert!(b.saturated());
        assert_eq!(b.intensity(), 100.0);
    }

    #[test]
    fn full_suite_covers_all_resources() {
        let suite = Microbenchmark::full_suite(25.0);
        assert_eq!(suite.len(), SharedResource::ALL.len());
        for (bench, resource) in suite.iter().zip(SharedResource::ALL) {
            assert_eq!(bench.resource(), resource);
            assert_eq!(bench.intensity(), 25.0);
        }
    }
}
