//! Per-workload interference profiles and the slowdown law.

use crate::pressure::PressureVector;
use crate::resource::SharedResource;

/// Minimum multiplicative penalty from contention in one resource.
///
/// Calibrated so that a workload that is maximally sensitive to two or three
/// resources can see an order-of-magnitude slowdown (Figure 2 of the paper
/// shows Hadoop slowing down by up to 10x under adversarial interference).
const MIN_RESOURCE_PENALTY: f64 = 0.30;

/// Overall floor for the combined penalty across all resources.
const MIN_TOTAL_PENALTY: f64 = 0.05;

/// The slowdown law as a free function: multiplicative penalty for a
/// workload with the given tolerated-pressure vector under `external`
/// pressure. [`InterferenceProfile::penalty`] delegates here; schedulers
/// that *estimate* tolerances (Quasar's interference classification) use
/// this same law on their estimates, mirroring how the real system assumes
/// a known QoS-degradation model past the measured sensitivity point.
pub fn penalty_for(tolerated: &PressureVector, external: &PressureVector) -> f64 {
    let mut total = 1.0;
    for r in SharedResource::ALL {
        total *= resource_penalty_for(tolerated.get(r), external.get(r));
    }
    total.max(MIN_TOTAL_PENALTY)
}

fn resource_penalty_for(tol: f64, pressure: f64) -> f64 {
    if pressure <= tol {
        return 1.0;
    }
    let span = (PressureVector::MAX - tol).max(1e-9);
    let overload = ((pressure - tol) / span).clamp(0.0, 1.0);
    1.0 - overload * (1.0 - MIN_RESOURCE_PENALTY)
}

/// How a workload interacts with contention in shared resources: the
/// pressure it *tolerates* before slowing down, and the pressure it
/// *causes* for its neighbours.
///
/// This is the ground-truth counterpart of the sensitivity information that
/// Quasar's interference classification estimates (paper §3.2, "interference
/// caused and tolerated").
///
/// # Examples
///
/// ```
/// use quasar_interference::{InterferenceProfile, PressureVector, SharedResource};
///
/// let profile = InterferenceProfile::new(
///     PressureVector::uniform(50.0),
///     PressureVector::uniform(20.0),
/// );
/// // No pressure, no slowdown:
/// assert_eq!(profile.penalty(&PressureVector::zero()), 1.0);
/// // Pressure past the tolerance point slows the workload down:
/// assert!(profile.penalty(&PressureVector::uniform(90.0)) < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceProfile {
    tolerated: PressureVector,
    caused: PressureVector,
}

impl InterferenceProfile {
    /// Creates a profile from tolerated and caused pressure vectors.
    pub fn new(tolerated: PressureVector, caused: PressureVector) -> InterferenceProfile {
        InterferenceProfile { tolerated, caused }
    }

    /// A profile that neither causes nor suffers from interference.
    pub fn insensitive() -> InterferenceProfile {
        InterferenceProfile {
            tolerated: PressureVector::uniform(PressureVector::MAX),
            caused: PressureVector::zero(),
        }
    }

    /// The pressure this workload tolerates in each resource before its
    /// performance degrades past the QoS point.
    pub fn tolerated(&self) -> &PressureVector {
        &self.tolerated
    }

    /// The pressure this workload causes in each resource when running at
    /// full allocation.
    pub fn caused(&self) -> &PressureVector {
        &self.caused
    }

    /// Mutable access to the tolerated-pressure vector.
    pub fn tolerated_mut(&mut self) -> &mut PressureVector {
        &mut self.tolerated
    }

    /// Mutable access to the caused-pressure vector.
    pub fn caused_mut(&mut self) -> &mut PressureVector {
        &mut self.caused
    }

    /// Multiplicative performance penalty in `(0, 1]` under external
    /// pressure.
    ///
    /// Per resource, pressure at or below the tolerance threshold costs
    /// nothing; past the threshold the penalty decays linearly to a
    /// per-resource floor (0.30) at full pressure. Penalties multiply
    /// across resources (contention effects compound) and are floored
    /// overall at 0.05. Delegates to [`penalty_for`].
    pub fn penalty(&self, external: &PressureVector) -> f64 {
        penalty_for(&self.tolerated, external)
    }

    /// Penalty contribution of a single resource at the given pressure.
    pub fn resource_penalty(&self, r: SharedResource, pressure: f64) -> f64 {
        resource_penalty_for(self.tolerated.get(r), pressure)
    }

    /// The smallest pressure in resource `r` at which the penalty from that
    /// resource alone drops below `1 - qos_loss` (e.g. `qos_loss = 0.05`
    /// for the paper's 5% acceptable degradation point).
    ///
    /// This is what the profiler's microbenchmark ramp-up observes; it
    /// returns 100 when even full pressure stays within the QoS budget.
    pub fn sensitivity_point(&self, r: SharedResource, qos_loss: f64) -> f64 {
        let tol = self.tolerated.get(r);
        let span = PressureVector::MAX - tol;
        if span <= 0.0 {
            return PressureVector::MAX;
        }
        let overload = qos_loss / (1.0 - MIN_RESOURCE_PENALTY);
        (tol + overload * span).min(PressureVector::MAX)
    }

    /// Whether this workload, under `external` pressure, stays within a
    /// `qos_loss` fraction of its isolated performance.
    pub fn within_qos(&self, external: &PressureVector, qos_loss: f64) -> bool {
        self.penalty(external) >= 1.0 - qos_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(tol: f64) -> InterferenceProfile {
        InterferenceProfile::new(PressureVector::uniform(tol), PressureVector::zero())
    }

    #[test]
    fn penalty_is_one_below_tolerance() {
        let p = profile(60.0);
        assert_eq!(p.penalty(&PressureVector::uniform(60.0)), 1.0);
    }

    #[test]
    fn penalty_decreases_monotonically_until_floor() {
        let p = profile(20.0);
        let mut last = 1.0;
        for pressure in [30.0, 50.0, 70.0, 90.0, 100.0] {
            let pen = p.penalty(&PressureVector::uniform(pressure));
            assert!(
                pen < last || pen <= 0.05 + 1e-12,
                "penalty must strictly decrease past tolerance until the floor"
            );
            last = pen;
        }
        assert!(
            last <= 0.05 + 1e-12,
            "uniform full pressure reaches the floor"
        );
    }

    #[test]
    fn penalty_has_floor() {
        let p = profile(0.0);
        let pen = p.penalty(&PressureVector::uniform(100.0));
        assert!(pen >= MIN_TOTAL_PENALTY);
    }

    #[test]
    fn insensitive_profile_never_slows() {
        let p = InterferenceProfile::insensitive();
        assert_eq!(p.penalty(&PressureVector::uniform(100.0)), 1.0);
    }

    #[test]
    fn sensitivity_point_matches_penalty() {
        let p = profile(40.0);
        let point = p.sensitivity_point(SharedResource::LlcCapacity, 0.05);
        let pen = p.resource_penalty(SharedResource::LlcCapacity, point);
        assert!((pen - 0.95).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_point_saturates_at_max() {
        let p = profile(100.0);
        assert_eq!(
            p.sensitivity_point(SharedResource::Cpu, 0.05),
            PressureVector::MAX
        );
    }

    #[test]
    fn within_qos_respects_loss_budget() {
        let p = profile(50.0);
        assert!(p.within_qos(&PressureVector::uniform(50.0), 0.05));
        assert!(!p.within_qos(&PressureVector::uniform(100.0), 0.05));
    }
}
