//! Pressure vectors over the shared resources.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use crate::resource::{SharedResource, RESOURCE_COUNT};

/// Pressure (contention intensity) in each shared resource, on a 0–100
/// scale, mirroring the tunable intensity of the iBench microbenchmarks.
///
/// Values are clamped to `[0, 100]` on every mutation, so a
/// `PressureVector` is always well-formed.
///
/// # Examples
///
/// ```
/// use quasar_interference::{PressureVector, SharedResource};
///
/// let mut p = PressureVector::zero();
/// p.set(SharedResource::MemoryBandwidth, 55.0);
/// assert_eq!(p.get(SharedResource::MemoryBandwidth), 55.0);
/// assert_eq!(p.total(), 55.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PressureVector {
    values: [f64; RESOURCE_COUNT],
}

impl PressureVector {
    /// Maximum pressure in a single resource.
    pub const MAX: f64 = 100.0;

    /// A vector with zero pressure everywhere.
    pub fn zero() -> PressureVector {
        PressureVector::default()
    }

    /// A vector with the same pressure `value` in every resource.
    ///
    /// `value` is clamped to `[0, 100]`.
    pub fn uniform(value: f64) -> PressureVector {
        PressureVector {
            values: [clamp(value); RESOURCE_COUNT],
        }
    }

    /// Builds a vector from a function of each resource.
    pub fn from_fn(mut f: impl FnMut(SharedResource) -> f64) -> PressureVector {
        let mut v = PressureVector::zero();
        for r in SharedResource::ALL {
            v.set(r, f(r));
        }
        v
    }

    /// Pressure in resource `r`.
    pub fn get(&self, r: SharedResource) -> f64 {
        self.values[r.index()]
    }

    /// Sets pressure in resource `r`, clamping to `[0, 100]`.
    pub fn set(&mut self, r: SharedResource, value: f64) {
        self.values[r.index()] = clamp(value);
    }

    /// Adds `delta` to the pressure in resource `r`, clamping to `[0, 100]`.
    pub fn bump(&mut self, r: SharedResource, delta: f64) {
        self.set(r, self.get(r) + delta);
    }

    /// Sum of pressure across all resources.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The largest single-resource pressure.
    pub fn max_component(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Iterates over `(resource, pressure)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (SharedResource, f64)> + '_ {
        SharedResource::ALL
            .into_iter()
            .map(move |r| (r, self.get(r)))
    }

    /// Element-wise maximum of two vectors.
    pub fn component_max(&self, other: &PressureVector) -> PressureVector {
        PressureVector::from_fn(|r| self.get(r).max(other.get(r)))
    }

    /// Whether every component is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0.0)
    }

    /// Scales every component by `factor` (clamping each to `[0, 100]`).
    pub fn scaled(&self, factor: f64) -> PressureVector {
        PressureVector::from_fn(|r| self.get(r) * factor)
    }
}

fn clamp(value: f64) -> f64 {
    if value.is_nan() {
        0.0
    } else {
        value.clamp(0.0, PressureVector::MAX)
    }
}

impl Add for PressureVector {
    type Output = PressureVector;

    fn add(self, rhs: PressureVector) -> PressureVector {
        PressureVector::from_fn(|r| self.get(r) + rhs.get(r))
    }
}

impl AddAssign for PressureVector {
    fn add_assign(&mut self, rhs: PressureVector) {
        *self = *self + rhs;
    }
}

impl Sub for PressureVector {
    type Output = PressureVector;

    fn sub(self, rhs: PressureVector) -> PressureVector {
        PressureVector::from_fn(|r| self.get(r) - rhs.get(r))
    }
}

impl Mul<f64> for PressureVector {
    type Output = PressureVector;

    fn mul(self, rhs: f64) -> PressureVector {
        self.scaled(rhs)
    }
}

impl fmt::Display for PressureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (r, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={:.0}", r, v)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_total() {
        let p = PressureVector::uniform(10.0);
        assert_eq!(p.total(), 100.0);
        assert_eq!(p.max_component(), 10.0);
    }

    #[test]
    fn set_clamps() {
        let mut p = PressureVector::zero();
        p.set(SharedResource::Cpu, 150.0);
        assert_eq!(p.get(SharedResource::Cpu), 100.0);
        p.set(SharedResource::Cpu, -5.0);
        assert_eq!(p.get(SharedResource::Cpu), 0.0);
        p.set(SharedResource::Cpu, f64::NAN);
        assert_eq!(p.get(SharedResource::Cpu), 0.0);
    }

    #[test]
    fn addition_saturates() {
        let a = PressureVector::uniform(70.0);
        let b = PressureVector::uniform(70.0);
        assert_eq!((a + b).max_component(), 100.0);
    }

    #[test]
    fn subtraction_floors_at_zero() {
        let a = PressureVector::uniform(10.0);
        let b = PressureVector::uniform(30.0);
        assert!((a - b).is_zero());
    }

    #[test]
    fn component_max_takes_larger() {
        let mut a = PressureVector::zero();
        a.set(SharedResource::DiskIo, 40.0);
        let mut b = PressureVector::zero();
        b.set(SharedResource::DiskIo, 20.0);
        b.set(SharedResource::Network, 30.0);
        let m = a.component_max(&b);
        assert_eq!(m.get(SharedResource::DiskIo), 40.0);
        assert_eq!(m.get(SharedResource::Network), 30.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!PressureVector::zero().to_string().is_empty());
    }
}
