//! The shared resources in which co-located workloads interfere.

use std::fmt;

/// Number of [`SharedResource`] variants.
pub const RESOURCE_COUNT: usize = 10;

/// A shared hardware resource that co-located workloads contend on.
///
/// The variants follow the interference patterns of Table 1 in the paper
/// (memory, L1I cache, LL cache, disk I/O, network, L2 cache, CPU,
/// prefetchers) extended with memory capacity and TLB to reach the "ten
/// sources of interference" the paper sizes its per-workload state for.
///
/// # Examples
///
/// ```
/// use quasar_interference::SharedResource;
/// assert_eq!(SharedResource::ALL.len(), 10);
/// assert_eq!(SharedResource::Cpu.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SharedResource {
    /// Core compute contention (SMT pipelines, shared FUs, power budget).
    Cpu,
    /// L1 instruction cache footprint.
    L1i,
    /// Private/shared L2 cache capacity.
    L2,
    /// Last-level cache capacity.
    LlcCapacity,
    /// Memory bandwidth.
    MemoryBandwidth,
    /// Memory capacity (thrashing when oversubscribed).
    MemoryCapacity,
    /// Hardware prefetcher contention.
    Prefetch,
    /// Disk/storage I/O bandwidth.
    DiskIo,
    /// Network bandwidth.
    Network,
    /// TLB capacity.
    Tlb,
}

impl SharedResource {
    /// All shared resources, in index order.
    pub const ALL: [SharedResource; RESOURCE_COUNT] = [
        SharedResource::Cpu,
        SharedResource::L1i,
        SharedResource::L2,
        SharedResource::LlcCapacity,
        SharedResource::MemoryBandwidth,
        SharedResource::MemoryCapacity,
        SharedResource::Prefetch,
        SharedResource::DiskIo,
        SharedResource::Network,
        SharedResource::Tlb,
    ];

    /// The dense index of this resource within [`SharedResource::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The resource at dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= RESOURCE_COUNT`.
    pub fn from_index(index: usize) -> SharedResource {
        Self::ALL[index]
    }

    /// A short, stable, human-readable name (used in experiment tables).
    pub fn name(self) -> &'static str {
        match self {
            SharedResource::Cpu => "cpu",
            SharedResource::L1i => "l1i",
            SharedResource::L2 => "l2",
            SharedResource::LlcCapacity => "llc",
            SharedResource::MemoryBandwidth => "membw",
            SharedResource::MemoryCapacity => "memcap",
            SharedResource::Prefetch => "prefetch",
            SharedResource::DiskIo => "disk",
            SharedResource::Network => "network",
            SharedResource::Tlb => "tlb",
        }
    }
}

impl fmt::Display for SharedResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, r) in SharedResource::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(SharedResource::from_index(i), *r);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SharedResource::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RESOURCE_COUNT);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SharedResource::LlcCapacity.to_string(), "llc");
    }
}
