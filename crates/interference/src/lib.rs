//! Shared-resource interference modeling for the Quasar reproduction.
//!
//! The Quasar paper (ASPLOS'14, §3.2) classifies workloads by the
//! interference they *cause* and *tolerate* in shared resources, using the
//! iBench contention microbenchmarks to inject tunable pressure into one
//! resource at a time. This crate provides the equivalent building blocks
//! for the simulated cluster:
//!
//! * [`SharedResource`] — the ten shared resources considered for
//!   interference (Table 1 of the paper lists the interference patterns;
//!   the paper cites "tens of sources", we model ten).
//! * [`PressureVector`] — pressure (0–100) in each shared resource.
//! * [`InterferenceProfile`] — per-workload *tolerated* and *caused*
//!   pressure, plus the slowdown law that converts external pressure into a
//!   performance penalty.
//! * [`Microbenchmark`] — a synthetic contention source that generates
//!   pressure in exactly one resource at a tunable intensity, used by the
//!   profiler for interference classification and in-place phase detection.
//!
//! # Examples
//!
//! ```
//! use quasar_interference::{InterferenceProfile, Microbenchmark, PressureVector, SharedResource};
//!
//! // A workload that tolerates little LLC pressure.
//! let mut tolerated = PressureVector::uniform(80.0);
//! tolerated.set(SharedResource::LlcCapacity, 20.0);
//! let profile = InterferenceProfile::new(tolerated, PressureVector::uniform(10.0));
//!
//! let bench = Microbenchmark::new(SharedResource::LlcCapacity, 60.0);
//! let penalty = profile.penalty(&bench.caused_pressure());
//! assert!(penalty < 1.0, "pressure above tolerance must slow the workload down");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod microbench;
mod pressure;
mod profile;
mod resource;

pub use microbench::Microbenchmark;
pub use pressure::PressureVector;
pub use profile::{penalty_for, InterferenceProfile};
pub use resource::SharedResource;

/// Number of shared resources tracked by the interference model.
pub const RESOURCE_COUNT: usize = resource::RESOURCE_COUNT;
