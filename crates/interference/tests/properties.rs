//! Property-based tests for the interference model.

use proptest::prelude::*;

use quasar_interference::{
    penalty_for, InterferenceProfile, Microbenchmark, PressureVector, SharedResource,
};

fn pressure_vec() -> impl Strategy<Value = PressureVector> {
    proptest::collection::vec(0.0..100.0f64, 10)
        .prop_map(|vals| PressureVector::from_fn(|r| vals[r.index()]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Penalty always lies in (0, 1].
    #[test]
    fn penalty_is_bounded(tol in pressure_vec(), ext in pressure_vec()) {
        let p = penalty_for(&tol, &ext);
        prop_assert!(p > 0.0 && p <= 1.0, "penalty {p}");
    }

    /// Penalty is monotone non-increasing in external pressure
    /// (component-wise domination).
    #[test]
    fn penalty_is_monotone(tol in pressure_vec(), ext in pressure_vec(), extra in pressure_vec()) {
        let more = ext + extra;
        prop_assert!(penalty_for(&tol, &more) <= penalty_for(&tol, &ext) + 1e-12);
    }

    /// Pressure at or below tolerance never penalizes.
    #[test]
    fn below_tolerance_is_free(tol in pressure_vec(), scale in 0.0..1.0f64) {
        let ext = tol.scaled(scale);
        prop_assert_eq!(penalty_for(&tol, &ext), 1.0);
    }

    /// The sensitivity point is consistent with the penalty law: at that
    /// pressure, the single-resource penalty equals 1 - qos_loss (or the
    /// point saturates at 100).
    #[test]
    fn sensitivity_point_round_trips(tol in pressure_vec(), loss in 0.01..0.3f64) {
        let profile = InterferenceProfile::new(tol, PressureVector::zero());
        for r in SharedResource::ALL {
            let point = profile.sensitivity_point(r, loss);
            prop_assert!((0.0..=100.0).contains(&point));
            if point < 100.0 {
                let pen = profile.resource_penalty(r, point);
                prop_assert!((pen - (1.0 - loss)).abs() < 1e-9, "{r}: pen {pen}");
            }
        }
    }

    /// Pressure arithmetic keeps every component in [0, 100].
    #[test]
    fn pressure_vector_stays_clamped(a in pressure_vec(), b in pressure_vec(), k in -3.0..3.0f64) {
        for v in [a + b, a - b, a.scaled(k), a.component_max(&b)] {
            for (_, x) in v.iter() {
                prop_assert!((0.0..=100.0).contains(&x));
            }
        }
    }

    /// A microbenchmark pressures exactly one resource at its intensity.
    #[test]
    fn microbenchmark_is_single_resource(idx in 0usize..10, intensity in 0.0..100.0f64) {
        let bench = Microbenchmark::new(SharedResource::from_index(idx), intensity);
        let p = bench.caused_pressure();
        prop_assert!((p.total() - intensity).abs() < 1e-12);
        prop_assert!((p.get(bench.resource()) - intensity).abs() < 1e-12);
    }
}
