//! # quasar-obs — unified telemetry for the Quasar reproduction
//!
//! Observability substrate shared by every crate in the workspace
//! (paper §3.5/§4 argue for *fast* decisions; this layer is how the
//! repo measures them instead of asserting them):
//!
//! - [`span!`] / [`span::timed`] — nestable, thread-safe spans carrying
//!   wall-time and logical sim-time; one relaxed atomic load when
//!   tracing is off.
//! - [`registry::Registry`] — process-global named counters / gauges /
//!   fixed-bucket histograms behind a single
//!   [`registry::Registry::snapshot`]; metric names follow
//!   `quasar.<crate>.<subsystem>.<name>`.
//! - [`series::SeriesStore`] — fixed-capacity, deterministically
//!   downsampled windowed time series keyed by `(name, entity id)`; the
//!   per-workload / per-cell complement to the global counters, with the
//!   same byte-identical snapshot contract as the masked exporters.
//! - [`trace`] — an event collector with deterministic exporters:
//!   Chrome `trace_event` JSON (Perfetto-loadable) and JSONL. Masked
//!   exports (keyed off `QUASAR_MASK_TIMINGS` by callers) drop every
//!   scheduling-dependent field and sort by logical keys, so trace
//!   files are byte-identical across `--threads` values and CI-diffable.
//! - [`json`] — hand-rolled escaping/formatting plus a strict validator
//!   (the offline, pure-rust equivalent of `jq -e type`).
//!
//! This crate sits at the bottom of the dependency graph (no deps) so
//! `cf`, `cluster`, `core`, and the experiment binaries can all report
//! into the same registry and trace buffer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod registry;
pub mod series;
pub mod span;
pub mod trace;

pub use registry::{Registry, Snapshot};
pub use series::{SeriesSnapshot, SeriesStore};
pub use span::{set_sim_time, sim_time};
pub use trace::{tracing_enabled, Event};

/// Serializes tests that touch the global trace collector state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
