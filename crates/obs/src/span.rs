//! Lightweight nestable spans with logical sim-time attribution.
//!
//! A span measures one named region of work: wall-clock duration, the
//! thread it ran on, its nesting depth, and the **logical simulation
//! time** current on that thread when it started. Simulation time is a
//! thread-local set by the cluster simulator ([`set_sim_time`]) and
//! reset to zero at the start of every `par_map` item, so a span's
//! sim-time depends only on the logical work item it belongs to — never
//! on which worker thread happened to run it. That is what makes the
//! masked trace export byte-identical across `--threads` values.
//!
//! Spans are zero-cost when tracing is disabled: the [`span!`] macro
//! compiles to one relaxed atomic load and skips argument formatting
//! entirely.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use crate::trace;

thread_local! {
    static SIM_TIME: Cell<f64> = const { Cell::new(0.0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Sets the logical simulation time for the current thread. Called by
/// the simulator on every tick/placement, and reset per `par_map` item.
pub fn set_sim_time(t: f64) {
    SIM_TIME.with(|c| c.set(t));
}

/// The current thread's logical simulation time (seconds).
pub fn sim_time() -> f64 {
    SIM_TIME.with(|c| c.get())
}

/// A small dense id for the current thread (0 for the first thread that
/// asks, 1 for the next, ...). Stable for the thread's lifetime.
pub fn thread_tid() -> u32 {
    TID.with(|c| {
        let mut t = c.get();
        if t == u32::MAX {
            t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(t);
        }
        t
    })
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn current_depth() -> u32 {
    DEPTH.with(|c| c.get())
}

/// An active span; records itself into the trace collector on drop.
/// Obtain via [`span!`] or [`enter`]; hold in a `let _guard = ...`
/// binding for the region's lifetime.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    args: String,
    sim_time: f64,
    depth: u32,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        DEPTH.with(|c| c.set(self.depth));
        trace::record_span(
            self.name,
            std::mem::take(&mut self.args),
            self.sim_time,
            self.depth,
            thread_tid(),
            self.start,
            self.start.elapsed(),
        );
    }
}

/// Starts a span if tracing is enabled (`None` otherwise — dropping
/// `None` costs nothing).
pub fn enter(name: &'static str) -> Option<SpanGuard> {
    enter_args(name, String::new())
}

/// Starts a span with a preformatted argument string. Prefer the
/// [`span!`] macro, which skips formatting when tracing is off.
pub fn enter_args(name: &'static str, args: String) -> Option<SpanGuard> {
    if !trace::tracing_enabled() {
        return None;
    }
    let depth = DEPTH.with(|c| {
        let d = c.get();
        c.set(d + 1);
        d
    });
    Some(SpanGuard {
        name,
        args,
        sim_time: sim_time(),
        depth,
        start: Instant::now(),
    })
}

/// Opens a span over the enclosing scope:
/// `let _g = span!("core.greedy.plan");` or with `format!`-style args
/// `let _g = span!("core.par.job", "items={n}");`. Expands to a single
/// atomic load when tracing is disabled — arguments are not formatted.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, $($arg:tt)*) => {
        if $crate::trace::tracing_enabled() {
            $crate::span::enter_args($name, format!($($arg)*))
        } else {
            None
        }
    };
}

/// Runs `f` inside a span named `name` and returns `(result, wall_us)`.
/// The wall-clock measurement is taken unconditionally (call sites such
/// as `classify_timed` report it either way); the span itself is only
/// recorded when tracing is enabled.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let _guard = enter(name);
    let t0 = Instant::now();
    let out = f();
    let us = t0.elapsed().as_secs_f64() * 1e6;
    (out, us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_is_thread_local() {
        set_sim_time(12.5);
        assert_eq!(sim_time(), 12.5);
        std::thread::spawn(|| assert_eq!(sim_time(), 0.0))
            .join()
            .unwrap();
        assert_eq!(sim_time(), 12.5);
        set_sim_time(0.0);
    }

    #[test]
    fn spans_are_none_when_disabled() {
        let _guard = crate::test_lock();
        trace::disable();
        assert!(enter("quasar.test.off").is_none());
        assert!(span!("quasar.test.off").is_none());
        assert!(span!("quasar.test.off", "n={}", 1).is_none());
    }

    #[test]
    fn timed_returns_result_and_nonnegative_wall() {
        let (v, us) = timed("quasar.test.timed", || 7 * 6);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
    }

    #[test]
    fn thread_tids_are_dense_and_stable() {
        let a = thread_tid();
        assert_eq!(thread_tid(), a);
        let b = std::thread::spawn(thread_tid).join().unwrap();
        assert_ne!(a, b);
    }
}
