//! Fixed-capacity, deterministically-downsampled windowed time series,
//! keyed by `(name, entity id)` — the per-workload / per-cell complement
//! to the global [`crate::registry`] counters.
//!
//! A counter answers "how many, in total"; a series answers "what did
//! *this* workload's signal look like over the run" with a bounded
//! memory footprint. Every series keeps at most `capacity` points: when
//! it fills, the retention stride doubles and every other retained
//! point is dropped. The surviving set depends only on the *sequence*
//! of recorded points (index `i` survives iff `i % stride == 0`), never
//! on timing or thread interleaving, so snapshots are byte-identical
//! across `--threads` and `QUASAR_SHARDS` for logically-identical runs
//! — the same contract as the masked trace exporters.
//!
//! # Examples
//!
//! ```
//! use quasar_obs::series::SeriesStore;
//!
//! let mut store = SeriesStore::new(8);
//! for i in 0..20 {
//!     store.record("qos.depth", 3, i as f64, 0.1 * i as f64);
//! }
//! let series = store.get("qos.depth", 3).unwrap();
//! assert!(series.points().len() <= 8);
//! assert_eq!(series.recorded(), 20);
//! assert_eq!(series.points()[0].0, 0.0); // the first point always survives
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One bounded, stride-downsampled series of `(sim-time, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    capacity: usize,
    stride: u64,
    recorded: u64,
    points: Vec<(f64, f64)>,
}

impl Series {
    fn new(capacity: usize) -> Series {
        Series {
            capacity,
            stride: 1,
            recorded: 0,
            points: Vec::new(),
        }
    }

    fn push(&mut self, t_s: f64, v: f64) {
        if self.recorded.is_multiple_of(self.stride) {
            self.points.push((t_s, v));
            if self.points.len() >= self.capacity {
                // Halve the window: keep even positions (multiples of the
                // doubled stride), drop the rest. Purely index-driven, so
                // the survivors are scheduling-independent.
                let mut keep = 0usize;
                self.points.retain(|_| {
                    let kept = keep.is_multiple_of(2);
                    keep += 1;
                    kept
                });
                self.stride *= 2;
            }
        }
        self.recorded += 1;
    }

    /// Retained points, oldest first, as `(sim_time_s, value)` pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Total points ever recorded (including downsampled-away ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Current retention stride: every `stride`-th recorded point is
    /// kept. 1 until the first downsample.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The last retained value, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }
}

/// A keyed collection of [`Series`], one per `(name, entity)` pair.
///
/// The store is a plain owned value — each `World` (and therefore each
/// shard cell) holds its own, and cross-cell views are built by merging
/// snapshots — so no cross-thread interleaving can ever touch ordering.
#[derive(Debug, Clone)]
pub struct SeriesStore {
    capacity: usize,
    series: BTreeMap<(String, u64), Series>,
}

impl SeriesStore {
    /// A store whose series each retain at most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (downsampling needs room to halve).
    pub fn new(capacity: usize) -> SeriesStore {
        assert!(capacity >= 2, "series capacity must be at least 2");
        SeriesStore {
            capacity,
            series: BTreeMap::new(),
        }
    }

    /// Appends a point to the series keyed `(name, entity)`, creating
    /// the series on first use.
    pub fn record(&mut self, name: &str, entity: u64, t_s: f64, v: f64) {
        self.series
            .entry((name.to_string(), entity))
            .or_insert_with(|| Series::new(self.capacity))
            .push(t_s, v);
    }

    /// Looks a series up by key.
    pub fn get(&self, name: &str, entity: u64) -> Option<&Series> {
        self.series.get(&(name.to_string(), entity))
    }

    /// Number of distinct `(name, entity)` series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// A sorted point-in-time copy of every series.
    pub fn snapshot(&self) -> SeriesSnapshot {
        SeriesSnapshot {
            entries: self
                .series
                .iter()
                .map(|((name, entity), s)| SeriesEntry {
                    name: name.clone(),
                    entity: *entity,
                    series: s.clone(),
                })
                .collect(),
        }
    }
}

/// One series in a [`SeriesSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesEntry {
    /// Series name (`quasar.<crate>.<subsystem>.<signal>` convention).
    pub name: String,
    /// Entity id the series describes (workload id, cell id, ...).
    pub entity: u64,
    /// The series data.
    pub series: Series,
}

/// A sorted export view over one or more [`SeriesStore`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesSnapshot {
    /// Entries sorted by `(name, entity)`.
    pub entries: Vec<SeriesEntry>,
}

impl SeriesSnapshot {
    /// Merges per-cell snapshots into one globally-sorted view. Keys are
    /// expected to be disjoint across cells (workload ids are global);
    /// duplicate keys are kept side by side in input order.
    pub fn merge(parts: impl IntoIterator<Item = SeriesSnapshot>) -> SeriesSnapshot {
        let mut entries: Vec<SeriesEntry> = parts.into_iter().flat_map(|p| p.entries).collect();
        entries.sort_by(|a, b| (&a.name, a.entity).cmp(&(&b.name, b.entity)));
        SeriesSnapshot { entries }
    }

    /// Renders one `name[entity] recorded=N stride=S points=P last=(t,v)`
    /// line per series — logical fields only, safe to diff across thread
    /// and shard counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let last = e
                .series
                .last()
                .map(|(t, v)| format!("({t:.1},{v:.4})"))
                .unwrap_or_else(|| "none".to_string());
            let _ = writeln!(
                out,
                "{}[{}] recorded={} stride={} points={} last={last}",
                e.name,
                e.entity,
                e.series.recorded(),
                e.series.stride(),
                e.series.points().len()
            );
        }
        out
    }

    /// Renders each series as one JSON object line
    /// (`{"type":"series",...}`) with the full retained point list, for
    /// JSONL exports alongside [`crate::registry::Snapshot::jsonl_lines`].
    pub fn jsonl_lines(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| {
                let mut points = String::from("[");
                for (i, (t, v)) in e.series.points().iter().enumerate() {
                    if i > 0 {
                        points.push(',');
                    }
                    let _ = write!(
                        points,
                        "[{},{}]",
                        crate::json::number(*t),
                        crate::json::number(*v)
                    );
                }
                points.push(']');
                format!(
                    "{{\"type\":\"series\",\"name\":\"{}\",\"entity\":{},\"recorded\":{},\"stride\":{},\"points\":{points}}}",
                    crate::json::escape(&e.name),
                    e.entity,
                    e.series.recorded(),
                    e.series.stride()
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_bounded_and_first_point_survives() {
        let mut store = SeriesStore::new(8);
        for i in 0..1000 {
            store.record("sig", 1, i as f64, i as f64 * 2.0);
        }
        let s = store.get("sig", 1).unwrap();
        assert!(s.points().len() < 8, "stays under capacity");
        assert_eq!(s.recorded(), 1000);
        assert_eq!(s.points()[0], (0.0, 0.0), "index 0 always survives");
        // Every survivor sits on the stride grid.
        assert!(s.stride() >= 128);
        for (t, _) in s.points() {
            assert_eq!((*t as u64) % s.stride(), 0);
        }
    }

    #[test]
    fn downsampling_depends_only_on_the_sequence() {
        // The same logical sequence pushed through two stores (simulating
        // different chunkings / thread schedules that preserve per-entity
        // order) retains identical points.
        let mut a = SeriesStore::new(4);
        let mut b = SeriesStore::new(4);
        for i in 0..37 {
            a.record("x", 7, i as f64, (i * i) as f64);
        }
        for i in 0..37 {
            b.record("x", 7, i as f64, (i * i) as f64);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn merge_sorts_by_name_then_entity() {
        let mut cell0 = SeriesStore::new(4);
        cell0.record("b", 2, 0.0, 1.0);
        cell0.record("a", 9, 0.0, 1.0);
        let mut cell1 = SeriesStore::new(4);
        cell1.record("a", 3, 0.0, 1.0);
        let merged = SeriesSnapshot::merge([cell1.snapshot(), cell0.snapshot()]);
        let keys: Vec<(String, u64)> = merged
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.entity))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a".to_string(), 3),
                ("a".to_string(), 9),
                ("b".to_string(), 2)
            ]
        );
    }

    #[test]
    fn render_and_jsonl_are_valid_and_stable() {
        let mut store = SeriesStore::new(4);
        store.record("quasar.qos.depth", 5, 10.0, 0.25);
        store.record("quasar.qos.depth", 5, 20.0, 0.5);
        let snap = store.snapshot();
        let rendered = snap.render();
        assert!(rendered.contains("quasar.qos.depth[5] recorded=2 stride=1 points=2"));
        for line in snap.jsonl_lines() {
            crate::json::validate(&line).expect("series line must be valid JSON");
        }
        assert_eq!(snap.render(), store.snapshot().render());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_capacity_rejected() {
        SeriesStore::new(1);
    }
}
