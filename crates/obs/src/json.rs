//! Minimal hand-rolled JSON helpers: string escaping, float formatting,
//! and a recursive-descent validator.
//!
//! The workspace builds offline (no serde), so the exporters in
//! [`crate::trace`] emit JSON by hand. The validator is the pure-rust
//! stand-in for CI's `jq -e type` check: it accepts exactly the JSON
//! grammar (RFC 8259), so any exporter bug that produces malformed
//! output fails a test locally before it fails `jq` in CI.

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token. JSON has no NaN/Infinity, so
/// non-finite values render as `0`; integral values render without a
/// fractional part.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // `{}` on f64 yields a valid JSON number for these magnitudes
        // (leading digit present; exponents only far outside our range).
        format!("{v}")
    }
}

/// Validates that `s` is exactly one JSON value (with optional
/// surrounding whitespace). Returns the byte offset of the first error.
pub fn validate(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut i = skip_ws(b, 0);
    i = value(b, i)?;
    i = skip_ws(b, i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn value(b: &[u8], i: usize) -> Result<usize, usize> {
    match b.get(i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(b'-' | b'0'..=b'9') => num(b, i),
        _ => Err(i),
    }
}

fn literal(b: &[u8], i: usize, lit: &[u8]) -> Result<usize, usize> {
    if b.len() >= i + lit.len() && &b[i..i + lit.len()] == lit {
        Ok(i + lit.len())
    } else {
        Err(i)
    }
}

fn object(b: &[u8], mut i: usize) -> Result<usize, usize> {
    i = skip_ws(b, i + 1); // past '{'
    if b.get(i) == Some(&b'}') {
        return Ok(i + 1);
    }
    loop {
        i = string(b, i)?;
        i = skip_ws(b, i);
        if b.get(i) != Some(&b':') {
            return Err(i);
        }
        i = skip_ws(b, i + 1);
        i = value(b, i)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(b'}') => return Ok(i + 1),
            _ => return Err(i),
        }
    }
}

fn array(b: &[u8], mut i: usize) -> Result<usize, usize> {
    i = skip_ws(b, i + 1); // past '['
    if b.get(i) == Some(&b']') {
        return Ok(i + 1);
    }
    loop {
        i = value(b, i)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(b']') => return Ok(i + 1),
            _ => return Err(i),
        }
    }
}

fn string(b: &[u8], mut i: usize) -> Result<usize, usize> {
    if b.get(i) != Some(&b'"') {
        return Err(i);
    }
    i += 1;
    while let Some(&c) = b.get(i) {
        match c {
            b'"' => return Ok(i + 1),
            b'\\' => match b.get(i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                Some(b'u')
                    if b.len() >= i + 6 && b[i + 2..i + 6].iter().all(u8::is_ascii_hexdigit) =>
                {
                    i += 6;
                }
                _ => return Err(i),
            },
            0x00..=0x1f => return Err(i),
            _ => i += 1,
        }
    }
    Err(i)
}

fn num(b: &[u8], mut i: usize) -> Result<usize, usize> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return Err(start),
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        if !matches!(b.get(i), Some(b'0'..=b'9')) {
            return Err(i);
        }
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !matches!(b.get(i), Some(b'0'..=b'9')) {
            return Err(i);
        }
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{01}"), "\\u0001");
        let quoted = format!("\"{}\"", escape("tab\there \"quoted\"\r\n"));
        validate(&quoted).unwrap();
    }

    #[test]
    fn number_formats_are_valid_json() {
        for v in [0.0, -1.5, 3.25, 1e12, 123456.789, f64::NAN, f64::INFINITY] {
            validate(&number(v)).unwrap();
        }
        assert_eq!(number(42.0), "42");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(2.5), "2.5");
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " -12.5e+3 ",
            "\"hi\\u00e9\"",
            "[]",
            "[1, [2, {\"k\": null}], \"s\"]",
            "{}",
            "{\"a\": {\"b\": [1.5, false]}, \"c\": \"\"}",
        ] {
            validate(doc).unwrap_or_else(|at| panic!("{doc} rejected at {at}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for doc in [
            "",
            "tru",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\x\"",
            "[1,]",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "{} extra",
            "{\"a\":1,}",
        ] {
            assert!(validate(doc).is_err(), "{doc} wrongly accepted");
        }
    }
}
