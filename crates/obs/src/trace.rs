//! The global trace collector and the deterministic exporters.
//!
//! When tracing is enabled ([`enable`]), span guards and journal
//! instants append [`Event`]s to a process-global buffer; [`drain`]
//! stops collection and hands the events back for export. Two formats
//! are supported, both hand-rolled (the workspace builds offline, no
//! serde):
//!
//! - **Chrome `trace_event` JSON** ([`export_chrome`]) — loadable in
//!   Perfetto / `chrome://tracing`.
//! - **JSONL** ([`export_jsonl`]) — one JSON object per line: spans,
//!   instant events, then a metric line per registry entry.
//!
//! Each exporter has a *masked* mode keyed off the caller's
//! `QUASAR_MASK_TIMINGS` handling: wall-clock timestamps, durations,
//! thread ids, and nesting depths (all scheduling-dependent) are
//! dropped, and records are ordered by the scheduling-independent key
//! `(sim_time, name, args)` with synthetic timestamps. Two runs of the
//! same workload at different `--threads` values produce byte-identical
//! masked exports, which CI verifies with `cmp`.
//!
//! Collection is **per-thread**: each recording thread appends to its
//! own buffer (registered globally on first use) and [`drain`] flushes
//! them all, so the span-drop path never touches a shared mutex — only
//! thread-local state and two relaxed atomics. Drain concatenates
//! buffers in thread-registration order, which is scheduling-dependent;
//! that's fine because unmasked exports re-sort by wall time and masked
//! exports sort by the logical key above.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json;
use crate::registry::Snapshot;

/// Hard cap on buffered events; further records are counted as dropped.
pub const EVENT_CAP: usize = 1_000_000;

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A region of work with a duration (from a span guard).
    Span,
    /// A point-in-time occurrence (e.g. a journal record).
    Instant,
}

/// One collected trace record.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span or instant.
    pub kind: EventKind,
    /// Span/event name (`quasar.<crate>.<subsystem>...` taxonomy).
    pub name: &'static str,
    /// Preformatted detail string ("" when none).
    pub args: String,
    /// Logical simulation time (seconds) attributed to the record.
    pub sim_time: f64,
    /// Span nesting depth on the recording thread.
    pub depth: u32,
    /// Dense id of the recording thread.
    pub tid: u32,
    /// Wall-clock start, µs since [`enable`] was called.
    pub start_us: u64,
    /// Wall-clock duration in µs (0 for instants).
    pub dur_us: u64,
    /// Global record sequence number.
    pub seq: u64,
}

/// One thread's private event buffer. Events carry their raw start
/// [`Instant`]; wall offsets against the epoch are computed at drain, so
/// the record path needs no access to shared epoch state at all.
#[derive(Default)]
struct ThreadBuffer {
    events: Mutex<Vec<(Event, Instant)>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
/// Total buffered events across all threads, for [`EVENT_CAP`].
static COUNT: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);
/// Every thread's buffer, in first-record order. Buffers of exited
/// threads stay registered so their events survive until [`drain`].
static BUFFERS: Mutex<Vec<Arc<ThreadBuffer>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: Arc<ThreadBuffer> = {
        let buf = Arc::new(ThreadBuffer::default());
        BUFFERS
            .lock()
            .expect("trace buffers poisoned")
            .push(Arc::clone(&buf));
        buf
    };
}

/// Whether tracing is currently collecting. One relaxed atomic load —
/// this is the entire cost of a disabled `span!`.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts collecting: clears every thread's buffer, restarts the
/// wall-clock epoch and sequence numbering.
pub fn enable() {
    ENABLED.store(false, Ordering::Relaxed);
    for buf in BUFFERS.lock().expect("trace buffers poisoned").iter() {
        buf.events.lock().expect("trace buffer poisoned").clear();
    }
    *EPOCH.lock().expect("trace epoch poisoned") = Some(Instant::now());
    COUNT.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
    SEQ.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops collecting (buffered events are kept until [`drain`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Stops collecting and returns the buffered events, flushing every
/// thread's buffer (in thread-registration order; exporters re-sort).
pub fn drain() -> Vec<Event> {
    ENABLED.store(false, Ordering::Relaxed);
    let Some(epoch) = EPOCH.lock().expect("trace epoch poisoned").take() else {
        return Vec::new();
    };
    let buffers = BUFFERS.lock().expect("trace buffers poisoned");
    let mut events = Vec::with_capacity(COUNT.load(Ordering::Relaxed));
    for buf in buffers.iter() {
        for (mut ev, start) in buf.events.lock().expect("trace buffer poisoned").drain(..) {
            ev.start_us = start
                .checked_duration_since(epoch)
                .unwrap_or(Duration::ZERO)
                .as_micros() as u64;
            events.push(ev);
        }
    }
    COUNT.store(0, Ordering::Relaxed);
    events
}

/// Events discarded because the buffer hit [`EVENT_CAP`], since the
/// last [`enable`].
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn record(mut ev: Event, start: Instant) {
    if !tracing_enabled() {
        return;
    }
    if COUNT.fetch_add(1, Ordering::Relaxed) >= EVENT_CAP {
        COUNT.fetch_sub(1, Ordering::Relaxed);
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    ev.seq = SEQ.fetch_add(1, Ordering::Relaxed);
    LOCAL.with(|buf| {
        buf.events
            .lock()
            .expect("trace buffer poisoned")
            .push((ev, start));
    });
}

/// Records a completed span (called by `SpanGuard::drop`).
pub(crate) fn record_span(
    name: &'static str,
    args: String,
    sim_time: f64,
    depth: u32,
    tid: u32,
    start: Instant,
    dur: Duration,
) {
    record(
        Event {
            kind: EventKind::Span,
            name,
            args,
            sim_time,
            depth,
            tid,
            start_us: 0,
            dur_us: dur.as_micros() as u64,
            seq: 0,
        },
        start,
    );
}

/// Records an instant event (e.g. a journal entry) at an explicit
/// logical time. No-op when tracing is disabled.
pub fn record_instant(name: &'static str, args: String, sim_time: f64) {
    if !tracing_enabled() {
        return;
    }
    record(
        Event {
            kind: EventKind::Instant,
            name,
            args,
            sim_time,
            depth: crate::span::current_depth(),
            tid: crate::span::thread_tid(),
            start_us: 0,
            dur_us: 0,
            seq: 0,
        },
        Instant::now(),
    );
}

/// Orders events for export. Masked: by the scheduling-independent key
/// `(sim_time, name, args, kind)` — ties are byte-identical records, so
/// their relative order cannot affect the output. Unmasked: by wall
/// start then sequence.
fn sorted(events: &[Event], masked: bool) -> Vec<&Event> {
    let mut evs: Vec<&Event> = events.iter().collect();
    if masked {
        evs.sort_by(|a, b| {
            a.sim_time
                .total_cmp(&b.sim_time)
                .then_with(|| a.name.cmp(b.name))
                .then_with(|| a.args.cmp(&b.args))
                .then_with(|| a.kind.cmp(&b.kind))
        });
    } else {
        evs.sort_by_key(|e| (e.start_us, e.seq));
    }
    evs
}

/// Renders events as Chrome `trace_event` JSON (one event per line for
/// diffability). Masked mode substitutes synthetic timestamps
/// (`ts` = rank in the deterministic order) and zeroes `tid`/`dur`.
pub fn export_chrome(events: &[Event], masked: bool) -> String {
    let evs = sorted(events, masked);
    let mut out = String::with_capacity(evs.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in evs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        let (ts, dur, tid) = if masked {
            (i as u64, 0, 0)
        } else {
            (e.start_us, e.dur_us, e.tid)
        };
        let ph = match e.kind {
            EventKind::Span => "\"ph\":\"X\"",
            EventKind::Instant => "\"ph\":\"i\",\"s\":\"t\"",
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"quasar\",{ph},\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"sim_s\":{}{}}}}}",
            json::escape(e.name),
            json::number(e.sim_time),
            if e.args.is_empty() {
                String::new()
            } else {
                format!(",\"detail\":\"{}\"", json::escape(&e.args))
            },
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Renders events (and, when given, a registry snapshot) as JSONL — one
/// JSON object per line. Masked mode drops wall-clock fields, thread
/// ids, and depths, and reduces the snapshot to its deterministic view.
pub fn export_jsonl(events: &[Event], masked: bool, snapshot: Option<&Snapshot>) -> String {
    let evs = sorted(events, masked);
    let mut out = String::with_capacity(evs.len() * 96);
    for e in evs {
        let ty = match e.kind {
            EventKind::Span => "span",
            EventKind::Instant => "event",
        };
        let detail = if e.args.is_empty() {
            String::new()
        } else {
            format!(",\"detail\":\"{}\"", json::escape(&e.args))
        };
        if masked {
            out.push_str(&format!(
                "{{\"type\":\"{ty}\",\"name\":\"{}\",\"sim_s\":{}{detail}}}\n",
                json::escape(e.name),
                json::number(e.sim_time),
            ));
        } else {
            out.push_str(&format!(
                "{{\"type\":\"{ty}\",\"name\":\"{}\",\"sim_s\":{}{detail},\"ts_us\":{},\"dur_us\":{},\"tid\":{},\"depth\":{}}}\n",
                json::escape(e.name),
                json::number(e.sim_time),
                e.start_us,
                e.dur_us,
                e.tid,
                e.depth,
            ));
        }
    }
    if let Some(snap) = snapshot {
        let view = if masked {
            snap.deterministic()
        } else {
            snap.clone()
        };
        for line in view.jsonl_lines() {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    fn sample_events() -> Vec<Event> {
        // Same logical records as two interleaved threads would produce,
        // with different wall times/tids/seqs per "run".
        let mk = |name, args: &str, sim, tid, start_us, dur_us, seq| Event {
            kind: EventKind::Span,
            name,
            args: args.to_string(),
            sim_time: sim,
            depth: 0,
            tid,
            start_us,
            dur_us,
            seq,
        };
        vec![
            mk("b.second", "", 2.0, 1, 40, 7, 2),
            mk("a.first", "items=3", 1.0, 0, 10, 5, 0),
            Event {
                kind: EventKind::Instant,
                name: "cluster.journal.placed",
                args: "workload=w0".to_string(),
                sim_time: 1.0,
                depth: 1,
                tid: 1,
                start_us: 22,
                dur_us: 0,
                seq: 1,
            },
        ]
    }

    fn shuffled_wall(events: &[Event]) -> Vec<Event> {
        // The same logical events observed with different scheduling.
        let mut evs = events.to_vec();
        evs.reverse();
        for (i, e) in evs.iter_mut().enumerate() {
            e.tid = 5 - i as u32;
            e.start_us = 1000 + 17 * i as u64;
            e.dur_us *= 3;
            e.seq = i as u64;
        }
        evs
    }

    #[test]
    fn masked_exports_are_scheduling_invariant() {
        let a = sample_events();
        let b = shuffled_wall(&a);
        assert_eq!(export_chrome(&a, true), export_chrome(&b, true));
        assert_eq!(export_jsonl(&a, true, None), export_jsonl(&b, true, None));
        // Unmasked outputs genuinely differ (wall fields present).
        assert_ne!(export_chrome(&a, false), export_chrome(&b, false));
    }

    #[test]
    fn chrome_export_is_valid_json_with_monotone_ts() {
        for masked in [false, true] {
            let doc = export_chrome(&sample_events(), masked);
            crate::json::validate(&doc).unwrap_or_else(|at| {
                panic!("invalid chrome trace (masked={masked}) at byte {at}: {doc}")
            });
            let ts: Vec<u64> = doc
                .lines()
                .filter(|l| l.contains("\"ts\":"))
                .map(|l| {
                    let after = l.split("\"ts\":").nth(1).unwrap();
                    after
                        .chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse()
                        .unwrap()
                })
                .collect();
            assert_eq!(ts.len(), 3);
            assert!(
                ts.windows(2).all(|w| w[0] <= w[1]),
                "ts not monotone: {ts:?}"
            );
        }
    }

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let reg = crate::registry::Registry::new();
        reg.counter("quasar.test.c").add(2);
        let snap = reg.snapshot();
        for masked in [false, true] {
            let doc = export_jsonl(&sample_events(), masked, Some(&snap));
            assert!(doc.lines().count() >= 4);
            for line in doc.lines() {
                crate::json::validate(line)
                    .unwrap_or_else(|at| panic!("invalid JSONL line at byte {at}: {line}"));
            }
        }
    }

    #[test]
    fn collector_roundtrip_and_instants() {
        let _guard = crate::test_lock();
        enable();
        assert!(tracing_enabled());
        {
            let _outer = span::enter("quasar.test.outer");
            let _inner = crate::span!("quasar.test.inner", "k={}", 7);
            record_instant("quasar.test.instant", String::new(), 3.5);
        }
        let events = drain();
        assert!(!tracing_enabled());
        assert_eq!(events.len(), 3);
        // Inner span drops (and records) before outer.
        let names: Vec<_> = events.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "quasar.test.instant",
                "quasar.test.inner",
                "quasar.test.outer"
            ]
        );
        let inner = &events[1];
        assert_eq!(inner.args, "k=7");
        assert_eq!(inner.depth, 1);
        assert_eq!(events[2].depth, 0);
        assert_eq!(events[0].sim_time, 3.5);
        assert_eq!(dropped_events(), 0);
        // Buffer is cleared after drain.
        assert!(drain().is_empty());
    }

    #[test]
    fn drain_flushes_buffers_from_every_thread() {
        let _guard = crate::test_lock();
        enable();
        std::thread::scope(|scope| {
            for i in 0..4 {
                scope.spawn(move || {
                    record_instant("quasar.test.cross_thread", format!("t={i}"), i as f64);
                });
            }
        });
        record_instant("quasar.test.local", String::new(), 9.0);
        let events = drain();
        assert_eq!(events.len(), 5, "every thread's buffer must be flushed");
        let mut sims: Vec<f64> = events.iter().map(|e| e.sim_time).collect();
        sims.sort_by(f64::total_cmp);
        assert_eq!(sims, vec![0.0, 1.0, 2.0, 3.0, 9.0]);
        assert_eq!(dropped_events(), 0);
        assert!(drain().is_empty(), "buffers are cleared after drain");
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = crate::test_lock();
        disable();
        record_instant("quasar.test.ignored", String::new(), 0.0);
        {
            let _s = span::enter("quasar.test.ignored");
            assert!(_s.is_none());
        }
        assert!(drain().is_empty());
    }
}
