//! The process-global metric registry: named counters, gauges, and
//! fixed-bucket histograms.
//!
//! Metrics are **always on** — recording is a couple of relaxed atomic
//! operations, cheap enough for every hot path — while the span/trace
//! machinery in [`crate::trace`] is opt-in. Call sites obtain a handle
//! once (typically behind a `OnceLock`) and hammer it; the registry map
//! itself is only locked at handle-creation and snapshot time.
//!
//! Naming convention: `quasar.<crate>.<subsystem>.<name>`, e.g.
//! `quasar.cf.row_cache.hits`. Metrics under [`LIVE_PREFIXES`] (worker
//! pool occupancy) and the `sum`/bucket detail of wall-clock histograms
//! are *scheduling-dependent*: they vary run-to-run and across
//! `--threads` values. [`Snapshot::deterministic`] strips exactly those,
//! leaving a view that is byte-identical for every thread count, which
//! is what the CI determinism smoke diffs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Metric-name prefixes whose values depend on thread scheduling (and so
/// are excluded from [`Snapshot::deterministic`]).
///
/// Pool occupancy obviously varies run to run. Row-cache *evictions* do
/// too: eviction order follows the actual interleaving of accesses once
/// the LRU fills. Row-cache hits and misses, by contrast, are
/// scheduling-invariant since the per-key once-guard landed (concurrent
/// lookups on one key collapse to a single compute: exactly one miss,
/// the rest hits — the same totals as a serial run, absent evictions),
/// so they stay in deterministic snapshots and CI diffs them.
///
/// The sharded manager's wall-clock round timings
/// (`quasar.cluster.shard.wall.*`) are live by definition; its *logical*
/// shard metrics (`quasar.cluster.shard.admitted`, `.rebalanced`,
/// `.queue_depth_max`, ...) are driven by deterministic routing and stay
/// in the deterministic view.
///
/// The CF scratch-arena counters (`quasar.cf.scratch.*`) are live
/// because every worker thread owns its own arena: how checkouts split
/// into reuses vs. grows (and the peak bytes held) depends on how the
/// classification axes land on pool threads.
pub const LIVE_PREFIXES: [&str; 4] = [
    "quasar.core.par.pool.",
    "quasar.cf.row_cache.evictions",
    "quasar.cf.scratch.",
    "quasar.cluster.shard.wall.",
];

/// Default histogram bucket upper bounds for latencies in microseconds:
/// a 1-2-5 ladder from 1 µs to 5 s, with an implicit overflow bucket.
pub const LATENCY_BOUNDS_US: [f64; 20] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5,
    5e5, 1e6, 5e6,
];

/// A monotonically-increasing named counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge holding the latest `u64` value set.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to at least `v`.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper-inclusive bucket bounds, ascending; one extra overflow
    /// bucket follows the last bound.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, stored as `f64` bits. The float addition
    /// order (and thus the exact bits) is scheduling-dependent under
    /// parallel recording; deterministic views drop it.
    sum_bits: AtomicU64,
    /// Exact smallest recorded value as `f64` bits (`+inf` when empty).
    /// Unlike the sum, min/max are order-independent — but the recorded
    /// *values* of wall-clock histograms are not, so deterministic views
    /// drop these too.
    min_bits: AtomicU64,
    /// Exact largest recorded value as `f64` bits (`-inf` when empty).
    max_bits: AtomicU64,
}

/// A fixed-bucket histogram. A value `v` lands in the first bucket whose
/// bound satisfies `v <= bound`; values above every bound land in the
/// implicit overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one value.
    pub fn record(&self, v: f64) {
        let i = self
            .0
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        update_extreme(&self.0.min_bits, v, |v, cur| v.total_cmp(&cur).is_lt());
        update_extreme(&self.0.max_bits, v, |v, cur| v.total_cmp(&cur).is_gt());
    }

    /// Exact smallest recorded value (streaming, not a bucket bound).
    /// 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        f64::from_bits(self.0.min_bits.load(Ordering::Relaxed))
    }

    /// Exact largest recorded value (streaming, not a bucket bound).
    /// 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        f64::from_bits(self.0.max_bits.load(Ordering::Relaxed))
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimated `p`-quantile (0..=1) by nearest-rank over the bucket
    /// counts, reported as the matched bucket's upper bound (the last
    /// bound for the overflow bucket). 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return self
                    .0
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| *self.0.bounds.last().expect("bounds non-empty"));
            }
        }
        *self.0.bounds.last().expect("bounds non-empty")
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// CAS-updates an `f64`-bits cell toward a new extreme: stores `v` when
/// `better(v, current)` holds. `total_cmp` ordering keeps the loop
/// convergent even against NaN.
fn update_extreme(cell: &AtomicU64, v: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    while better(v, f64::from_bits(cur)) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named metrics. One process-global instance lives behind
/// [`Registry::global`]; tests may build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry (for tests; production code uses
    /// [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// Returns the histogram named `name` with the given bucket bounds,
    /// creating it on first use (later calls reuse the first bounds).
    ///
    /// # Panics
    ///
    /// Panics if the name is registered as a different kind, or if
    /// `bounds` is empty or not strictly ascending.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut map = self.metrics.lock().expect("registry poisoned");
        match map.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            })))
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// A histogram with the default latency buckets
    /// ([`LATENCY_BOUNDS_US`]).
    pub fn histogram_us(&self, name: &str) -> Histogram {
        self.histogram(name, &LATENCY_BOUNDS_US)
    }

    /// Zeroes every registered metric in place (handles stay valid).
    /// Meant for tests and the start of a `trace` run, so summaries
    /// cover exactly one run.
    pub fn reset(&self) {
        let map = self.metrics.lock().expect("registry poisoned");
        for metric in map.values() {
            match metric {
                Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed),
                Metric::Histogram(h) => {
                    for b in &h.0.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.0.count.store(0, Ordering::Relaxed);
                    h.0.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
                    h.0.min_bits
                        .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
                    h.0.max_bits
                        .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
                }
            }
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().expect("registry poisoned");
        let entries = map
            .iter()
            .map(|(name, metric)| MetricSnapshot {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min(),
                        max: h.max(),
                        bounds: h.0.bounds.clone(),
                        buckets: h.bucket_counts(),
                    },
                },
            })
            .collect();
        Snapshot { entries }
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state.
    Histogram {
        /// Recorded values.
        count: u64,
        /// Sum of recorded values.
        sum: f64,
        /// Exact smallest recorded value (0 when empty).
        min: f64,
        /// Exact largest recorded value (0 when empty).
        max: f64,
        /// Bucket upper bounds.
        bounds: Vec<f64>,
        /// Bucket counts (`bounds.len() + 1`, last is overflow).
        buckets: Vec<u64>,
    },
}

/// A named metric value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Full metric name.
    pub name: String,
    /// The value.
    pub value: MetricValue,
}

/// A sorted point-in-time view of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Metrics sorted by name.
    pub entries: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// The scheduling-independent view: metrics under [`LIVE_PREFIXES`]
    /// are dropped, and histograms are reduced to their counts (bucket
    /// detail and float sums depend on timing / addition order). The
    /// result is byte-identical across `--threads` values for workloads
    /// driven by the deterministic parallel runner.
    pub fn deterministic(&self) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .filter(|e| !LIVE_PREFIXES.iter().any(|p| e.name.starts_with(p)))
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                value: match &e.value {
                    MetricValue::Histogram { count, .. } => MetricValue::Histogram {
                        count: *count,
                        sum: 0.0,
                        min: 0.0,
                        max: 0.0,
                        bounds: Vec::new(),
                        buckets: Vec::new(),
                    },
                    v => v.clone(),
                },
            })
            .collect();
        Snapshot { entries }
    }

    /// Renders one `name kind value` line per metric.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} counter {v}", e.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} gauge {v}", e.name);
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    min,
                    max,
                    ..
                } => {
                    let _ = writeln!(
                        out,
                        "{} histogram count={count} sum={sum:.1} min={min:.1} max={max:.1}",
                        e.name
                    );
                }
            }
        }
        out
    }

    /// Renders each metric as one JSON object line
    /// (`{"type":"metric",...}`), for the JSONL exporter.
    pub fn jsonl_lines(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| {
                let name = crate::json::escape(&e.name);
                match &e.value {
                    MetricValue::Counter(v) => {
                        format!("{{\"type\":\"metric\",\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}")
                    }
                    MetricValue::Gauge(v) => {
                        format!("{{\"type\":\"metric\",\"kind\":\"gauge\",\"name\":\"{name}\",\"value\":{v}}}")
                    }
                    MetricValue::Histogram {
                        count,
                        sum,
                        min,
                        max,
                        ..
                    } => format!(
                        "{{\"type\":\"metric\",\"kind\":\"histogram\",\"name\":\"{name}\",\"count\":{count},\"sum\":{},\"min\":{},\"max\":{}}}",
                        crate::json::number(*sum),
                        crate::json::number(*min),
                        crate::json::number(*max)
                    ),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("quasar.test.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same-name lookup returns the same underlying cell.
        assert_eq!(r.counter("quasar.test.count").get(), 5);
        let g = r.gauge("quasar.test.gauge");
        g.set(9);
        g.set_max(3);
        assert_eq!(g.get(), 9);
        g.set_max(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let r = Registry::new();
        let h = r.histogram("quasar.test.hist", &[10.0, 100.0]);
        // Exactly at a bound lands in that bucket, just above spills over.
        h.record(10.0);
        h.record(10.000001);
        h.record(100.0);
        h.record(100.5); // overflow
        h.record(0.0); // first bucket
        let snap = r.snapshot();
        let MetricValue::Histogram { count, buckets, .. } =
            snap.get("quasar.test.hist").unwrap().clone()
        else {
            panic!("histogram expected");
        };
        assert_eq!(count, 5);
        assert_eq!(buckets, vec![2, 2, 1]);
        assert_eq!(h.sum(), 10.0 + 10.000001 + 100.0 + 100.5);
        // Min/max are exact streamed values, not bucket bounds.
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 100.5);
    }

    #[test]
    fn histogram_min_max_stream_exactly_and_reset() {
        let r = Registry::new();
        let h = r.histogram("quasar.test.minmax", &[10.0]);
        assert_eq!((h.min(), h.max()), (0.0, 0.0), "empty reports zeros");
        h.record(3.5);
        assert_eq!((h.min(), h.max()), (3.5, 3.5));
        h.record(42.25);
        h.record(-1.5);
        assert_eq!((h.min(), h.max()), (-1.5, 42.25));
        let MetricValue::Histogram { min, max, .. } =
            r.snapshot().get("quasar.test.minmax").unwrap().clone()
        else {
            panic!("histogram expected");
        };
        assert_eq!((min, max), (-1.5, 42.25));
        r.reset();
        assert_eq!((h.min(), h.max()), (0.0, 0.0));
        h.record(7.0);
        assert_eq!(
            (h.min(), h.max()),
            (7.0, 7.0),
            "extremes re-arm after reset"
        );
    }

    #[test]
    fn histogram_percentile_nearest_rank_over_buckets() {
        let r = Registry::new();
        let h = r.histogram("quasar.test.p", &[1.0, 2.0, 5.0, 10.0]);
        for v in [0.5, 0.7, 1.5, 3.0, 3.0, 3.0, 7.0, 7.0, 20.0, 20.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(0.5), 5.0);
        assert_eq!(h.percentile(0.8), 10.0);
        // Overflow bucket reports the last bound (best lower estimate).
        assert_eq!(h.percentile(1.0), 10.0);
        assert_eq!(Registry::new().histogram("x", &[1.0]).percentile(0.5), 0.0);
    }

    #[test]
    fn snapshot_deterministic_strips_live_metrics() {
        let r = Registry::new();
        r.counter("quasar.cf.row_cache.hits").add(3);
        r.counter("quasar.cf.row_cache.evictions").add(2);
        r.counter("quasar.core.classify.classifications").add(5);
        r.gauge("quasar.core.par.pool.live").set(7);
        let h = r.histogram_us("quasar.core.classify.decision_us");
        h.record(123.4);
        r.counter("quasar.cluster.shard.admitted").add(11);
        r.gauge("quasar.cluster.shard.queue_depth_max").set(4);
        r.histogram_us("quasar.cluster.shard.wall.round_us")
            .record(987.6);
        let det = r.snapshot().deterministic();
        assert!(det.get("quasar.core.par.pool.live").is_none());
        assert!(det.get("quasar.cf.row_cache.evictions").is_none());
        // Shard wall timings are live; logical shard metrics are kept.
        assert!(det.get("quasar.cluster.shard.wall.round_us").is_none());
        assert_eq!(
            det.get("quasar.cluster.shard.admitted"),
            Some(&MetricValue::Counter(11))
        );
        assert_eq!(
            det.get("quasar.cluster.shard.queue_depth_max"),
            Some(&MetricValue::Gauge(4))
        );
        // Hits/misses are deterministic (per-key once-guard) and kept.
        assert_eq!(
            det.get("quasar.cf.row_cache.hits"),
            Some(&MetricValue::Counter(3))
        );
        assert_eq!(
            det.get("quasar.core.classify.classifications"),
            Some(&MetricValue::Counter(5))
        );
        let MetricValue::Histogram {
            count,
            sum,
            min,
            max,
            bounds,
            buckets,
        } = det.get("quasar.core.classify.decision_us").unwrap().clone()
        else {
            panic!("histogram expected");
        };
        assert_eq!((count, sum), (1, 0.0));
        assert_eq!((min, max), (0.0, 0.0), "live extremes stripped");
        assert!(bounds.is_empty() && buckets.is_empty());
    }

    #[test]
    fn reset_zeroes_in_place() {
        let r = Registry::new();
        let c = r.counter("a");
        c.add(5);
        let h = r.histogram("b", &[1.0]);
        h.record(0.5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        // Handles remain usable after reset.
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("same");
        r.counter("same");
    }

    #[test]
    fn snapshot_render_and_jsonl_cover_all_kinds() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(2);
        r.histogram("h", &[1.0]).record(0.5);
        let snap = r.snapshot();
        let rendered = snap.render();
        assert!(rendered.contains("c counter 1"));
        assert!(rendered.contains("g gauge 2"));
        assert!(rendered.contains("h histogram count=1"));
        for line in snap.jsonl_lines() {
            crate::json::validate(&line).expect("metric line must be valid JSON");
        }
    }
}
