//! Baseline cluster managers the paper compares Quasar against (§5, §6):
//!
//! * **Reservation + least-loaded (LL)** — users (or framework
//!   schedulers) translate targets into resource reservations with the
//!   over/under-sizing error measured in Fig. 1d; assignment ignores
//!   heterogeneity and interference.
//! * **Reservation + Paragon** — the same reservation-based allocation,
//!   but assignment uses Paragon-style collaborative-filtering
//!   classification of heterogeneity and interference (the paper's
//!   strongest baseline; isolates the value of *joint* allocation).
//! * **Framework self-scheduling** — Hadoop/Spark/Storm size themselves
//!   with stock parameters and linear-scaling assumptions.
//! * **Auto-scaling** — latency-critical services scale instance counts
//!   on a load threshold (70% up, 30% down), as in EC2 auto-scaling.
//!
//! All baselines are [`quasar_cluster::Manager`]s assembled from an
//! [`AllocationPolicy`] and an [`AssignmentPolicy`] by
//! [`BaselineManager`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod paragon;
mod reservation;

pub use manager::{AllocationPolicy, AssignmentPolicy, BaselineManager};
pub use paragon::ParagonEngine;
pub use reservation::{ReservationSizer, SizedReservation, UserErrorModel};
