//! Reservation sizing: how users and framework schedulers translate a
//! performance target into a resource request.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use quasar_cluster::{ProfileConfig, World};
use quasar_workloads::{NodeResources, QosTarget, WorkloadClass, WorkloadId};

/// The over/under-sizing behaviour of reservation users, matching the
/// measured distribution of Fig. 1d: ~70% of workloads over-size by up to
/// 10x, ~20% under-size by up to 5x, ~10% are right-sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserErrorModel {
    /// Probability of over-sizing.
    pub p_oversize: f64,
    /// Maximum over-size multiplier (uniform in `(1, max]`).
    pub max_oversize: f64,
    /// Probability of under-sizing.
    pub p_undersize: f64,
    /// Maximum under-size divisor (uniform in `(1, max]`).
    pub max_undersize: f64,
}

impl UserErrorModel {
    /// The Fig. 1d distribution.
    pub fn paper() -> UserErrorModel {
        UserErrorModel {
            p_oversize: 0.70,
            max_oversize: 10.0,
            p_undersize: 0.20,
            max_undersize: 5.0,
        }
    }

    /// No user error: reservations equal the estimated need (used by the
    /// framework self-scheduler baseline, whose errors come from its
    /// modeling assumptions instead).
    pub fn exact() -> UserErrorModel {
        UserErrorModel {
            p_oversize: 0.0,
            max_oversize: 1.0,
            p_undersize: 0.0,
            max_undersize: 1.0,
        }
    }

    /// Samples a multiplicative sizing factor.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let dice: f64 = rng.random_range(0.0..1.0);
        if dice < self.p_oversize {
            rng.random_range(1.0..self.max_oversize.max(1.0 + 1e-9))
        } else if dice < self.p_oversize + self.p_undersize {
            1.0 / rng.random_range(1.0..self.max_undersize.max(1.0 + 1e-9))
        } else {
            1.0
        }
    }
}

/// A reservation: node count plus a per-node slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizedReservation {
    /// Number of node-sized instances requested.
    pub nodes: usize,
    /// Per-node slice requested.
    pub slice: NodeResources,
    /// The sizing factor the "user" applied (1.0 = right-sized).
    pub error_factor: f64,
}

impl SizedReservation {
    /// Total reserved cores.
    pub fn total_cores(&self) -> u32 {
        self.nodes as u32 * self.slice.cores
    }

    /// Total reserved memory in GB.
    pub fn total_memory_gb(&self) -> f64 {
        self.nodes as f64 * self.slice.memory_gb
    }
}

/// Standard per-instance slice reservation-based systems request
/// (a "container" of 4 cores / 4 GB, capped per server — small enough to
/// land on any platform, which is exactly how heterogeneity-blind
/// placement gets hurt).
const SLICE_CORES: u32 = 4;
const SLICE_MEMORY_GB: f64 = 4.0;

/// Sizes reservations the way the paper's baselines do: one quick
/// profiling run (the framework scheduler's own estimate) extrapolated
/// with a linear-scaling assumption, then multiplied by the user error.
#[derive(Debug)]
pub struct ReservationSizer {
    error_model: UserErrorModel,
    rng: StdRng,
}

impl ReservationSizer {
    /// A sizer with the given user-error model.
    pub fn new(error_model: UserErrorModel, seed: u64) -> ReservationSizer {
        ReservationSizer {
            error_model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sizes a reservation for workload `id`.
    ///
    /// Framework self-schedulers (the [`UserErrorModel::exact`] mode)
    /// size analytics jobs from the *data*: enough nodes to run the map
    /// tasks in a few waves at stock parameters — deadline-oblivious,
    /// exactly like stock Hadoop. Everything else is estimated from a
    /// single profiling run at the standard slice on a *random* platform
    /// (reservation users don't reason about heterogeneity), assuming
    /// performance scales linearly with instance count.
    pub fn size(&mut self, world: &mut World, id: WorkloadId) -> SizedReservation {
        let spec = world.spec(id).clone();
        if self.error_model == UserErrorModel::exact() && spec.class.has_framework_params() {
            let nodes = quasar_workloads::hadoop_wave_nodes(spec.dataset.size_gb());
            return SizedReservation {
                nodes,
                slice: NodeResources::new(SLICE_CORES, SLICE_MEMORY_GB),
                error_factor: 1.0,
            };
        }
        let catalog = world.catalog();
        let platform_count = catalog.len();
        let pick = self.rng.random_range(0..platform_count);
        let platform = catalog.iter().nth(pick).expect("index in range");
        let slice = NodeResources::new(
            SLICE_CORES.min(platform.cores),
            SLICE_MEMORY_GB.min(platform.memory_gb),
        );
        let pid = platform.id;

        let config = ProfileConfig::single(pid, slice);
        let measured = world.profile_config(id, &config).value;

        let ideal_nodes = match spec.target {
            QosTarget::CompletionTime { seconds } => {
                // One instance takes `measured` seconds; assume linear
                // speed-up with instances.
                (measured / seconds).ceil() as usize
            }
            QosTarget::Throughput { qps, .. } => (qps / measured.max(1e-9)).ceil() as usize,
            QosTarget::Ips { .. } => 1,
        }
        .max(1);

        let error_factor = if spec.class == WorkloadClass::SingleNode {
            1.0
        } else {
            self.error_model.sample(&mut self.rng)
        };
        let nodes = ((ideal_nodes as f64 * error_factor).round() as usize).clamp(1, 64);

        SizedReservation {
            nodes,
            slice: NodeResources::new(SLICE_CORES, SLICE_MEMORY_GB),
            error_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_error_distribution_shape() {
        let model = UserErrorModel::paper();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..10_000).map(|_| model.sample(&mut rng)).collect();
        let over = samples.iter().filter(|&&f| f > 1.0).count() as f64 / 10_000.0;
        let under = samples.iter().filter(|&&f| f < 1.0).count() as f64 / 10_000.0;
        assert!((over - 0.70).abs() < 0.03, "oversize fraction {over}");
        assert!((under - 0.20).abs() < 0.03, "undersize fraction {under}");
        assert!(samples.iter().all(|&f| (0.2..=10.0).contains(&f)));
    }

    #[test]
    fn exact_model_is_identity() {
        let model = UserErrorModel::exact();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(model.sample(&mut rng), 1.0);
        }
    }

    #[test]
    fn reservation_totals() {
        let r = SizedReservation {
            nodes: 3,
            slice: NodeResources::new(8, 8.0),
            error_factor: 1.0,
        };
        assert_eq!(r.total_cores(), 24);
        assert_eq!(r.total_memory_gb(), 24.0);
    }

    #[test]
    fn sizer_produces_reasonable_counts() {
        use quasar_cluster::{managers::NullManager, ClusterSpec, SimConfig, Simulation};
        use quasar_workloads::generate::Generator;
        use quasar_workloads::{Dataset, PlatformCatalog, Priority};

        let catalog = PlatformCatalog::local();
        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 1),
            Box::new(NullManager),
            SimConfig::default(),
        );
        let mut generator = Generator::new(catalog, 3);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "h",
            Dataset::new("d", 20.0, 1.0),
            4,
            3_600.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        sim.submit_at(job, 0.0);
        sim.run_until(5.0);
        let mut sizer = ReservationSizer::new(UserErrorModel::exact(), 7);
        let r = sizer.size(sim.world_mut(), id);
        assert!((1..=64).contains(&r.nodes));
        assert_eq!(r.error_factor, 1.0);
    }
}
