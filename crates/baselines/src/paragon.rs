//! Paragon-style assignment: heterogeneity- and interference-aware server
//! ranking via collaborative filtering, with allocation fixed externally.
//!
//! Paragon (ASPLOS'13) is the paper's strongest baseline: it classifies
//! incoming workloads against heterogeneity and interference (the same CF
//! machinery Quasar extends) but takes the resource *allocation* as given.
//! Comparing Reservation+Paragon against Quasar isolates the value of
//! performing allocation and assignment jointly (Fig. 11a).

use std::collections::HashMap;

use quasar_cluster::{ProfileConfig, ServerId, World};
use quasar_core::{Axes, Classifier, GoalKind, HistorySet, ProfilingData};
use quasar_interference::{penalty_for, PressureVector};
use quasar_workloads::WorkloadId;

/// Per-workload Paragon classification: heterogeneity scores plus
/// interference caused/tolerated.
#[derive(Debug, Clone)]
pub struct ParagonClass {
    /// Estimated speed per platform column.
    pub hetero_speed: Vec<f64>,
    /// Estimated tolerated pressure.
    pub tolerated: PressureVector,
    /// Estimated caused pressure.
    pub caused: PressureVector,
    /// Profiling wall-clock cost.
    pub wall_seconds: f64,
}

/// The Paragon classification/ranking engine.
#[derive(Debug)]
pub struct ParagonEngine {
    history: HistorySet,
    classifier: Classifier,
    classes: HashMap<WorkloadId, ParagonClass>,
}

impl ParagonEngine {
    /// Builds an engine over an offline history (shared with Quasar —
    /// both systems draw on the same previously-scheduled workloads).
    pub fn new(history: HistorySet) -> ParagonEngine {
        ParagonEngine {
            history,
            classifier: Classifier::new(),
            classes: HashMap::new(),
        }
    }

    /// The shared axes.
    pub fn axes(&self) -> &Axes {
        self.history.axes()
    }

    /// The classification of a workload, if present.
    pub fn class(&self, id: WorkloadId) -> Option<&ParagonClass> {
        self.classes.get(&id)
    }

    /// Forgets a completed workload.
    pub fn remove(&mut self, id: WorkloadId) {
        self.classes.remove(&id);
    }

    /// Profiles and classifies a workload for heterogeneity and
    /// interference only (Paragon's two classifications), using two
    /// platform runs and two microbenchmark ramps per direction.
    pub fn classify(&mut self, world: &mut World, id: WorkloadId) -> &ParagonClass {
        let axes = self.history.axes().clone();
        let spec = world.spec(id);
        let kind = GoalKind::of(&spec.target);
        let class_kind = spec.class;

        let ref_idx = axes.ref_platform_index();
        let other_idx = (ref_idx + 1) % axes.platforms.len();
        let anchor = axes.anchor();

        let ref_run = world.profile_config(id, &ProfileConfig::single(axes.ref_platform, anchor));
        let other_run = world.profile_config(
            id,
            &ProfileConfig::single(axes.platforms[other_idx], anchor),
        );

        let mut tolerated = Vec::new();
        let mut caused = Vec::new();
        for (i, &resource) in axes.resources.iter().enumerate().take(2) {
            tolerated.push((i, world.probe_sensitivity(id, resource, 0.05).value));
            caused.push((i, world.probe_caused(id, resource).value));
        }

        let data = ProfilingData {
            kind,
            scale_up: vec![(axes.anchor_config, ref_run.value)],
            scale_out: vec![],
            hetero: vec![(ref_idx, ref_run.value), (other_idx, other_run.value)],
            params: vec![],
            tolerated,
            caused,
            wall_seconds: class_kind.setup_seconds() + ref_run.seconds + other_run.seconds + 8.0,
            total_seconds: ref_run.seconds + other_run.seconds + 8.0,
        };
        let full = self.classifier.classify(&self.history, &data);
        self.classes.insert(
            id,
            ParagonClass {
                hetero_speed: full.hetero_speed,
                tolerated: full.tolerated,
                caused: full.caused,
                wall_seconds: data.wall_seconds,
            },
        );
        self.classes.get(&id).expect("just inserted")
    }

    /// Estimated pressure on a server from the caused vectors of the
    /// workloads this engine classified.
    pub fn estimated_pressure(
        &self,
        world: &World,
        server: ServerId,
        exclude: Option<WorkloadId>,
    ) -> PressureVector {
        let total_cores = world.server(server).total_cores() as f64;
        let mut pressure = PressureVector::zero();
        for wid in world.workloads_on(server) {
            if Some(wid) == exclude {
                continue;
            }
            let Some(class) = self.classes.get(&wid) else {
                continue;
            };
            let Some(node) = world.placement(wid).and_then(|p| p.node_on(server)) else {
                continue;
            };
            let share = (node.resources.cores as f64 / total_cores).min(1.0);
            pressure += class.caused.scaled(share);
        }
        pressure
    }

    /// Ranks servers for a classified workload: best platform × least
    /// interference first. Only servers passing `fits` are returned.
    /// `slice_cores` is the instance size being placed: servers too small
    /// to host the full slice are scored down proportionally (their
    /// capped container runs on fewer cores).
    pub fn rank_servers(
        &self,
        world: &World,
        id: WorkloadId,
        slice_cores: u32,
        fits: impl Fn(&quasar_cluster::Server) -> bool,
    ) -> Vec<ServerId> {
        let Some(class) = self.classes.get(&id) else {
            return Vec::new();
        };
        let axes = self.history.axes();
        let mut scored: Vec<(ServerId, f64)> = world
            .servers()
            .iter()
            .filter(|s| fits(s))
            .map(|s| {
                let platform_index = axes.platform_index(s.platform());
                let pressure = self.estimated_pressure(world, s.id(), Some(id));
                // Both interference directions (Paragon scores caused and
                // tolerated): penalize servers whose tenants our pressure
                // would push past their classified tolerance.
                let added = class.caused.scaled(0.5);
                let mut victim_factor = 1.0_f64;
                for tenant in world.workloads_on(s.id()) {
                    if tenant == id {
                        continue;
                    }
                    let Some(tclass) = self.classes.get(&tenant) else {
                        continue;
                    };
                    let tpressure = self.estimated_pressure(world, s.id(), Some(tenant)) + added;
                    let pen = penalty_for(&tclass.tolerated, &tpressure);
                    if pen < 0.95 {
                        victim_factor = victim_factor.min(pen.max(0.05));
                    }
                }
                let truncation =
                    s.total_cores().min(slice_cores) as f64 / slice_cores.max(1) as f64;
                let score = class.hetero_speed[platform_index].max(0.0)
                    * penalty_for(&class.tolerated, &pressure)
                    * victim_factor
                    * truncation;
                (s.id(), score)
            })
            .collect();
        // A NaN score (corrupted estimate) must rank last, never first.
        scored.sort_by(|a, b| {
            quasar_core::ordering::desirability(b.1)
                .total_cmp(&quasar_core::ordering::desirability(a.1))
        });
        scored.into_iter().map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_cluster::{managers::NullManager, ClusterSpec, SimConfig, Simulation};
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{Dataset, PlatformCatalog, Priority, WorkloadClass};

    fn setup() -> (Simulation, ParagonEngine, WorkloadId) {
        let catalog = PlatformCatalog::local();
        let history = HistorySet::bootstrap(&catalog, 6, 9);
        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 1),
            Box::new(NullManager),
            SimConfig::default(),
        );
        let mut generator = Generator::new(catalog, 17);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "h",
            Dataset::new("d", 8.0, 1.0),
            2,
            900.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        sim.submit_at(job, 0.0);
        sim.run_until(5.0);
        (sim, ParagonEngine::new(history), id)
    }

    #[test]
    fn classify_produces_full_hetero_row() {
        let (mut sim, mut engine, id) = setup();
        let class = engine.classify(sim.world_mut(), id).clone();
        assert_eq!(class.hetero_speed.len(), 10);
        assert!(class.hetero_speed.iter().all(|s| *s > 0.0));
        assert!(class.wall_seconds > 0.0);
    }

    #[test]
    fn ranking_orders_all_fitting_servers() {
        let (mut sim, mut engine, id) = setup();
        engine.classify(sim.world_mut(), id);
        let ranked = engine.rank_servers(sim.world(), id, 4, |_| true);
        assert_eq!(ranked.len(), 10);
        // Scores must be non-increasing along the ranking.
        let axes = engine.axes().clone();
        let class = engine.class(id).unwrap().clone();
        let mut last = f64::INFINITY;
        for sid in ranked {
            let p = axes.platform_index(sim.world().server(sid).platform());
            let score = class.hetero_speed[p];
            assert!(score <= last + 1e-9);
            last = score;
        }
    }

    #[test]
    fn remove_forgets_state() {
        let (mut sim, mut engine, id) = setup();
        engine.classify(sim.world_mut(), id);
        assert!(engine.class(id).is_some());
        engine.remove(id);
        assert!(engine.class(id).is_none());
    }
}
