//! The configurable baseline manager.

use std::collections::{HashMap, VecDeque};

use quasar_cluster::{JobState, Manager, NodeAlloc, Observation, ServerId, World};
use quasar_core::HistorySet;
use quasar_workloads::{FrameworkParams, NodeResources, WorkloadId};

use crate::paragon::ParagonEngine;
use crate::reservation::{ReservationSizer, UserErrorModel};

/// How the baseline decides *how much* to allocate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocationPolicy {
    /// Reservations sized from one framework estimate, scaled by the user
    /// error model (Fig. 1d for user reservations; exact for framework
    /// self-scheduling, whose error comes from its linear-scaling
    /// assumption).
    Reservation(UserErrorModel),
    /// Auto-scaling for services: start at `min` instances, add one when
    /// measured utilization exceeds 70%, remove one below 30% (batch
    /// workloads fall back to exact reservations).
    Autoscale {
        /// Minimum instances.
        min: usize,
        /// Maximum instances (the paper's HotCRP scenario uses 8).
        max: usize,
    },
}

/// How the baseline decides *where* to place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentPolicy {
    /// Least-loaded servers by free cores; heterogeneity- and
    /// interference-oblivious.
    LeastLoaded,
    /// Paragon-style CF ranking (heterogeneity + interference aware).
    Paragon,
}

/// Spin-up latency of an auto-scaled instance; scale-out through the
/// auto-scaler is slower than Quasar's in-place scale-up (§6.3).
const AUTOSCALE_SPINUP_S: f64 = 30.0;

/// Seconds between auto-scaler reactions per service.
const AUTOSCALE_COOLDOWN_S: f64 = 60.0;

/// A reservation-era cluster manager assembled from an allocation and an
/// assignment policy.
///
/// # Examples
///
/// ```no_run
/// use quasar_baselines::{AllocationPolicy, AssignmentPolicy, BaselineManager, UserErrorModel};
///
/// let manager = BaselineManager::new(
///     AllocationPolicy::Reservation(UserErrorModel::paper()),
///     AssignmentPolicy::LeastLoaded,
///     None,
///     7,
/// );
/// assert_eq!(manager.name(), "reservation+ll");
/// # let _ = manager;
/// ```
pub struct BaselineManager {
    name: String,
    alloc: AllocationPolicy,
    assign: AssignmentPolicy,
    sizer: ReservationSizer,
    paragon: Option<ParagonEngine>,
    pending: VecDeque<WorkloadId>,
    requested_nodes: HashMap<WorkloadId, usize>,
    autoscale_cooldown: HashMap<WorkloadId, f64>,
    placement_round: std::cell::Cell<u64>,
}

impl BaselineManager {
    /// Builds a baseline manager. `history` is required when
    /// `assign == Paragon` (it shares Quasar's offline CF history).
    ///
    /// # Panics
    ///
    /// Panics if Paragon assignment is requested without a history.
    pub fn new(
        alloc: AllocationPolicy,
        assign: AssignmentPolicy,
        history: Option<HistorySet>,
        seed: u64,
    ) -> BaselineManager {
        let paragon = match assign {
            AssignmentPolicy::Paragon => Some(ParagonEngine::new(
                history.expect("Paragon assignment needs an offline history"),
            )),
            AssignmentPolicy::LeastLoaded => None,
        };
        let alloc_name = match alloc {
            AllocationPolicy::Reservation(m) if m == UserErrorModel::exact() => "framework",
            AllocationPolicy::Reservation(_) => "reservation",
            AllocationPolicy::Autoscale { .. } => "autoscale",
        };
        let assign_name = match assign {
            AssignmentPolicy::LeastLoaded => "ll",
            AssignmentPolicy::Paragon => "paragon",
        };
        BaselineManager {
            name: format!("{alloc_name}+{assign_name}"),
            alloc,
            assign,
            sizer: ReservationSizer::new(
                match alloc {
                    AllocationPolicy::Reservation(m) => m,
                    AllocationPolicy::Autoscale { .. } => UserErrorModel::exact(),
                },
                seed,
            ),
            paragon,
            pending: VecDeque::new(),
            requested_nodes: HashMap::new(),
            autoscale_cooldown: HashMap::new(),
            placement_round: std::cell::Cell::new(seed),
        }
    }

    /// The name of this manager's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Servers that fit `slice`, ordered by the assignment policy.
    fn ordered_servers(
        &self,
        world: &World,
        id: WorkloadId,
        slice: NodeResources,
    ) -> Vec<ServerId> {
        match self.assign {
            AssignmentPolicy::LeastLoaded => {
                // True least-loaded: lowest committed fraction first.
                // Heterogeneity-blind by design — ties resolve by a hash
                // of the server id, so an empty cluster fills in an
                // arbitrary platform mix, as naive schedulers do.
                let round = self.placement_round.get().wrapping_add(1);
                self.placement_round.set(round);
                let mut servers: Vec<&quasar_cluster::Server> = world
                    .servers()
                    .iter()
                    .filter(|s| {
                        s.free_cores() >= slice.cores.min(s.total_cores())
                            && s.free_memory_gb() >= slice.memory_gb.min(s.total_memory_gb())
                    })
                    .collect();
                servers.sort_by(|a, b| {
                    let shuffle = |s: &quasar_cluster::Server| {
                        (s.id().0 as u64)
                            .wrapping_add(round)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            >> 32
                    };
                    a.core_commit_fraction()
                        .total_cmp(&b.core_commit_fraction())
                        .then(shuffle(a).cmp(&shuffle(b)))
                });
                servers.into_iter().map(|s| s.id()).collect()
            }
            AssignmentPolicy::Paragon => self
                .paragon
                .as_ref()
                .expect("paragon engine present")
                .rank_servers(world, id, slice.cores, |s| {
                    s.free_cores() >= slice.cores.min(s.total_cores())
                        && s.free_memory_gb() >= slice.memory_gb.min(s.total_memory_gb())
                }),
        }
    }

    /// Places up to `nodes` instances of `slice`; returns how many fit.
    ///
    /// `require_all` models reservation semantics: the request waits in
    /// the queue until the *whole* reservation fits (the paper counts
    /// this wait toward scheduling overheads); framework and autoscale
    /// modes take what is available.
    #[allow(clippy::too_many_arguments)]
    fn place_instances(
        &mut self,
        world: &mut World,
        id: WorkloadId,
        nodes: usize,
        slice: NodeResources,
        delay_s: f64,
        require_all: bool,
    ) -> usize {
        let ordered = self.ordered_servers(world, id, slice);
        if require_all && ordered.len() < nodes {
            return 0;
        }
        let chosen: Vec<ServerId> = ordered.into_iter().take(nodes).collect();
        if chosen.is_empty() {
            return 0;
        }
        let active_after = world.now() + delay_s;
        // Cap the slice per server: small platforms host a smaller
        // container rather than being skipped entirely.
        let allocs: Vec<NodeAlloc> = chosen
            .iter()
            .map(|&server| {
                let s = world.server(server);
                NodeAlloc {
                    server,
                    resources: quasar_workloads::NodeResources::new(
                        slice.cores.min(s.total_cores()),
                        slice.memory_gb.min(s.total_memory_gb()),
                    ),
                    active_after,
                }
            })
            .collect();
        let count = allocs.len();
        match world.place(id, allocs, FrameworkParams::default()) {
            Ok(()) => count,
            Err(_) => 0,
        }
    }

    fn try_place(&mut self, world: &mut World, id: WorkloadId) -> bool {
        let is_service = world.spec(id).class.is_latency_critical();
        let (nodes, delay) = match self.alloc {
            AllocationPolicy::Autoscale { min, .. } if is_service => (min, 0.0),
            _ => {
                let r = *self
                    .requested_nodes
                    .get(&id)
                    .expect("sized before placement");
                (r, 0.0)
            }
        };
        let delay = match self.assign {
            AssignmentPolicy::Paragon => self
                .paragon
                .as_ref()
                .and_then(|p| p.class(id))
                .map(|c| c.wall_seconds)
                .unwrap_or(delay),
            AssignmentPolicy::LeastLoaded => delay,
        };
        // Framework self-schedulers own whole machines (dedicated Hadoop
        // tasktrackers); reservation users and auto-scalers request
        // 8-core containers.
        let framework_mode = matches!(
            self.alloc,
            AllocationPolicy::Reservation(m) if m == UserErrorModel::exact()
        ) && world.spec(id).class.has_framework_params();
        let slice = if framework_mode {
            NodeResources::new(64, 512.0) // capped to each server's size
        } else if matches!(self.alloc, AllocationPolicy::Autoscale { .. }) {
            NodeResources::new(8, 8.0)
        } else {
            NodeResources::new(4, 4.0)
        };
        let require_all = matches!(
            self.alloc,
            AllocationPolicy::Reservation(m) if m != UserErrorModel::exact()
        );
        let placed = self.place_instances(world, id, nodes, slice, delay, require_all);
        placed > 0
    }

    fn autoscale_tick(&mut self, world: &mut World) {
        let AllocationPolicy::Autoscale { min, max } = self.alloc else {
            return;
        };
        let slice = NodeResources::new(8, 8.0);
        let running = world.ids_in_state(JobState::Running);
        for id in running {
            if !world.spec(id).class.is_latency_critical() {
                continue;
            }
            let cooldown = self.autoscale_cooldown.get(&id).copied().unwrap_or(0.0);
            if world.now() < cooldown {
                continue;
            }
            let Some(Observation::Service(obs)) = world.observation(id) else {
                continue;
            };
            let Some(placement) = world.placement(id) else {
                continue;
            };
            let n = placement.node_count();
            if obs.utilization > 0.70 && n < max {
                // Add one instance on the least-loaded fitting server.
                let used: Vec<usize> = placement.nodes.iter().map(|x| x.server.0).collect();
                let next = world
                    .servers()
                    .iter()
                    .filter(|s| {
                        !used.contains(&s.id().0)
                            && s.free_cores() >= slice.cores
                            && s.free_memory_gb() >= slice.memory_gb
                    })
                    .max_by_key(|s| s.free_cores())
                    .map(|s| s.id());
                if let Some(server) = next {
                    let _ = world.add_node(
                        id,
                        NodeAlloc {
                            server,
                            resources: slice,
                            active_after: world.now() + AUTOSCALE_SPINUP_S,
                        },
                    );
                    self.autoscale_cooldown
                        .insert(id, world.now() + AUTOSCALE_COOLDOWN_S);
                }
            } else if obs.utilization < 0.30 && n > min {
                let worst = placement.nodes.last().map(|x| x.server);
                if let Some(server) = worst {
                    let _ = world.remove_node(id, server);
                    self.autoscale_cooldown
                        .insert(id, world.now() + AUTOSCALE_COOLDOWN_S);
                }
            }
        }
    }

    fn retry_pending(&mut self, world: &mut World) {
        let mut still = VecDeque::new();
        while let Some(id) = self.pending.pop_front() {
            if world.state(id) != JobState::Pending {
                continue;
            }
            if !self.try_place(world, id) {
                still.push_back(id);
            }
        }
        self.pending = still;
    }
}

impl Manager for BaselineManager {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_arrival(&mut self, world: &mut World, id: WorkloadId) {
        let is_service = world.spec(id).class.is_latency_critical();
        // Size the reservation (skipped for auto-scaled services, which
        // start from `min` and react to load).
        let nodes = match self.alloc {
            AllocationPolicy::Autoscale { min, .. } if is_service => min,
            _ => {
                let r = self.sizer.size(world, id);
                world.report_reservation(id, r.total_cores(), r.total_memory_gb());
                r.nodes
            }
        };
        self.requested_nodes.insert(id, nodes);

        if self.assign == AssignmentPolicy::Paragon {
            self.paragon
                .as_mut()
                .expect("paragon engine present")
                .classify(world, id);
        }
        if !self.try_place(world, id) {
            self.pending.push_back(id);
        }
    }

    fn on_tick(&mut self, world: &mut World) {
        self.autoscale_tick(world);
        if !self.pending.is_empty() {
            self.retry_pending(world);
        }
    }

    fn on_completion(&mut self, world: &mut World, id: WorkloadId) {
        self.requested_nodes.remove(&id);
        if let Some(p) = self.paragon.as_mut() {
            p.remove(id);
        }
        self.retry_pending(world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_cluster::{ClusterSpec, SimConfig, Simulation};
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{Dataset, LoadPattern, PlatformCatalog, Priority, WorkloadClass};

    fn run_scenario(manager: BaselineManager) -> Simulation {
        let catalog = PlatformCatalog::local();
        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 2),
            Box::new(manager),
            SimConfig::default(),
        );
        let mut generator = Generator::new(catalog, 5);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "h",
            Dataset::new("d", 10.0, 1.0),
            2,
            900.0,
            Priority::Guaranteed,
        );
        sim.submit_at(job, 0.0);
        let svc = generator.service(
            WorkloadClass::Memcached,
            "mc",
            16.0,
            LoadPattern::Flat { qps: 40_000.0 },
            Priority::Guaranteed,
        );
        sim.submit_at(svc, 10.0);
        sim.run_until(4_000.0);
        sim
    }

    #[test]
    fn reservation_ll_places_and_reports_reservations() {
        let manager = BaselineManager::new(
            AllocationPolicy::Reservation(UserErrorModel::paper()),
            AssignmentPolicy::LeastLoaded,
            None,
            11,
        );
        let sim = run_scenario(manager);
        // Reservations show up in the metrics samples.
        let samples = sim.world().metrics().samples();
        assert!(samples.iter().any(|s| s.reserved_cpu > 0.0));
        // The batch job made progress or completed.
        let completions = sim.world().completions();
        assert!(!completions.is_empty());
    }

    #[test]
    fn autoscale_grows_under_load() {
        let manager = BaselineManager::new(
            AllocationPolicy::Autoscale { min: 1, max: 8 },
            AssignmentPolicy::LeastLoaded,
            None,
            13,
        );
        let catalog = PlatformCatalog::local();
        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 2),
            Box::new(manager),
            SimConfig::default(),
        );
        let mut generator = Generator::new(catalog, 6);
        let svc = generator.service(
            WorkloadClass::Memcached,
            "mc",
            16.0,
            // A load that one 8-core slice cannot serve.
            LoadPattern::Flat { qps: 300_000.0 },
            Priority::Guaranteed,
        );
        let id = svc.id();
        sim.submit_at(svc, 0.0);
        sim.run_until(2_000.0);
        let placement = sim.world().placement(id).expect("service placed");
        assert!(
            placement.node_count() > 1,
            "autoscaler must have added instances, has {}",
            placement.node_count()
        );
    }

    #[test]
    fn paragon_assignment_works_end_to_end() {
        let catalog = PlatformCatalog::local();
        let history = HistorySet::bootstrap(&catalog, 6, 21);
        let manager = BaselineManager::new(
            AllocationPolicy::Reservation(UserErrorModel::exact()),
            AssignmentPolicy::Paragon,
            Some(history),
            17,
        );
        assert_eq!(manager.name(), "framework+paragon");
        let sim = run_scenario(manager);
        assert!(!sim.world().completions().is_empty());
    }

    #[test]
    #[should_panic(expected = "needs an offline history")]
    fn paragon_without_history_panics() {
        BaselineManager::new(
            AllocationPolicy::Reservation(UserErrorModel::paper()),
            AssignmentPolicy::Paragon,
            None,
            1,
        );
    }
}
