//! Property-based tests on the Quasar scheduler machinery.

use proptest::prelude::*;

use quasar_core::estimate::PlannedNode;
use quasar_core::greedy::CandidateServer;
use quasar_core::{Axes, Classification, Estimator, GoalKind, GreedyScheduler};
use quasar_interference::PressureVector;
use quasar_workloads::{NodeResources, PlatformCatalog, QosTarget};

fn axes() -> Axes {
    Axes::for_catalog(&PlatformCatalog::local())
}

fn classification(axes: &Axes, kind: GoalKind, speeds: &[f64]) -> Classification {
    Classification {
        kind,
        scale_up_speed: axes
            .scale_up
            .iter()
            .map(|r| r.cores as f64 * speeds[0].max(0.1))
            .collect(),
        scale_out_speed: Some(
            axes.scale_out
                .iter()
                .map(|&n| n as f64 * speeds[1].max(0.1))
                .collect(),
        ),
        hetero_speed: (0..axes.platforms.len())
            .map(|i| 0.5 + (i as f64 * speeds[2]).fract())
            .collect(),
        params_speed: None,
        tolerated: PressureVector::uniform(40.0 + 50.0 * speeds[3].fract().abs()),
        caused: PressureVector::uniform(20.0),
        runtime_calibration: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every node in a greedy plan fits inside its candidate's free
    /// resources and refers to a real candidate.
    #[test]
    fn plans_respect_capacity(
        speeds in proptest::collection::vec(0.1..5.0f64, 4),
        frees in proptest::collection::vec((1u32..24, 1.0..48.0f64), 3..20),
        target_qps in 10.0..1e6f64,
    ) {
        let axes = axes();
        let class = classification(&axes, GoalKind::Qps, &speeds);
        let candidates: Vec<CandidateServer> = frees
            .iter()
            .enumerate()
            .map(|(i, &(c, m))| CandidateServer {
                server: i,
                platform_index: i % axes.platforms.len(),
                free_cores: c,
                free_memory_gb: m,
                pressure: PressureVector::zero(),
                victim_factor: 1.0,
                hourly_price: 0.5,
            })
            .collect();
        let scheduler = GreedyScheduler::new(8);
        let target = QosTarget::throughput(target_qps, 1_000.0);
        if let Some(plan) = scheduler.plan(&axes, &class, &target, &candidates) {
            let mut seen = std::collections::BTreeSet::new();
            for (server, res) in &plan.nodes {
                prop_assert!(seen.insert(*server), "one slice per server");
                let cand = candidates.iter().find(|c| c.server == *server).expect("real candidate");
                prop_assert!(res.cores <= cand.free_cores);
                prop_assert!(res.memory_gb <= cand.free_memory_gb + 1e-9);
            }
            prop_assert!(plan.nodes.len() <= 8);
            prop_assert!(plan.predicted_goal.is_finite());
        }
    }

    /// Predicted speed is non-negative, finite, and monotone in node
    /// count for a linear scale-out classification.
    #[test]
    fn estimator_is_sane(
        speeds in proptest::collection::vec(0.1..5.0f64, 4),
        pressure in 0.0..100.0f64,
        su_col_seed in 0usize..1000,
    ) {
        let axes = axes();
        let class = classification(&axes, GoalKind::Qps, &speeds);
        let est = Estimator::new(&axes, &class);
        let col = su_col_seed % axes.scale_up.len();
        let node = PlannedNode {
            platform_index: 0,
            scale_up_col: col,
            pressure: PressureVector::uniform(pressure),
        };
        let mut last = 0.0;
        for n in 1..=6 {
            let nodes = vec![node; n];
            let speed = est.total_speed(&nodes, None);
            prop_assert!(speed.is_finite() && speed >= 0.0);
            prop_assert!(speed >= last - 1e-9, "speed monotone in node count");
            last = speed;
        }
    }

    /// Axis quantization: the nearest scale-up column of an axis config
    /// is itself; nearest scale-out is within the axis bounds.
    #[test]
    fn axis_quantization_round_trips(cores in 1u32..64, mem in 0.5..64.0f64, n in 1usize..200) {
        let axes = axes();
        for (i, res) in axes.scale_up.iter().enumerate() {
            prop_assert_eq!(axes.nearest_scale_up(*res), i);
        }
        let col = axes.nearest_scale_up(NodeResources::new(cores, mem));
        prop_assert!(col < axes.scale_up.len());
        let so = axes.nearest_scale_out(n);
        prop_assert!(so < axes.scale_out.len());
    }

    /// Goal-kind conversions are involutions and order-preserving in the
    /// right direction.
    #[test]
    fn goal_kind_conversions(v in 0.001..1e9f64, kind_idx in 0usize..3) {
        let kind = GoalKind::ALL[kind_idx];
        let speed = kind.to_speed(v);
        prop_assert!(speed > 0.0);
        prop_assert!((kind.from_speed(speed) - v).abs() / v < 1e-9);
    }
}
