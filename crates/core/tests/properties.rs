//! Property-based tests on the Quasar scheduler machinery.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use proptest::prelude::*;

use quasar_core::estimate::PlannedNode;
use quasar_core::greedy::CandidateServer;
use quasar_core::{
    Axes, Classification, Classifier, Estimator, GoalKind, GreedyScheduler, HistorySet,
    ProfilingData, SimilarityConfig, SimilarityIndex, SimilarityOutcome,
};
use quasar_interference::PressureVector;
use quasar_workloads::{NodeResources, PlatformCatalog, QosTarget};

fn axes() -> Axes {
    Axes::for_catalog(&PlatformCatalog::local())
}

/// One small offline history shared across classification properties
/// (bootstrap is by far the most expensive step).
fn shared_history() -> &'static HistorySet {
    static HISTORY: OnceLock<HistorySet> = OnceLock::new();
    HISTORY.get_or_init(|| HistorySet::bootstrap(&PlatformCatalog::local(), 6, 42))
}

/// Builds a plausible profiling row from raw proptest draws: entry keys
/// are folded onto real axis columns (deduplicated — one observation per
/// column, like the profiler produces).
fn fold_profile(
    kind: GoalKind,
    su: &[(usize, f64)],
    he: &[(usize, f64)],
    tol: &[(usize, f64)],
) -> ProfilingData {
    let axes = shared_history().axes();
    let fold = |m: &[(usize, f64)], len: usize| -> Vec<(usize, f64)> {
        let mut cols: BTreeMap<usize, f64> = BTreeMap::new();
        for &(k, v) in m {
            cols.insert(k % len, v);
        }
        cols.into_iter().collect()
    };
    ProfilingData {
        kind,
        scale_up: fold(su, axes.scale_up.len()),
        scale_out: vec![],
        hetero: fold(he, axes.platforms.len()),
        params: vec![],
        tolerated: fold(tol, axes.resources.len()),
        caused: vec![],
        wall_seconds: 1.0,
        total_seconds: 1.0,
    }
}

fn classification(axes: &Axes, kind: GoalKind, speeds: &[f64]) -> Classification {
    Classification {
        kind,
        scale_up_speed: axes
            .scale_up
            .iter()
            .map(|r| r.cores as f64 * speeds[0].max(0.1))
            .collect(),
        scale_out_speed: Some(
            axes.scale_out
                .iter()
                .map(|&n| n as f64 * speeds[1].max(0.1))
                .collect(),
        ),
        hetero_speed: (0..axes.platforms.len())
            .map(|i| 0.5 + (i as f64 * speeds[2]).fract())
            .collect(),
        params_speed: None,
        tolerated: PressureVector::uniform(40.0 + 50.0 * speeds[3].fract().abs()),
        caused: PressureVector::uniform(20.0),
        runtime_calibration: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every node in a greedy plan fits inside its candidate's free
    /// resources and refers to a real candidate.
    #[test]
    fn plans_respect_capacity(
        speeds in proptest::collection::vec(0.1..5.0f64, 4),
        frees in proptest::collection::vec((1u32..24, 1.0..48.0f64), 3..20),
        target_qps in 10.0..1e6f64,
    ) {
        let axes = axes();
        let class = classification(&axes, GoalKind::Qps, &speeds);
        let candidates: Vec<CandidateServer> = frees
            .iter()
            .enumerate()
            .map(|(i, &(c, m))| CandidateServer {
                server: i,
                platform_index: i % axes.platforms.len(),
                free_cores: c,
                free_memory_gb: m,
                pressure: PressureVector::zero(),
                victim_factor: 1.0,
                hourly_price: 0.5,
            })
            .collect();
        let scheduler = GreedyScheduler::new(8);
        let target = QosTarget::throughput(target_qps, 1_000.0);
        if let Some(plan) = scheduler.plan(&axes, &class, &target, &candidates) {
            let mut seen = std::collections::BTreeSet::new();
            for (server, res) in &plan.nodes {
                prop_assert!(seen.insert(*server), "one slice per server");
                let cand = candidates.iter().find(|c| c.server == *server).expect("real candidate");
                prop_assert!(res.cores <= cand.free_cores);
                prop_assert!(res.memory_gb <= cand.free_memory_gb + 1e-9);
            }
            prop_assert!(plan.nodes.len() <= 8);
            prop_assert!(plan.predicted_goal.is_finite());
        }
    }

    /// Predicted speed is non-negative, finite, and monotone in node
    /// count for a linear scale-out classification.
    #[test]
    fn estimator_is_sane(
        speeds in proptest::collection::vec(0.1..5.0f64, 4),
        pressure in 0.0..100.0f64,
        su_col_seed in 0usize..1000,
    ) {
        let axes = axes();
        let class = classification(&axes, GoalKind::Qps, &speeds);
        let est = Estimator::new(&axes, &class);
        let col = su_col_seed % axes.scale_up.len();
        let node = PlannedNode {
            platform_index: 0,
            scale_up_col: col,
            pressure: PressureVector::uniform(pressure),
        };
        let mut last = 0.0;
        for n in 1..=6 {
            let nodes = vec![node; n];
            let speed = est.total_speed(&nodes, None);
            prop_assert!(speed.is_finite() && speed >= 0.0);
            prop_assert!(speed >= last - 1e-9, "speed monotone in node count");
            last = speed;
        }
    }

    /// Axis quantization: the nearest scale-up column of an axis config
    /// is itself; nearest scale-out is within the axis bounds.
    #[test]
    fn axis_quantization_round_trips(cores in 1u32..64, mem in 0.5..64.0f64, n in 1usize..200) {
        let axes = axes();
        for (i, res) in axes.scale_up.iter().enumerate() {
            prop_assert_eq!(axes.nearest_scale_up(*res), i);
        }
        let col = axes.nearest_scale_up(NodeResources::new(cores, mem));
        prop_assert!(col < axes.scale_up.len());
        let so = axes.nearest_scale_out(n);
        prop_assert!(so < axes.scale_out.len());
    }

    /// Goal-kind conversions are involutions and order-preserving in the
    /// right direction.
    #[test]
    fn goal_kind_conversions(v in 0.001..1e9f64, kind_idx in 0usize..3) {
        let kind = GoalKind::ALL[kind_idx];
        let speed = kind.to_speed(v);
        prop_assert!(speed > 0.0);
        prop_assert!((kind.from_speed(speed) - v).abs() / v < 1e-9);
    }
}

proptest! {
    // Each case runs full SVD+SGD classifications; keep the case count
    // low so the suite stays fast in debug builds.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The model-capturing path the similarity index misses through is
    /// bit-identical to the plain cached classification on any profiling
    /// row — the invariant that makes "index disabled" and "index miss"
    /// indistinguishable from classification without the index.
    #[test]
    fn model_capture_is_bit_identical_to_plain_classification(
        kind_idx in 0usize..3,
        su in proptest::collection::vec((0usize..1000, 0.1..100.0f64), 1..3),
        he in proptest::collection::vec((0usize..1000, 0.1..100.0f64), 1..3),
        tol in proptest::collection::vec((0usize..1000, 1.0..99.0f64), 0..3),
    ) {
        let history = shared_history();
        let data = fold_profile(GoalKind::ALL[kind_idx], &su, &he, &tol);
        let classifier = Classifier::new();
        let plain = classifier.classify(history, &data);
        let (modeled, _, _) = classifier.classify_with_models(history, &data);
        prop_assert_eq!(plain, modeled);
    }

    /// An exact-duplicate arrival hits the index and gets back exactly
    /// what a full reconstruction of the same row would produce, with
    /// runtime calibration reset to 1.0.
    #[test]
    fn exact_duplicate_hit_equals_full_reconstruction(
        kind_idx in 0usize..3,
        su in proptest::collection::vec((0usize..1000, 0.1..100.0f64), 1..3),
        he in proptest::collection::vec((0usize..1000, 0.1..100.0f64), 1..3),
    ) {
        let history = shared_history();
        let data = fold_profile(GoalKind::ALL[kind_idx], &su, &he, &[]);
        let classifier = Classifier::new();
        let mut index = SimilarityIndex::new(SimilarityConfig::exact_only());
        let (first, _, o1) = index.classify_or_insert(&classifier, history, &data);
        prop_assert_eq!(o1, SimilarityOutcome::Miss);
        let (second, _, o2) = index.classify_or_insert(&classifier, history, &data);
        prop_assert_eq!(o2, SimilarityOutcome::Hit);
        prop_assert_eq!(&second, &first);
        let full = classifier.classify(history, &data);
        prop_assert_eq!(&second, &full);
        prop_assert_eq!(second.runtime_calibration, 1.0);
    }
}
