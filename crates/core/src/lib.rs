//! Quasar: resource-efficient and QoS-aware cluster management.
//!
//! This crate implements the paper's contribution (Delimitrou & Kozyrakis,
//! ASPLOS 2014) on top of the [`quasar_cluster`] simulator:
//!
//! 1. **Performance-centric interface** — workloads arrive with a
//!    [`quasar_workloads::QosTarget`] (completion time, QPS + tail
//!    latency, or IPS), never a resource reservation.
//! 2. **Fast classification** ([`classify`]) — four parallel
//!    collaborative-filtering classifications (scale-up, scale-out,
//!    heterogeneity, interference) combine a couple of sandboxed profiling
//!    runs ([`profile`]) with dense offline history ([`history`]) via SVD +
//!    PQ-reconstruction ([`quasar_cf`]).
//! 3. **Greedy joint allocation and assignment** ([`greedy`]) — servers
//!    ranked by estimated quality, allocations sized scale-up-first until
//!    the performance constraint is met with the least resources.
//!
//! The [`QuasarManager`] ties everything together as a
//! [`quasar_cluster::Manager`], including runtime monitoring, phase
//! detection, allocation adjustment (§4.1) and straggler detection
//! ([`straggler`], §4.3).
//!
//! # Example
//!
//! ```no_run
//! use quasar_cluster::{ClusterSpec, SimConfig, Simulation};
//! use quasar_core::{QuasarConfig, QuasarManager};
//! use quasar_workloads::PlatformCatalog;
//!
//! let catalog = PlatformCatalog::local();
//! let manager = QuasarManager::bootstrap(&catalog, QuasarConfig::default());
//! let spec = ClusterSpec::uniform(catalog, 4);
//! let mut sim = Simulation::new(spec, Box::new(manager), SimConfig::default());
//! sim.run_until(3600.0);
//! ```

// `deny` rather than `forbid`: the persistent worker pool in `par`
// carries two tightly-scoped, documented `#[allow(unsafe_code)]` items
// (lending a caller-owned closure to pool threads that outlive the
// call). Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod axes;
pub mod classify;
mod config;
pub mod estimate;
pub mod greedy;
pub mod history;
mod manager;
pub mod ordering;
pub mod par;
pub mod predict;
pub mod profile;
pub mod sharded;
pub mod similarity;
pub mod straggler;

pub use axes::{Axes, GoalKind};
pub use classify::{AxisModels, Classification, Classifier, ExhaustiveClassifier};
pub use config::QuasarConfig;
pub use estimate::Estimator;
pub use greedy::GreedyScheduler;
pub use history::HistorySet;
pub use manager::{ManagerSnapshot, ManagerStats, QuasarManager};
pub use profile::{Profiler, ProfilingData};
pub use sharded::{run_sharded, BatchAdmission, BatchStats, ShardedConfig, ShardedOutcome};
pub use similarity::{Signature, SimilarityConfig, SimilarityIndex, SimilarityOutcome};
