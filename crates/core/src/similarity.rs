//! Sublinear classification: a banded MinHash index over quantized
//! profiling signatures.
//!
//! Quasar classifies every arrival from scratch — five SVD+SGD
//! reconstructions per workload. At cluster scale most arrivals are
//! *re*-arrivals: another instance of a workload the manager has already
//! classified. This module makes that case sublinear: each profiling row
//! is quantized into a sparse feature set, MinHashed, and filed into a
//! banded locality-sensitive index (band key → bucket of entries). A new
//! arrival probes its `bands` buckets — O(bands), independent of how
//! many workloads the index holds — and:
//!
//! * **hit** (quantization-level duplicate): reuse the neighbor's cached
//!   [`Classification`] with `runtime_calibration` reset to 1.0 and skip
//!   reconstruction entirely;
//! * **warm start** (estimated Jaccard ≥ `warm_threshold`): run the
//!   reconstructions, but seed each axis's SGD from the neighbor's
//!   cached [`AxisModels`], skipping the SVD initialization;
//! * **miss**: full cold classification, then insert the signature,
//!   classification, and models for future arrivals.
//!
//! Determinism contract: with the index disabled nothing here runs and
//! behavior is bit-identical to a build without this module. With it
//! enabled, every decision is a pure function of the arrival sequence —
//! query order, candidate order (band order, then insertion order), and
//! tie-breaks are all deterministic — so outcomes are byte-identical
//! across `--threads` values; per-cell ownership (one index per sharded
//! cell) keeps them byte-identical across `QUASAR_SHARDS` too.

use std::collections::HashMap;
use std::sync::OnceLock;

use quasar_obs::registry::{Counter, Histogram, Registry};
use quasar_obs::span::timed;

use crate::classify::{AxisModels, Classification, Classifier};
use crate::history::{ln_speed, HistorySet};
use crate::profile::ProfilingData;

/// Registry handles for the similarity-index metrics
/// (`quasar.core.similarity.*`). All of the counters are driven by the
/// deterministic arrival order (and, sharded, by per-cell arrival
/// streams whose totals are interleaving-independent), so they stay in
/// deterministic snapshots; `query_us` is wall-clock, but deterministic
/// snapshots already reduce histograms to their (deterministic) counts.
struct SimilarityMetrics {
    hits: Counter,
    warm_starts: Counter,
    misses: Counter,
    inserts: Counter,
    evictions: Counter,
    query_us: Histogram,
}

fn similarity_metrics() -> &'static SimilarityMetrics {
    static METRICS: OnceLock<SimilarityMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        SimilarityMetrics {
            hits: reg.counter("quasar.core.similarity.hits"),
            warm_starts: reg.counter("quasar.core.similarity.warm_starts"),
            misses: reg.counter("quasar.core.similarity.misses"),
            inserts: reg.counter("quasar.core.similarity.inserts"),
            evictions: reg.counter("quasar.core.similarity.evictions"),
            query_us: reg.histogram_us("quasar.core.similarity.query_us"),
        }
    })
}

/// Tunables of the workload-similarity index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityConfig {
    /// Whether the index runs at all. Disabled (the default) is the
    /// pre-index behavior, bit for bit.
    pub enabled: bool,
    /// Number of LSH bands. More bands catch lower-similarity pairs.
    pub bands: usize,
    /// MinHash rows per band. More rows make each band more selective.
    pub rows_per_band: usize,
    /// Similarity at or above which a neighbor's classification is
    /// reused outright. At the default `1.0` the test is exact
    /// feature-set equality (a quantization-level duplicate); values
    /// below 1.0 accept the estimated Jaccard similarity instead
    /// (explicitly approximate reuse).
    pub exact_threshold: f64,
    /// Estimated Jaccard at or above which a neighbor's cached axis
    /// models warm-start SGD. Set above 1.0 to disable warm starts.
    pub warm_threshold: f64,
    /// Quantization bucket width for speed-axis features, in ln-speed
    /// units (0.05 ≈ values within ~5% share a bucket).
    pub ln_bucket: f64,
    /// Quantization bucket width for pressure-axis features, in
    /// pressure points on the 0–100 scale.
    pub pressure_bucket: f64,
    /// Maximum entries held; past it the oldest entry is evicted
    /// (FIFO — deterministic, unlike recency under racing readers).
    pub capacity: usize,
    /// Seed for the MinHash permutation family.
    pub seed: u64,
}

impl Default for SimilarityConfig {
    fn default() -> SimilarityConfig {
        SimilarityConfig {
            enabled: false,
            bands: 16,
            rows_per_band: 2,
            exact_threshold: 1.0,
            warm_threshold: 0.55,
            ln_bucket: 0.05,
            pressure_bucket: 2.0,
            capacity: 4096,
            seed: 0x51A1,
        }
    }
}

impl SimilarityConfig {
    /// The default parameters with the index enabled.
    pub fn enabled() -> SimilarityConfig {
        SimilarityConfig {
            enabled: true,
            ..SimilarityConfig::default()
        }
    }

    /// Enabled, but reusing only quantization-level duplicates: warm
    /// starts are off, and anything short of feature-set equality is a
    /// full cold classification. In this mode classifications are
    /// bit-identical to the index-off path unless a true duplicate
    /// arrives (the CI smoke compares fig3 stdout across on/off).
    pub fn exact_only() -> SimilarityConfig {
        SimilarityConfig {
            enabled: true,
            warm_threshold: 2.0,
            ..SimilarityConfig::default()
        }
    }

    /// MinHash rows overall (`bands × rows_per_band`).
    fn minhash_len(&self) -> usize {
        self.bands.max(1) * self.rows_per_band.max(1)
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One quantized feature: a hash of `(axis tag, column, bucket)`.
fn feature_token(tag: u64, col: usize, bucket: i64) -> u64 {
    mix(tag ^ mix((col as u64).wrapping_add(mix(bucket as u64))))
}

/// Axis tags for [`feature_token`]. Distinct per axis so the same
/// `(column, bucket)` pair never collides across axes.
const TAG_KIND: u64 = 0x10;
const TAG_SCALE_UP: u64 = 0x21;
const TAG_SCALE_OUT: u64 = 0x22;
const TAG_HETERO: u64 = 0x23;
const TAG_PARAMS: u64 = 0x24;
const TAG_TOLERATED: u64 = 0x31;
const TAG_CAUSED: u64 = 0x32;

/// A workload's quantized profiling signature: the sorted set of feature
/// tokens plus its MinHash sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Sorted, deduplicated feature tokens.
    features: Vec<u64>,
    /// `bands × rows_per_band` MinHash values over `features`.
    minhash: Vec<u64>,
}

impl Signature {
    /// Quantizes a profiling row into a signature. Speed axes bucket
    /// `ln(speed)` by `ln_bucket` (so observations within the bucket
    /// width of each other fuse); pressure axes bucket the raw 0–100
    /// value by `pressure_bucket`. The goal kind joins as its own
    /// feature, so workloads with different goal kinds can never be
    /// duplicates of each other.
    pub fn of_profile(data: &ProfilingData, config: &SimilarityConfig) -> Signature {
        let kind = data.kind;
        let ln_bucket = config.ln_bucket.max(1e-9);
        let pressure_bucket = config.pressure_bucket.max(1e-9);
        let mut features = vec![feature_token(TAG_KIND, 0, kind as i64)];
        for (tag, entries) in [
            (TAG_SCALE_UP, &data.scale_up),
            (TAG_SCALE_OUT, &data.scale_out),
            (TAG_HETERO, &data.hetero),
            (TAG_PARAMS, &data.params),
        ] {
            for &(c, v) in entries {
                let bucket = (ln_speed(kind, v) / ln_bucket).round() as i64;
                features.push(feature_token(tag, c, bucket));
            }
        }
        for (tag, entries) in [(TAG_TOLERATED, &data.tolerated), (TAG_CAUSED, &data.caused)] {
            for &(c, v) in entries {
                let bucket = (v / pressure_bucket).round() as i64;
                features.push(feature_token(tag, c, bucket));
            }
        }
        Signature::of_tokens(features, config)
    }

    /// A signature over caller-supplied `(tag, column, bucket)` feature
    /// coordinates, for indexing keys that are not profiling rows (the
    /// sharded cells key their admission templates by QoS class).
    pub fn of_features(
        coords: impl IntoIterator<Item = (u64, usize, i64)>,
        config: &SimilarityConfig,
    ) -> Signature {
        Signature::of_tokens(
            coords
                .into_iter()
                .map(|(tag, col, bucket)| feature_token(tag, col, bucket))
                .collect(),
            config,
        )
    }

    fn of_tokens(mut features: Vec<u64>, config: &SimilarityConfig) -> Signature {
        features.sort_unstable();
        features.dedup();
        let n = config.minhash_len();
        let mut minhash = Vec::with_capacity(n);
        for i in 0..n {
            let perm_seed = mix(config
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)));
            let slot = features
                .iter()
                .map(|&f| mix(f ^ perm_seed))
                .min()
                .unwrap_or(u64::MAX);
            minhash.push(slot);
        }
        Signature { features, minhash }
    }

    /// Estimated Jaccard similarity: the fraction of MinHash slots on
    /// which the two sketches agree.
    pub fn similarity(&self, other: &Signature) -> f64 {
        if self.minhash.is_empty() || self.minhash.len() != other.minhash.len() {
            return 0.0;
        }
        let agree = self
            .minhash
            .iter()
            .zip(&other.minhash)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.minhash.len() as f64
    }

    /// Whether the quantized feature sets are identical — a true
    /// quantization-level duplicate, not just a MinHash agreement.
    pub fn is_duplicate_of(&self, other: &Signature) -> bool {
        self.features == other.features
    }
}

/// The key of one LSH band: a hash of the band index and the band's
/// MinHash rows.
fn band_key(sig: &Signature, band: usize, rows_per_band: usize) -> u64 {
    let r = rows_per_band.max(1);
    let mut h = mix(0xb4 ^ band as u64);
    for &m in &sig.minhash[band * r..band * r + r] {
        h = mix(h ^ m);
    }
    h
}

/// What the index did for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityOutcome {
    /// A duplicate was found; reconstruction was skipped entirely.
    Hit,
    /// A similar neighbor warm-started the reconstructions.
    WarmStart,
    /// No usable neighbor; full cold classification.
    Miss,
}

/// How a query resolved, before any classification work.
enum Decision {
    Hit(usize),
    Warm(usize),
    Miss,
}

#[derive(Debug, Clone)]
struct IndexEntry {
    signature: Signature,
    class: Classification,
    models: Option<AxisModels>,
}

/// The banded MinHash workload-similarity index. One instance per
/// manager (and per sharded cell): entries are never shared across
/// cells, which is what keeps sharded digests independent of cell
/// interleaving.
#[derive(Debug, Clone)]
pub struct SimilarityIndex {
    config: SimilarityConfig,
    /// Entry slots; a FIFO ring once `capacity` is reached.
    entries: Vec<Option<IndexEntry>>,
    /// Next eviction victim once full.
    next_slot: usize,
    /// Band key → slots whose signature hashes there.
    buckets: HashMap<u64, Vec<u32>>,
}

impl SimilarityIndex {
    /// An empty index.
    pub fn new(config: SimilarityConfig) -> SimilarityIndex {
        SimilarityIndex {
            config,
            entries: Vec::new(),
            next_slot: 0,
            buckets: HashMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimilarityConfig {
        &self.config
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The classification front door when the index is enabled: probe
    /// with the profile's signature, then hit / warm-start / miss as
    /// described in the module docs. Returns the classification, the
    /// per-decision latency in microseconds (query plus any
    /// reconstruction), and the outcome. Warm and miss results are
    /// inserted for future arrivals.
    pub fn classify_or_insert(
        &mut self,
        classifier: &Classifier,
        history: &HistorySet,
        data: &ProfilingData,
    ) -> (Classification, f64, SimilarityOutcome) {
        let m = similarity_metrics();
        let ((sig, decision), query_us) = timed("core.similarity.query", || {
            let sig = Signature::of_profile(data, &self.config);
            let decision = self.decide(&sig);
            (sig, decision)
        });
        m.query_us.record(query_us);
        match decision {
            Decision::Hit(slot) => {
                m.hits.inc();
                let entry = self.entries[slot].as_ref().expect("hit slot is live");
                let mut class = entry.class.clone();
                // The neighbor's calibration reflects *its* runtime
                // feedback; a fresh arrival starts uncalibrated.
                class.runtime_calibration = 1.0;
                (class, query_us, SimilarityOutcome::Hit)
            }
            Decision::Warm(slot) => {
                m.warm_starts.inc();
                let warm = self.entries[slot]
                    .as_ref()
                    .expect("warm slot is live")
                    .models
                    .clone()
                    .expect("warm decisions require cached models");
                let (class, wall_us, models) = classifier.classify_warm(history, data, &warm);
                self.insert(sig, class.clone(), Some(models));
                (class, query_us + wall_us, SimilarityOutcome::WarmStart)
            }
            Decision::Miss => {
                m.misses.inc();
                let (class, wall_us, models) = classifier.classify_with_models(history, data);
                self.insert(sig, class.clone(), Some(models));
                (class, query_us + wall_us, SimilarityOutcome::Miss)
            }
        }
    }

    /// Cache-or-compute for callers that build their classification some
    /// other way (the sharded cells reuse a batch-admission template):
    /// on a duplicate hit returns the cached classification
    /// (calibration reset); otherwise runs `make`, inserts the result
    /// under `sig`, and returns it. No warm tier — there are no models.
    pub fn reuse_or_insert(
        &mut self,
        sig: Signature,
        make: impl FnOnce() -> Classification,
    ) -> (Classification, SimilarityOutcome) {
        let m = similarity_metrics();
        if let Decision::Hit(slot) = self.decide(&sig) {
            m.hits.inc();
            let entry = self.entries[slot].as_ref().expect("hit slot is live");
            let mut class = entry.class.clone();
            class.runtime_calibration = 1.0;
            return (class, SimilarityOutcome::Hit);
        }
        m.misses.inc();
        let class = make();
        self.insert(sig, class.clone(), None);
        (class, SimilarityOutcome::Miss)
    }

    /// Inserts an entry, evicting the oldest once at capacity.
    pub fn insert(
        &mut self,
        signature: Signature,
        class: Classification,
        models: Option<AxisModels>,
    ) {
        let m = similarity_metrics();
        let slot = if self.entries.len() < self.config.capacity.max(1) {
            self.entries.push(None);
            self.entries.len() - 1
        } else {
            let victim = self.next_slot;
            self.next_slot = (self.next_slot + 1) % self.entries.len();
            if let Some(old) = self.entries[victim].take() {
                self.unlink(victim as u32, &old.signature);
                m.evictions.inc();
            }
            victim
        };
        for band in 0..self.config.bands.max(1) {
            let key = band_key(&signature, band, self.config.rows_per_band);
            let bucket = self.buckets.entry(key).or_default();
            if !bucket.contains(&(slot as u32)) {
                bucket.push(slot as u32);
            }
        }
        self.entries[slot] = Some(IndexEntry {
            signature,
            class,
            models,
        });
        m.inserts.inc();
    }

    /// Removes a slot's bucket references (on eviction).
    fn unlink(&mut self, slot: u32, signature: &Signature) {
        for band in 0..self.config.bands.max(1) {
            let key = band_key(signature, band, self.config.rows_per_band);
            if let Some(bucket) = self.buckets.get_mut(&key) {
                bucket.retain(|&s| s != slot);
                if bucket.is_empty() {
                    self.buckets.remove(&key);
                }
            }
        }
    }

    /// Resolves a signature against the thresholds.
    fn decide(&self, sig: &Signature) -> Decision {
        match self.best_candidate(sig) {
            Some((slot, sim, dup)) => {
                let hit = if self.config.exact_threshold >= 1.0 {
                    dup
                } else {
                    dup || sim >= self.config.exact_threshold
                };
                if hit {
                    Decision::Hit(slot)
                } else if sim >= self.config.warm_threshold
                    && self.entries[slot]
                        .as_ref()
                        .is_some_and(|e| e.models.is_some())
                {
                    Decision::Warm(slot)
                } else {
                    Decision::Miss
                }
            }
            None => Decision::Miss,
        }
    }

    /// The best candidate across the probe's buckets: candidates are
    /// collected in band order (deduplicated, first occurrence kept),
    /// preferred by duplicate-ness, then similarity, then lowest slot —
    /// a total, deterministic order.
    fn best_candidate(&self, sig: &Signature) -> Option<(usize, f64, bool)> {
        let mut seen: Vec<u32> = Vec::new();
        let mut best: Option<(usize, f64, bool)> = None;
        for band in 0..self.config.bands.max(1) {
            let key = band_key(sig, band, self.config.rows_per_band);
            let Some(bucket) = self.buckets.get(&key) else {
                continue;
            };
            for &slot in bucket {
                if seen.contains(&slot) {
                    continue;
                }
                seen.push(slot);
                let Some(entry) = self.entries[slot as usize].as_ref() else {
                    continue;
                };
                let sim = sig.similarity(&entry.signature);
                let dup = sig.is_duplicate_of(&entry.signature);
                let better = match best {
                    None => true,
                    Some((best_slot, best_sim, best_dup)) => {
                        if dup != best_dup {
                            dup
                        } else if sim != best_sim {
                            sim > best_sim
                        } else {
                            (slot as usize) < best_slot
                        }
                    }
                };
                if better {
                    best = Some((slot as usize, sim, dup));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_cluster::{managers::NullManager, ClusterSpec, SimConfig, Simulation};
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{Dataset, PlatformCatalog, Priority, WorkloadClass};

    use crate::axes::Axes;
    use crate::profile::Profiler;

    fn probe_data(seed: u64) -> (HistorySet, ProfilingData) {
        let catalog = PlatformCatalog::local();
        let history = HistorySet::bootstrap(&catalog, 8, 41);
        let axes = history.axes().clone();
        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 1),
            Box::new(NullManager),
            SimConfig::default(),
        );
        let mut generator = Generator::new(catalog, seed);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "sim-probe",
            Dataset::new("d", 12.0, 1.0),
            2,
            600.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        sim.submit_at(job, 0.0);
        sim.run_until(5.0);
        let data = Profiler::new(2, seed ^ 9).profile(sim.world_mut(), &axes, id);
        (history, data)
    }

    fn axes() -> Axes {
        Axes::for_catalog(&PlatformCatalog::local())
    }

    #[test]
    fn duplicate_arrival_hits_and_reuses_the_classification() {
        let (history, data) = probe_data(7);
        let classifier = Classifier::new();
        let mut index = SimilarityIndex::new(SimilarityConfig::enabled());

        let (first, _, outcome) = index.classify_or_insert(&classifier, &history, &data);
        assert_eq!(outcome, SimilarityOutcome::Miss);
        assert_eq!(index.len(), 1);

        // Identical profiling data is a quantization-level duplicate:
        // the cached classification comes back bit-identical to a full
        // reconstruction of the same data, with calibration reset.
        let (second, _, outcome) = index.classify_or_insert(&classifier, &history, &data);
        assert_eq!(outcome, SimilarityOutcome::Hit);
        assert_eq!(first, second);
        assert_eq!(second, classifier.classify(&history, &data));
        assert_eq!(second.runtime_calibration, 1.0);
        assert_eq!(index.len(), 1, "hits do not insert");
    }

    #[test]
    fn in_bucket_jitter_is_still_a_duplicate() {
        let (history, data) = probe_data(11);
        let config = SimilarityConfig::enabled();
        let base = Signature::of_profile(&data, &config);

        // Nudge every speed observation to its quantization-bucket
        // center plus a sliver — the signature must not move.
        let mut nudged = data.clone();
        for (_, v) in nudged.scale_up.iter_mut() {
            let s = ln_speed(nudged.kind, *v);
            let center = (s / config.ln_bucket).round() * config.ln_bucket;
            *v = nudged
                .kind
                .from_speed((center + 0.2 * config.ln_bucket).exp());
        }
        let moved = Signature::of_profile(&nudged, &config);
        assert!(base.is_duplicate_of(&moved));
        assert_eq!(base.similarity(&moved), 1.0);

        let classifier = Classifier::new();
        let mut index = SimilarityIndex::new(config);
        let (_, _, first) = index.classify_or_insert(&classifier, &history, &data);
        let (_, _, second) = index.classify_or_insert(&classifier, &history, &nudged);
        assert_eq!(
            (first, second),
            (SimilarityOutcome::Miss, SimilarityOutcome::Hit)
        );
    }

    #[test]
    fn partial_overlap_warm_starts_below_the_duplicate_bar() {
        let (history, data) = probe_data(13);
        // Move a bucket's worth on one scale-up observation: no longer a
        // duplicate, but nearly every feature still agrees.
        let mut near = data.clone();
        let (_, v) = &mut near.scale_up[0];
        *v *= 1.5;
        let config = SimilarityConfig::enabled();
        let a = Signature::of_profile(&data, &config);
        let b = Signature::of_profile(&near, &config);
        assert!(!a.is_duplicate_of(&b));
        assert!(a.similarity(&b) > config.warm_threshold);

        let classifier = Classifier::new();
        let mut index = SimilarityIndex::new(config);
        index.classify_or_insert(&classifier, &history, &data);
        let (class, _, outcome) = index.classify_or_insert(&classifier, &history, &near);
        assert_eq!(outcome, SimilarityOutcome::WarmStart);
        assert!(class
            .scale_up_speed
            .iter()
            .all(|s| s.is_finite() && *s > 0.0));
        assert_eq!(index.len(), 2, "warm starts insert the new entry");
    }

    #[test]
    fn exact_only_config_never_warm_starts() {
        let (history, data) = probe_data(13);
        let mut other = data.clone();
        other.scale_up[0].1 *= 1.5;
        let classifier = Classifier::new();
        let mut index = SimilarityIndex::new(SimilarityConfig::exact_only());
        index.classify_or_insert(&classifier, &history, &data);
        let (class, _, outcome) = index.classify_or_insert(&classifier, &history, &other);
        assert_eq!(outcome, SimilarityOutcome::Miss);
        // Exact-only misses are bit-identical to the plain path.
        assert_eq!(class, classifier.classify(&history, &other));
    }

    #[test]
    fn outcomes_are_identical_across_classifier_thread_counts() {
        let (history, data) = probe_data(17);
        let mut warm = data.clone();
        warm.scale_up[0].1 *= 1.5;
        let run = |threads: usize| {
            let classifier = Classifier::new().with_threads(threads);
            let mut index = SimilarityIndex::new(SimilarityConfig::enabled());
            let mut out = Vec::new();
            for d in [&data, &warm, &data, &warm] {
                let (class, _, outcome) = index.classify_or_insert(&classifier, &history, d);
                out.push((class, outcome));
            }
            out
        };
        let serial = run(1);
        for threads in [2, 4] {
            assert_eq!(serial, run(threads), "diverged at {threads} threads");
        }
    }

    #[test]
    fn capacity_evicts_fifo_and_counts() {
        let config = SimilarityConfig {
            capacity: 2,
            ..SimilarityConfig::enabled()
        };
        let mut index = SimilarityIndex::new(config);
        let class = Classification {
            kind: crate::axes::GoalKind::Rate,
            scale_up_speed: vec![1.0],
            scale_out_speed: None,
            hetero_speed: vec![1.0],
            params_speed: None,
            tolerated: quasar_interference::PressureVector::uniform(50.0),
            caused: quasar_interference::PressureVector::uniform(10.0),
            runtime_calibration: 1.0,
        };
        let sig = |i: i64| Signature::of_features([(TAG_SCALE_UP, 0, i)], &config);
        index.insert(sig(0), class.clone(), None);
        index.insert(sig(1), class.clone(), None);
        assert_eq!(index.len(), 2);
        index.insert(sig(2), class.clone(), None);
        assert_eq!(index.len(), 2, "capacity bound holds");
        // The oldest entry (0) was evicted; 1 and 2 still hit.
        let (_, o0) = index.reuse_or_insert(sig(0), || class.clone());
        assert_eq!(o0, SimilarityOutcome::Miss);
        let (_, o2) = index.reuse_or_insert(sig(2), || class.clone());
        assert_eq!(o2, SimilarityOutcome::Hit);
    }

    #[test]
    fn different_goal_kinds_never_collide() {
        let config = SimilarityConfig::enabled();
        let mk = |kind| ProfilingData {
            kind,
            scale_up: vec![(0, 100.0)],
            scale_out: vec![],
            hetero: vec![(0, 90.0)],
            params: vec![],
            tolerated: vec![(0, 40.0)],
            caused: vec![(1, 10.0)],
            wall_seconds: 1.0,
            total_seconds: 1.0,
        };
        let a = Signature::of_profile(&mk(crate::axes::GoalKind::Qps), &config);
        let b = Signature::of_profile(&mk(crate::axes::GoalKind::Rate), &config);
        assert!(!a.is_duplicate_of(&b));
    }

    #[test]
    fn signature_of_scale_out_probe_uses_axes_columns() {
        // Columns index into the axes; sanity-check tokens differ per
        // column so distinct configurations stay distinct features.
        let axes = axes();
        assert!(axes.scale_out.len() > 2);
        let config = SimilarityConfig::default();
        let a = Signature::of_features([(TAG_SCALE_OUT, 0, 5)], &config);
        let b = Signature::of_features([(TAG_SCALE_OUT, 1, 5)], &config);
        assert!(!a.is_duplicate_of(&b));
        assert!(a.similarity(&b) < 1.0);
    }
}
