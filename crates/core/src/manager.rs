//! The Quasar cluster manager (paper §3.4, §4).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};

use quasar_cluster::{Manager, NodeAlloc, Observation, PlaceError, Server, ServerId, World};
use quasar_interference::{penalty_for, PressureVector};
use quasar_workloads::{FrameworkParams, NodeResources, PlatformCatalog, QosTarget, WorkloadId};

use crate::axes::GoalKind;
use crate::classify::{Classification, Classifier};
use crate::config::QuasarConfig;
use crate::estimate::{Estimator, PlannedNode};
use crate::greedy::{AllocationPlan, CandidateServer, GreedyScheduler};
use crate::history::HistorySet;
use crate::ordering::desirability;
use crate::predict::LoadPredictor;
use crate::profile::Profiler;
use crate::similarity::SimilarityIndex;

/// Counters describing what the manager did during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManagerStats {
    /// Full profile+classify passes.
    pub classifications: u64,
    /// Allocation adjustments (scale-up/out/down) after placement.
    pub adaptations: u64,
    /// Proactive in-place interference probes.
    pub proactive_probes: u64,
    /// Phase changes detected (reactive + proactive).
    pub phase_changes_detected: u64,
    /// Best-effort evictions performed to make room.
    pub evictions: u64,
    /// Guaranteed placements committed below target (admission fallback).
    pub degraded_placements: u64,
}

struct WorkloadState {
    class: Classification,
    params_col: Option<usize>,
    profiling_wall_s: f64,
    misses: u32,
    headroom_ticks: u32,
    pending_since: f64,
    active_after: f64,
    predictor: LoadPredictor,
}

/// A point-in-time copy of the manager's mutable state, for the
/// master-slave mirroring of §4.4: "all system state (list of active
/// applications, allocations, QoS guarantees) is continuously replicated
/// and can be used by hot-standby masters". Capture with
/// [`QuasarManager::snapshot`] and revive a standby with
/// [`QuasarManager::restore`]. (Cluster allocations themselves live on
/// the servers and survive a manager failover.)
#[derive(Clone)]
pub struct ManagerSnapshot {
    states: Vec<(WorkloadId, SnapshotState)>,
    pending: Vec<WorkloadId>,
    pending_best_effort: Vec<WorkloadId>,
    stats: ManagerStats,
}

#[derive(Clone)]
struct SnapshotState {
    class: Classification,
    params_col: Option<usize>,
    profiling_wall_s: f64,
    pending_since: f64,
    active_after: f64,
}

impl ManagerSnapshot {
    /// Number of classified workloads captured.
    pub fn workload_count(&self) -> usize {
        self.states.len()
    }

    /// Approximate replication footprint in bytes (the paper estimates
    /// ~256 B of classification output per workload).
    pub fn approx_bytes(&self) -> usize {
        self.states
            .iter()
            .map(|(_, s)| {
                8 + (s.class.scale_up_speed.len()
                    + s.class.hetero_speed.len()
                    + s.class.scale_out_speed.as_ref().map_or(0, Vec::len)
                    + s.class.params_speed.as_ref().map_or(0, Vec::len))
                    * 8
                    + 2 * 10 * 8
                    + 48
            })
            .sum::<usize>()
            + (self.pending.len() + self.pending_best_effort.len()) * 8
    }
}

/// The Quasar manager: profiling + four-way classification + greedy joint
/// allocation/assignment + monitoring and adaptation.
pub struct QuasarManager {
    config: QuasarConfig,
    history: HistorySet,
    profiler: Profiler,
    classifier: Classifier,
    scheduler: GreedyScheduler,
    states: HashMap<WorkloadId, WorkloadState>,
    pending: VecDeque<WorkloadId>,
    pending_best_effort: VecDeque<WorkloadId>,
    last_adapt_s: f64,
    last_proactive_s: f64,
    rng: StdRng,
    stats: Arc<Mutex<ManagerStats>>,
    /// Workload-similarity index ([`crate::similarity`]); `None` unless
    /// `config.similarity.enabled`, in which case repeat arrivals reuse
    /// or warm-start a neighbor's classification.
    similarity: Option<SimilarityIndex>,
}

impl QuasarManager {
    /// Builds a manager, running the offline history bootstrap for the
    /// catalog (expensive; reuse one [`HistorySet`] across experiments via
    /// [`QuasarManager::with_history`] where possible).
    pub fn bootstrap(catalog: &PlatformCatalog, config: QuasarConfig) -> QuasarManager {
        let history = HistorySet::bootstrap(catalog, config.training_workloads, config.seed);
        QuasarManager::with_history(history, config)
    }

    /// Builds a manager over an existing offline history. The config is
    /// clamped via [`QuasarConfig::validated`]; every constructor
    /// (`bootstrap`, `restore`) funnels through here.
    pub fn with_history(history: HistorySet, config: QuasarConfig) -> QuasarManager {
        let config = config.validated();
        QuasarManager {
            profiler: Profiler::new(config.profiling_entries, config.seed ^ 0xF00D),
            classifier: Classifier::new().with_threads(config.threads),
            scheduler: GreedyScheduler::new(config.max_nodes),
            states: HashMap::new(),
            pending: VecDeque::new(),
            pending_best_effort: VecDeque::new(),
            last_adapt_s: 0.0,
            last_proactive_s: 0.0,
            rng: StdRng::seed_from_u64(config.seed ^ 0xCAFE),
            stats: Arc::new(Mutex::new(ManagerStats::default())),
            similarity: config
                .similarity
                .enabled
                .then(|| SimilarityIndex::new(config.similarity)),
            history,
            config,
        }
    }

    /// What the manager did during the run.
    pub fn stats(&self) -> ManagerStats {
        *self.stats.lock().expect("stats poisoned")
    }

    /// A shared handle to the live statistics, usable after the manager
    /// is boxed into a simulation (experiments poll this mid-run). The
    /// handle is `Send`, so it also works when the manager runs inside a
    /// sharded cell on a worker thread.
    pub fn stats_handle(&self) -> Arc<Mutex<ManagerStats>> {
        Arc::clone(&self.stats)
    }

    fn stats_mut(&self) -> MutexGuard<'_, ManagerStats> {
        self.stats.lock().expect("stats poisoned")
    }

    /// The offline history in use.
    pub fn history(&self) -> &HistorySet {
        &self.history
    }

    /// The classification of a workload, if it has been classified.
    pub fn classification(&self, id: WorkloadId) -> Option<&Classification> {
        self.states.get(&id).map(|s| &s.class)
    }

    /// Captures the replicable manager state (§4.4 master-slave
    /// mirroring).
    pub fn snapshot(&self) -> ManagerSnapshot {
        let mut states: Vec<(WorkloadId, SnapshotState)> = self
            .states
            .iter()
            .map(|(id, s)| {
                (
                    *id,
                    SnapshotState {
                        class: s.class.clone(),
                        params_col: s.params_col,
                        profiling_wall_s: s.profiling_wall_s,
                        pending_since: s.pending_since,
                        active_after: s.active_after,
                    },
                )
            })
            .collect();
        states.sort_by_key(|(id, _)| *id);
        ManagerSnapshot {
            states,
            pending: self.pending.iter().copied().collect(),
            pending_best_effort: self.pending_best_effort.iter().copied().collect(),
            stats: self.stats(),
        }
    }

    /// Builds a hot-standby manager from a snapshot. It resumes with the
    /// same classifications, queues, and counters; transient monitoring
    /// state (miss counters, predictors) restarts cleanly, as it would on
    /// a real failover.
    pub fn restore(
        history: HistorySet,
        config: QuasarConfig,
        snapshot: &ManagerSnapshot,
    ) -> QuasarManager {
        let mut manager = QuasarManager::with_history(history, config);
        for (id, s) in &snapshot.states {
            manager.states.insert(
                *id,
                WorkloadState {
                    class: s.class.clone(),
                    params_col: s.params_col,
                    profiling_wall_s: s.profiling_wall_s,
                    misses: 0,
                    headroom_ticks: 0,
                    pending_since: s.pending_since,
                    active_after: s.active_after,
                    predictor: LoadPredictor::new(8),
                },
            );
        }
        manager.pending = snapshot.pending.iter().copied().collect();
        manager.pending_best_effort = snapshot.pending_best_effort.iter().copied().collect();
        *manager.stats_mut() = snapshot.stats;
        manager
    }

    // ------------------------------------------------------------------
    // Pressure and candidate estimation.
    // ------------------------------------------------------------------

    /// Estimated external pressure on a server from the *classified*
    /// caused-pressure vectors of the workloads the manager placed there
    /// (never ground truth).
    fn estimated_pressure(
        &self,
        world: &World,
        server: ServerId,
        exclude: Option<WorkloadId>,
    ) -> PressureVector {
        let total_cores = world.server(server).total_cores() as f64;
        let mut pressure = PressureVector::zero();
        for id in world.workloads_on(server) {
            if Some(id) == exclude {
                continue;
            }
            let Some(state) = self.states.get(&id) else {
                continue;
            };
            let Some(placement) = world.placement(id) else {
                continue;
            };
            let Some(node) = placement.node_on(server) else {
                continue;
            };
            let share = (node.resources.cores as f64 / total_cores).min(1.0);
            pressure += state.class.caused.scaled(share);
        }
        pressure
    }

    /// Builds the candidate-server list for scheduling workload `for_id`.
    fn candidates(&self, world: &World, for_id: WorkloadId) -> Vec<CandidateServer> {
        let caused = self
            .states
            .get(&for_id)
            .map(|s| s.class.caused)
            .unwrap_or_else(PressureVector::zero);
        world
            .servers()
            .iter()
            .map(|server| self.candidate_for(world, server, for_id, &caused))
            .collect()
    }

    fn candidate_for(
        &self,
        world: &World,
        server: &Server,
        for_id: WorkloadId,
        caused: &PressureVector,
    ) -> CandidateServer {
        let sid = server.id();
        // Safety factor on the estimated pressure: classification errors
        // on tolerances/caused pressure are amplified by the multiplicative
        // penalty law, so plan against a pessimistic view of contention.
        let pressure = self
            .estimated_pressure(world, sid, Some(for_id))
            .scaled(1.25);
        // Victim check: would our pressure push an existing guaranteed
        // tenant past its classified tolerance? Assume a half-server
        // footprint before sizing.
        let added = caused.scaled(0.5);
        let mut victim_factor = 1.0_f64;
        for tenant in world.workloads_on(sid) {
            if tenant == for_id {
                continue;
            }
            let Some(state) = self.states.get(&tenant) else {
                continue;
            };
            if world.spec(tenant).is_best_effort() {
                continue;
            }
            let tenant_pressure = self.estimated_pressure(world, sid, Some(tenant)) + added;
            let penalty = penalty_for(&state.class.tolerated, &tenant_pressure);
            if penalty < 1.0 - self.config.qos_slack {
                victim_factor = victim_factor.min(penalty.max(0.05));
            }
        }
        CandidateServer {
            server: sid.0,
            platform_index: self
                .history
                .axes()
                .platform_index(world.server(sid).platform()),
            free_cores: server.free_cores(),
            free_memory_gb: server.free_memory_gb(),
            pressure,
            victim_factor,
            hourly_price: world.platform_of(sid).price_per_hour(),
        }
    }

    // ------------------------------------------------------------------
    // Placement.
    // ------------------------------------------------------------------

    /// Attempts to place a classified guaranteed workload. Returns whether
    /// a placement was committed.
    fn try_place_guaranteed(&mut self, world: &mut World, id: WorkloadId, force: bool) -> bool {
        let target = world.spec(id).target;
        let axes = self.history.axes().clone();
        let Some(state) = self.states.get(&id) else {
            return false;
        };
        let class = state.class.clone();
        let wall = state.profiling_wall_s;

        let budget = world.spec(id).cost_limit_per_hour;
        let mut plan = self.scheduler.plan_with_budget(
            &axes,
            &class,
            &target,
            &self.candidates(world, id),
            budget,
        );

        // If the plan misses the target, try reclaiming best-effort
        // capacity server by server (best-effort jobs "may be migrated or
        // killed at any point", §5).
        let mut attempts = 0;
        while plan.as_ref().map(|p| !p.meets).unwrap_or(true) && attempts < 6 {
            if !self.evict_best_effort_somewhere(world) {
                break;
            }
            plan = self.scheduler.plan_with_budget(
                &axes,
                &class,
                &target,
                &self.candidates(world, id),
                budget,
            );
            attempts += 1;
        }

        let Some(plan) = plan else {
            return false;
        };
        if !plan.meets && !force {
            // Queueing only helps when busy servers will free up soon; on
            // a cluster with headroom the plan is already close to the
            // best this hardware can do, so commit it and let monitoring,
            // feedback calibration, and adaptation close the gap (§4.1).
            let utilization = world.used_cores() as f64 / world.total_cores() as f64;
            if utilization > 0.75 {
                return false;
            }
        }
        if !plan.meets {
            self.stats_mut().degraded_placements += 1;
        }
        self.commit(world, id, &plan, wall)
    }

    /// Commits a plan through the world, delaying activation by the
    /// profiling wall time.
    fn commit(
        &mut self,
        world: &mut World,
        id: WorkloadId,
        plan: &AllocationPlan,
        wall_s: f64,
    ) -> bool {
        let active_after = world.now() + wall_s;
        let nodes: Vec<NodeAlloc> = plan
            .nodes
            .iter()
            .map(|&(server, resources)| NodeAlloc {
                server: ServerId(server),
                resources,
                active_after,
            })
            .collect();
        let params = plan
            .params_col
            .map(|c| self.history.axes().params[c])
            .unwrap_or_default();
        match world.place(id, nodes, params) {
            Ok(()) => {
                if let Some(state) = self.states.get_mut(&id) {
                    state.active_after = active_after;
                    state.params_col = plan.params_col;
                }
                true
            }
            Err(PlaceError::InsufficientCapacity(_)) | Err(PlaceError::NoSuchServer(_)) => false,
            Err(_) => false,
        }
    }

    /// Evicts the best-effort jobs from the server holding the most
    /// best-effort cores. Returns whether anything was evicted.
    fn evict_best_effort_somewhere(&mut self, world: &mut World) -> bool {
        let mut best: Option<(ServerId, u32)> = None;
        for server in world.servers() {
            let sid = server.id();
            let be_cores: u32 = world
                .workloads_on(sid)
                .iter()
                .filter(|&&w| world.spec(w).is_best_effort())
                .filter_map(|&w| world.placement(w).and_then(|p| p.node_on(sid)))
                .map(|n| n.resources.cores)
                .sum();
            if be_cores > 0 && best.map(|(_, c)| be_cores > c).unwrap_or(true) {
                best = Some((sid, be_cores));
            }
        }
        let Some((sid, _)) = best else {
            return false;
        };
        let victims: Vec<WorkloadId> = world
            .workloads_on(sid)
            .into_iter()
            .filter(|&w| world.spec(w).is_best_effort())
            .collect();
        for v in victims {
            world.evict(v, true);
            self.stats_mut().evictions += 1;
            if !self.pending_best_effort.contains(&v) {
                self.pending_best_effort.push_back(v);
            }
        }
        true
    }

    /// Packs pending best-effort jobs onto whatever capacity is left.
    fn fill_best_effort(&mut self, world: &mut World) {
        let res = NodeResources::new(
            self.config.best_effort_cores,
            self.config.best_effort_memory_gb,
        );
        let mut remaining = self.pending_best_effort.len();
        while remaining > 0 {
            remaining -= 1;
            let Some(id) = self.pending_best_effort.pop_front() else {
                break;
            };
            if world.state(id) != quasar_cluster::JobState::Pending {
                continue;
            }
            // Most-free-cores server that fits.
            let slot = world
                .servers()
                .iter()
                .filter(|s| s.free_cores() >= res.cores && s.free_memory_gb() >= res.memory_gb)
                .max_by_key(|s| s.free_cores())
                .map(|s| s.id());
            match slot {
                Some(sid) => {
                    let _ = world.place(
                        id,
                        vec![NodeAlloc::immediate(sid, res)],
                        FrameworkParams::default(),
                    );
                }
                None => {
                    self.pending_best_effort.push_back(id);
                    break;
                }
            }
        }
    }

    /// How long workload `id` has been waiting for admission. A workload
    /// with no recorded state has waited zero seconds: falling back to
    /// `pending_since = 0.0` would make a just-arrived workload look like
    /// it has waited since the start of the run and trigger spurious
    /// degraded (forced below-target) admission.
    fn pending_wait_s(&self, now: f64, id: WorkloadId) -> f64 {
        now - self.states.get(&id).map(|s| s.pending_since).unwrap_or(now)
    }

    fn try_place_all_pending(&mut self, world: &mut World) {
        let mut still_pending = VecDeque::new();
        while let Some(id) = self.pending.pop_front() {
            if world.state(id) != quasar_cluster::JobState::Pending {
                continue;
            }
            let waited = self.pending_wait_s(world.now(), id);
            // Admission control (§3.3): waiting beats oversubscription.
            // Only force a below-target placement when the cluster still
            // has headroom; on a saturated cluster the job keeps waiting
            // for completions ("wait time due to admission control counts
            // towards scheduling overheads", §5).
            let utilization = world.used_cores() as f64 / world.total_cores() as f64;
            let force = waited > 180.0 && utilization < 0.85;
            if !self.try_place_guaranteed(world, id, force) {
                still_pending.push_back(id);
            }
        }
        self.pending = still_pending;
    }

    // ------------------------------------------------------------------
    // Monitoring and adaptation (§4.1).
    // ------------------------------------------------------------------

    fn adapt_all(&mut self, world: &mut World) {
        let running = world.ids_in_state(quasar_cluster::JobState::Running);
        for id in running {
            if world.spec(id).is_best_effort() {
                continue;
            }
            let Some(state) = self.states.get(&id) else {
                continue;
            };
            // Skip while the placement is still activating.
            if world.now() < state.active_after + world.tick_s() {
                continue;
            }
            let Some(obs) = world.observation(id) else {
                continue;
            };
            self.feedback_calibrate(world, id);
            let target = world.spec(id).target;
            let mut on_track = obs.on_track(&target, self.config.qos_slack);
            let overprovisioned = is_overprovisioned(&obs, &target);

            // Load-prediction extension (§4.1 future work): feed the
            // service's offered load to its forecaster, and treat a
            // predicted near-future overload as an off-track signal so
            // scaling happens before the knee.
            if self.config.predictive_scaling {
                if let (Observation::Service(svc), Some(state)) = (&obs, self.states.get_mut(&id)) {
                    state.predictor.observe(world.now(), svc.offered_qps);
                    if on_track && svc.utilization > 0.0 {
                        let capacity = svc.achieved_qps / svc.utilization.max(0.02);
                        if let Some(ahead) = state
                            .predictor
                            .forecast(world.now() + self.config.prediction_lead_s)
                        {
                            if ahead > capacity * 0.85 {
                                on_track = false;
                            }
                        }
                    }
                }
            }

            let state = self.states.get_mut(&id).expect("checked above");
            if on_track {
                state.misses = 0;
                if overprovisioned {
                    state.headroom_ticks += 1;
                } else {
                    state.headroom_ticks = 0;
                }
            } else {
                state.misses += 1;
                state.headroom_ticks = 0;
            }

            if state.misses >= self.config.miss_threshold {
                state.misses = 0;
                self.adapt_up(world, id);
                self.stats_mut().adaptations += 1;
            } else if state.headroom_ticks >= 3 {
                let state = self.states.get_mut(&id).expect("checked above");
                state.headroom_ticks = 0;
                self.adapt_down(world, id);
                self.stats_mut().adaptations += 1;
            }
        }
    }

    /// Pro-rata hourly price of one slice on a server.
    fn slice_price(world: &World, server: ServerId, res: NodeResources) -> f64 {
        let platform = world.platform_of(server);
        platform.price_per_hour()
            * (res.cores as f64 / platform.cores as f64)
                .max(res.memory_gb / platform.memory_gb)
                .min(1.0)
    }

    /// Pro-rata hourly price of a workload's current placement.
    fn placement_price(&self, world: &World, id: WorkloadId) -> f64 {
        world
            .placement(id)
            .map(|p| {
                p.nodes
                    .iter()
                    .map(|n| {
                        let platform = world.platform_of(n.server);
                        platform.price_per_hour()
                            * (n.resources.cores as f64 / platform.cores as f64)
                                .max(n.resources.memory_gb / platform.memory_gb)
                                .min(1.0)
                    })
                    .sum()
            })
            .unwrap_or(0.0)
    }

    /// Gives a struggling workload more resources: scale-up in place
    /// first, then scale-out, evicting best-effort fill if needed —
    /// within the workload's cost limit when one is set (§4.4).
    fn adapt_up(&mut self, world: &mut World, id: WorkloadId) {
        let cost_limit = world.spec(id).cost_limit_per_hour;
        if let Some(limit) = cost_limit {
            if self.placement_price(world, id) >= limit {
                return; // at the spending cap; the target yields to cost
            }
        }

        // Resource-partitioning extension (§4.4): when the estimated
        // interference penalty on the workload's servers is the dominant
        // problem, turn on hardware partitioning before adding resources.
        if self.config.resource_partitioning && world.spec(id).class.is_latency_critical() {
            if let Some(placement) = world.placement(id) {
                if !placement.isolated {
                    if let Some(state) = self.states.get(&id) {
                        let worst_penalty = placement
                            .nodes
                            .iter()
                            .map(|n| {
                                let pressure = self.estimated_pressure(world, n.server, Some(id));
                                penalty_for(&state.class.tolerated, &pressure)
                            })
                            .fold(1.0_f64, f64::min);
                        if worst_penalty < 0.80 {
                            let _ = world.set_isolation(id, true);
                            return;
                        }
                    }
                }
            }
        }
        let axes = self.history.axes().clone();
        let Some(state) = self.states.get(&id) else {
            return;
        };
        let class = state.class.clone();
        let est = Estimator::new(&axes, &class);

        // 1) Scale up each node to the best configuration that fits the
        //    server's free capacity plus what we already hold.
        let Some(placement) = world.placement(id).cloned() else {
            return;
        };
        let mut grew = false;
        for node in &placement.nodes {
            let server = world.server(node.server);
            let budget_cores = server.free_cores() + node.resources.cores;
            let budget_mem = server.free_memory_gb() + node.resources.memory_gb;
            let current_col = axes.nearest_scale_up(node.resources);
            let best = (0..axes.scale_up.len())
                .filter(|&c| {
                    let r = axes.scale_up[c];
                    r.cores <= budget_cores && r.memory_gb <= budget_mem
                })
                .max_by(|&a, &b| {
                    desirability(est.scale_up_factor(a))
                        .total_cmp(&desirability(est.scale_up_factor(b)))
                });
            if let Some(best) = best {
                if let Some(limit) = cost_limit {
                    let delta = Self::slice_price(world, node.server, axes.scale_up[best])
                        - Self::slice_price(world, node.server, node.resources);
                    if self.placement_price(world, id) + delta > limit {
                        continue;
                    }
                }
                if est.scale_up_factor(best) > est.scale_up_factor(current_col) * 1.05
                    && world
                        .resize_node(id, node.server, axes.scale_up[best])
                        .is_ok()
                {
                    grew = true;
                }
            }
        }
        if grew {
            return;
        }

        // 2) Single-node workloads cannot scale out; migrate instead
        //    ("if scale-up is not possible ... migration to other servers
        //    is used", §4.1). Progress is preserved across the move.
        let class_is_single = class.scale_out_speed.is_none();
        if class_is_single {
            world.evict(id, true);
            if !self.try_place_guaranteed(world, id, true) {
                if let Some(state) = self.states.get_mut(&id) {
                    state.pending_since = world.now();
                }
                if !self.pending.contains(&id) {
                    self.pending.push_back(id);
                }
            }
            return;
        }
        let mut used: Vec<usize> = placement.nodes.iter().map(|n| n.server.0).collect();
        let mut added = 0usize;
        for _attempt in 0..4 {
            if added >= 3 {
                return;
            }
            let candidates: Vec<CandidateServer> = self
                .candidates(world, id)
                .into_iter()
                .filter(|c| !used.contains(&c.server) && c.free_cores >= 2)
                .collect();
            let best = candidates.iter().max_by(|a, b| {
                let qa = est.hetero_factor(a.platform_index)
                    * est.penalty(&a.pressure)
                    * a.victim_factor;
                let qb = est.hetero_factor(b.platform_index)
                    * est.penalty(&b.pressure)
                    * b.victim_factor;
                desirability(qa).total_cmp(&desirability(qb))
            });
            if let Some(best) = best {
                let col = (0..axes.scale_up.len())
                    .filter(|&c| {
                        let r = axes.scale_up[c];
                        r.cores <= best.free_cores && r.memory_gb <= best.free_memory_gb
                    })
                    .max_by(|&a, &b| {
                        desirability(est.scale_up_factor(a))
                            .total_cmp(&desirability(est.scale_up_factor(b)))
                    });
                if let Some(col) = col {
                    let server = ServerId(best.server);
                    if let Some(limit) = cost_limit {
                        let delta = Self::slice_price(world, server, axes.scale_up[col]);
                        if self.placement_price(world, id) + delta > limit {
                            return; // growing further would bust the cap
                        }
                    }
                    // Stateful services migrate microshards: small delay.
                    let delay = if world.spec(id).class.is_stateful() {
                        5.0
                    } else {
                        0.0
                    };
                    let node = NodeAlloc {
                        server,
                        resources: axes.scale_up[col],
                        active_after: world.now() + delay,
                    };
                    if world.add_node(id, node).is_ok() {
                        used.push(server.0);
                        added += 1;
                        continue;
                    }
                }
            }
            // No room: reclaim best-effort capacity and retry.
            if !self.evict_best_effort_somewhere(world) {
                return;
            }
        }
    }

    /// Reclaims resources from an over-provisioned workload, keeping the
    /// prediction above target.
    fn adapt_down(&mut self, world: &mut World, id: WorkloadId) {
        let axes = self.history.axes().clone();
        let Some(state) = self.states.get(&id) else {
            return;
        };
        let class = state.class.clone();
        let params_col = state.params_col;
        let est = Estimator::new(&axes, &class);
        // Services are right-sized to the *current* offered load with
        // headroom, not the peak target — "Quasar changes the allocation
        // to provide more resources or reclaim unused resources" (§4.1).
        let target = match (world.observation(id), world.spec(id).target) {
            (
                Some(Observation::Service(obs)),
                QosTarget::Throughput {
                    qps,
                    p99_latency_us,
                },
            ) => QosTarget::Throughput {
                qps: (obs.offered_qps * 1.3).clamp(qps * 0.05, qps),
                p99_latency_us,
            },
            (_, t) => t,
        };
        let Some(placement) = world.placement(id).cloned() else {
            return;
        };

        let planned: Vec<PlannedNode> = placement
            .nodes
            .iter()
            .map(|n| PlannedNode {
                platform_index: axes.platform_index(world.server(n.server).platform()),
                scale_up_col: axes.nearest_scale_up(n.resources),
                pressure: self.estimated_pressure(world, n.server, Some(id)),
            })
            .collect();

        // Try removing the worst node first.
        if planned.len() > 1 {
            let worst = planned
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    // desirability() maps a NaN quality to -inf, so a node
                    // with a corrupted estimate is the first one removed.
                    let qa = est.hetero_factor(a.platform_index) * est.penalty(&a.pressure);
                    let qb = est.hetero_factor(b.platform_index) * est.penalty(&b.pressure);
                    desirability(qa).total_cmp(&desirability(qb))
                })
                .map(|(i, _)| i)
                .expect("non-empty");
            let mut rest = planned.clone();
            rest.remove(worst);
            if still_meets(&est, &rest, params_col, &class.kind, &target) {
                let _ = world.remove_node(id, placement.nodes[worst].server);
                return;
            }
        }

        // Otherwise shrink the largest node one quantization step.
        let largest = placement
            .nodes
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| n.resources.cores)
            .map(|(i, _)| i)
            .expect("non-empty");
        let cur = placement.nodes[largest].resources;
        let smaller = (0..axes.scale_up.len())
            .filter(|&c| axes.scale_up[c].cores < cur.cores)
            .max_by_key(|&c| axes.scale_up[c].cores);
        if let Some(c) = smaller {
            let mut rest = planned.clone();
            rest[largest].scale_up_col = c;
            if still_meets(&est, &rest, params_col, &class.kind, &target) {
                let _ = world.resize_node(id, placement.nodes[largest].server, axes.scale_up[c]);
            }
        }
    }

    /// Predicted goal value of a workload's *current* placement.
    fn predicted_current_goal(&self, world: &World, id: WorkloadId) -> Option<f64> {
        let state = self.states.get(&id)?;
        let placement = world.placement(id)?;
        let axes = self.history.axes();
        let planned: Vec<PlannedNode> = placement
            .nodes
            .iter()
            .map(|n| PlannedNode {
                platform_index: axes.platform_index(world.server(n.server).platform()),
                scale_up_col: axes.nearest_scale_up(n.resources),
                pressure: self.estimated_pressure(world, n.server, Some(id)),
            })
            .collect();
        let est = Estimator::new(axes, &state.class);
        Some(est.predicted_goal(&planned, state.params_col))
    }

    /// The runtime feedback loop of §3.2: when measured service capacity
    /// deviates from the classification's prediction (misclassification,
    /// or scaling past the node counts profiling can reach), fold the
    /// observed ratio back into the classification.
    fn feedback_calibrate(&mut self, world: &World, id: WorkloadId) {
        let Some(obs) = world.observation(id) else {
            return;
        };
        let Some(predicted) = self.predicted_current_goal(world, id) else {
            return;
        };
        if predicted <= 0.0 || !predicted.is_finite() {
            return;
        }
        // Measured-over-predicted speed ratio, per goal kind.
        let kind = match self.states.get(&id) {
            Some(s) => s.class.kind,
            None => return,
        };
        let ratio = match (obs, kind) {
            (Observation::Service(o), GoalKind::Qps) => {
                if o.achieved_qps <= 0.0 || !o.utilization.is_finite() {
                    return;
                }
                let measured_capacity = if o.utilization >= 1.0 {
                    o.achieved_qps
                } else {
                    o.achieved_qps / o.utilization.max(0.02)
                };
                measured_capacity / predicted
            }
            (
                Observation::Batch {
                    rate,
                    progress,
                    projected_total_s,
                    elapsed_s,
                },
                GoalKind::Time,
            ) => {
                if rate <= 0.0 || progress >= 0.95 || !projected_total_s.is_finite() {
                    return;
                }
                // Whole-job completion time at the current rate; predicted
                // speed is 1/time, so the speed ratio inverts the times.
                let measured_time = (projected_total_s - elapsed_s) / (1.0 - progress);
                if measured_time <= 0.0 {
                    return;
                }
                predicted / measured_time
            }
            (Observation::Batch { rate, .. }, GoalKind::Rate) => {
                if rate <= 0.0 {
                    return;
                }
                rate / predicted
            }
            _ => return,
        };
        let ratio = ratio.clamp(0.1, 10.0);
        if (0.8..=1.25).contains(&ratio) {
            return;
        }
        if let Some(state) = self.states.get_mut(&id) {
            state.class.runtime_calibration =
                (state.class.runtime_calibration * ratio.powf(0.7)).clamp(0.02, 50.0);
        }
    }

    /// Proactive phase detection (§4.1): sample a fraction of running
    /// workloads, inject interference probes, compare against the
    /// classified sensitivity, reclassify on deviation.
    fn proactive_sweep(&mut self, world: &mut World) {
        let running: Vec<WorkloadId> = world
            .ids_in_state(quasar_cluster::JobState::Running)
            .into_iter()
            .filter(|&id| !world.spec(id).is_best_effort() && self.states.contains_key(&id))
            .collect();
        let sample_n = ((running.len() as f64 * self.config.proactive_fraction).ceil() as usize)
            .min(running.len());
        let sample: Vec<WorkloadId> = running
            .choose_multiple(&mut self.rng, sample_n)
            .copied()
            .collect();

        for id in sample {
            let state = self.states.get(&id).expect("filtered above");
            let tolerated = state.class.tolerated;
            let mut deviated = false;
            for _ in 0..2 {
                let r = self.history.axes().resources[self
                    .rng
                    .random_range(0..self.history.axes().resources.len())];
                let intensity = (tolerated.get(r) + 15.0).min(100.0);
                self.stats_mut().proactive_probes += 1;
                let Some(placement) = world.placement(id) else {
                    continue;
                };
                let Some(node) = placement.nodes.first() else {
                    continue;
                };
                let base = self.estimated_pressure(world, node.server, Some(id));
                let Some(measured) = world.probe_in_place(id, r, intensity) else {
                    continue;
                };
                let mut probed = base;
                probed.bump(r, intensity);
                let expected = penalty_for(&tolerated, &probed) / penalty_for(&tolerated, &base);
                if (measured - expected).abs() > 0.20 {
                    deviated = true;
                }
            }
            if deviated {
                self.stats_mut().phase_changes_detected += 1;
                self.reclassify_interference(world, id);
                self.adapt_up(world, id);
                self.stats_mut().adaptations += 1;
            }
        }
    }

    /// Partial in-place reclassification of interference sensitivity.
    fn reclassify_interference(&mut self, world: &mut World, id: WorkloadId) {
        let axes = self.history.axes().clone();
        let kind = self
            .states
            .get(&id)
            .map(|s| s.class.kind)
            .unwrap_or(GoalKind::Time);
        let d = self.config.profiling_entries;
        let mut tolerated_obs = Vec::new();
        let mut cols: Vec<usize> = (0..axes.resources.len()).collect();
        cols.shuffle(&mut self.rng);
        for &c in cols.iter().take(d) {
            let r = world.probe_sensitivity(id, axes.resources[c], self.config.probe_qos_loss);
            tolerated_obs.push((c, r.value));
        }
        let history = self.history.kind(kind);
        let reconstructor = quasar_cf::Reconstructor::new();
        if let Ok(row) = reconstructor.reconstruct_row(&history.tolerated, &tolerated_obs) {
            if let Some(state) = self.states.get_mut(&id) {
                for (i, v) in row.into_iter().enumerate() {
                    state
                        .class
                        .tolerated
                        .set(quasar_interference::SharedResource::from_index(i), v);
                }
            }
        }
        self.stats_mut().classifications += 1;
    }
}

/// Whether an observation shows enough headroom to reclaim resources.
fn is_overprovisioned(obs: &Observation, target: &QosTarget) -> bool {
    match (obs, target) {
        (Observation::Service(o), QosTarget::Throughput { .. }) => o.utilization < 0.35,
        (
            Observation::Batch {
                projected_total_s, ..
            },
            QosTarget::CompletionTime { seconds },
        ) => *projected_total_s < 0.6 * seconds,
        _ => false,
    }
}

fn still_meets(
    est: &Estimator<'_>,
    nodes: &[PlannedNode],
    params_col: Option<usize>,
    kind: &GoalKind,
    target: &QosTarget,
) -> bool {
    let goal = est.predicted_goal(nodes, params_col);
    match (kind, target) {
        (GoalKind::Time, QosTarget::CompletionTime { seconds }) => goal <= seconds * 0.9,
        (GoalKind::Qps, QosTarget::Throughput { qps, .. }) => goal >= qps * 1.15,
        (GoalKind::Rate, QosTarget::Ips { ips }) => goal >= ips * 1.10,
        _ => false,
    }
}

impl Manager for QuasarManager {
    fn name(&self) -> &str {
        "quasar"
    }

    fn on_arrival(&mut self, world: &mut World, id: WorkloadId) {
        // Profile and classify every submission with its dataset (§3.2).
        let axes = self.history.axes().clone();
        let data = self.profiler.profile(world, &axes, id);
        // With the similarity index enabled, repeat arrivals skip or
        // warm-start reconstruction; disabled (the default), this is the
        // plain classification path, bit for bit.
        let class = match self.similarity.as_mut() {
            Some(index) => {
                let (class, _, _) =
                    index.classify_or_insert(&self.classifier, &self.history, &data);
                class
            }
            None => self.classifier.classify(&self.history, &data),
        };
        self.stats_mut().classifications += 1;
        self.states.insert(
            id,
            WorkloadState {
                class,
                params_col: None,
                profiling_wall_s: data.wall_seconds,
                misses: 0,
                headroom_ticks: 0,
                pending_since: world.now(),
                active_after: f64::INFINITY,
                predictor: LoadPredictor::new(8),
            },
        );

        if world.spec(id).is_best_effort() {
            self.pending_best_effort.push_back(id);
            self.fill_best_effort(world);
            return;
        }
        if !self.try_place_guaranteed(world, id, false) {
            self.pending.push_back(id);
        }
    }

    fn on_tick(&mut self, world: &mut World) {
        if world.now() - self.last_adapt_s >= self.config.adapt_interval_s {
            self.last_adapt_s = world.now();
            self.adapt_all(world);
            self.try_place_all_pending(world);
            self.fill_best_effort(world);
        }
        if world.now() - self.last_proactive_s >= self.config.proactive_interval_s {
            self.last_proactive_s = world.now();
            self.proactive_sweep(world);
        }
    }

    fn on_completion(&mut self, world: &mut World, id: WorkloadId) {
        self.states.remove(&id);
        self.try_place_all_pending(world);
        self.fill_best_effort(world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_cluster::{ClusterSpec, JobState, SimConfig, Simulation};
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{Dataset, LoadPattern, PlatformCatalog, Priority, WorkloadClass};

    fn make_sim(per_platform: usize) -> (Simulation, Generator) {
        let catalog = PlatformCatalog::local();
        let manager = QuasarManager::bootstrap(&catalog, QuasarConfig::fast_test());
        let sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), per_platform),
            Box::new(manager),
            SimConfig::default(),
        );
        let generator = Generator::new(catalog, 31);
        (sim, generator)
    }

    /// A synthetic but well-formed classification over `axes`.
    fn test_class(axes: &crate::axes::Axes) -> Classification {
        Classification {
            kind: GoalKind::Time,
            scale_up_speed: axes.scale_up.iter().map(|r| r.cores as f64).collect(),
            scale_out_speed: Some(axes.scale_out.iter().map(|&n| n as f64).collect()),
            hetero_speed: vec![1.0; axes.platforms.len()],
            params_speed: None,
            tolerated: PressureVector::uniform(60.0),
            caused: PressureVector::uniform(15.0),
            runtime_calibration: 1.0,
        }
    }

    fn state_with(class: Classification, pending_since: f64, active_after: f64) -> WorkloadState {
        WorkloadState {
            class,
            params_col: Some(1),
            profiling_wall_s: 4.5,
            misses: 2,
            headroom_ticks: 1,
            pending_since,
            active_after,
            predictor: LoadPredictor::new(8),
        }
    }

    #[test]
    fn missing_state_means_zero_wait_not_epoch_wait() {
        let catalog = PlatformCatalog::local();
        let mut manager = QuasarManager::bootstrap(&catalog, QuasarConfig::fast_test());
        let axes = manager.history().axes().clone();
        // Regression: the old fallback used `pending_since = 0.0` for a
        // workload with no recorded state, so at now=1000s it "waited"
        // 1000s — far past the 180s threshold that forces degraded
        // admission. Statelessness must read as zero wait instead.
        assert_eq!(manager.pending_wait_s(1_000.0, WorkloadId(7)), 0.0);
        // A recorded state still yields the true wait.
        manager
            .states
            .insert(WorkloadId(7), state_with(test_class(&axes), 400.0, 95.0));
        assert_eq!(manager.pending_wait_s(1_000.0, WorkloadId(7)), 600.0);
    }

    #[test]
    fn snapshot_restore_preserves_admission_order_and_wait_accounting() {
        let catalog = PlatformCatalog::local();
        let mut manager = QuasarManager::bootstrap(&catalog, QuasarConfig::fast_test());
        let axes = manager.history().axes().clone();
        for (i, (since, active)) in [(10.0, 95.0), (20.0, f64::INFINITY), (30.0, 120.0)]
            .into_iter()
            .enumerate()
        {
            manager.states.insert(
                WorkloadId(i as u64),
                state_with(test_class(&axes), since, active),
            );
        }
        // Queue contents are admission order, deliberately not id order:
        // a hot standby must admit in the same sequence as the primary.
        manager.pending.extend([WorkloadId(2), WorkloadId(0)]);
        manager.pending_best_effort.push_back(WorkloadId(1));
        manager.stats_mut().adaptations = 7;

        let snap = manager.snapshot();
        let standby =
            QuasarManager::restore(manager.history().clone(), QuasarConfig::fast_test(), &snap);
        assert_eq!(
            Vec::from(standby.pending.clone()),
            vec![WorkloadId(2), WorkloadId(0)],
            "pending order must survive the round-trip"
        );
        assert_eq!(
            Vec::from(standby.pending_best_effort.clone()),
            vec![WorkloadId(1)]
        );
        for i in 0..3u64 {
            let original = &manager.states[&WorkloadId(i)];
            let restored = &standby.states[&WorkloadId(i)];
            assert_eq!(restored.pending_since, original.pending_since);
            assert_eq!(restored.active_after, original.active_after);
            assert_eq!(restored.params_col, original.params_col);
            assert_eq!(restored.profiling_wall_s, original.profiling_wall_s);
        }
        assert_eq!(standby.stats().adaptations, 7);
        // Same wait accounting on the standby as on the primary.
        assert_eq!(
            standby.pending_wait_s(100.0, WorkloadId(2)),
            manager.pending_wait_s(100.0, WorkloadId(2))
        );
    }

    #[test]
    fn manager_is_send_for_sharded_cells() {
        fn assert_send<T: Send>() {}
        assert_send::<QuasarManager>();
        assert_send::<ManagerSnapshot>();
        assert_send::<ManagerStats>();
    }

    #[test]
    fn places_a_batch_job_and_meets_target() {
        let (mut sim, mut generator) = make_sim(2);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "h1",
            Dataset::new("d", 12.0, 1.0),
            4,
            1_200.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        let target = match job.spec().target {
            quasar_workloads::QosTarget::CompletionTime { seconds } => seconds,
            _ => unreachable!(),
        };
        sim.submit_at(job, 0.0);
        sim.run_until(target * 3.0);
        assert_eq!(sim.world().state(id), JobState::Completed);
        let record = &sim.world().completions()[0];
        // Guarded: an unfinished record reads as "missed by a mile"
        // rather than aborting the whole process on `unwrap`.
        let exec = record.execution_s().unwrap_or(f64::INFINITY);
        assert!(
            exec <= target * 1.4,
            "execution {exec:.0}s vs target {target:.0}s"
        );
    }

    #[test]
    fn tracks_a_service_qps_target() {
        let (mut sim, mut generator) = make_sim(2);
        let svc = generator.service(
            WorkloadClass::Memcached,
            "mc",
            20.0,
            LoadPattern::Flat { qps: 60_000.0 },
            Priority::Guaranteed,
        );
        let id = svc.id();
        sim.submit_at(svc, 0.0);
        sim.run_until(1_800.0);
        assert_eq!(sim.world().state(id), JobState::Running);
        let rec = &sim.world().qos_records()[0];
        assert!(
            rec.served_fraction() > 0.80,
            "served {:.2} of offered load",
            rec.served_fraction()
        );
    }

    #[test]
    fn best_effort_fills_and_yields() {
        let (mut sim, mut generator) = make_sim(1);
        for (i, job) in generator.best_effort_fill(5).into_iter().enumerate() {
            sim.submit_at(job, i as f64);
        }
        sim.run_until(120.0);
        let placed = sim.world().ids_in_state(JobState::Running).len()
            + sim.world().ids_in_state(JobState::Completed).len();
        assert!(placed >= 3, "best-effort jobs must be packed, got {placed}");
    }

    #[test]
    fn pending_jobs_eventually_place_after_completions() {
        // Tiny cluster: one highest-end server's worth of capacity per
        // platform; many jobs arrive at once and must queue.
        let (mut sim, mut generator) = make_sim(1);
        let mut ids = Vec::new();
        for i in 0..4 {
            let job = generator.analytics_job(
                WorkloadClass::Spark,
                format!("s{i}"),
                Dataset::new("d", 6.0, 1.0),
                2,
                400.0,
                Priority::Guaranteed,
            );
            ids.push(job.id());
            sim.submit_at(job, i as f64 * 2.0);
        }
        sim.run_until(8_000.0);
        let done = ids
            .iter()
            .filter(|&&id| sim.world().state(id) == JobState::Completed)
            .count();
        assert!(done >= 3, "queued jobs must eventually run: {done}/4 done");
    }
}
