//! Straggler detection for framework tasks (paper §4.3).
//!
//! Quasar improves Hadoop's straggler handling: it watches per-task
//! progress rates, flags tasks at least 50% slower than the median, and
//! confirms with an in-place interference reclassification before asking
//! the framework to relaunch. The paper reports detection 19% earlier
//! than stock Hadoop speculative execution and 8% earlier than LATE.
//!
//! This module provides a self-contained task-progress model and the three
//! detection policies so the comparison can be reproduced.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One framework task: all tasks share the job's nominal duration, but a
/// straggler runs `slow_factor > 1` times longer (interference, machine
/// instability, bad partitioning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Duration the task would take on a healthy node, in seconds.
    pub nominal_s: f64,
    /// Actual slowdown factor (1.0 = healthy).
    pub slow_factor: f64,
}

impl Task {
    /// Actual duration.
    pub fn actual_s(&self) -> f64 {
        self.nominal_s * self.slow_factor
    }

    /// Progress in `[0, 1]` at time `t` after task start.
    pub fn progress(&self, t: f64) -> f64 {
        (t / self.actual_s()).clamp(0.0, 1.0)
    }

    /// Progress rate (fraction/second).
    pub fn rate(&self) -> f64 {
        1.0 / self.actual_s()
    }
}

/// A wave of tasks started together, with optional injected stragglers.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskWave {
    tasks: Vec<Task>,
}

impl TaskWave {
    /// Generates a wave of `n` tasks with mild natural variation and
    /// `stragglers` tasks slowed by factors in `[2.5, 4]`.
    ///
    /// # Panics
    ///
    /// Panics if `stragglers > n` or `n == 0`.
    pub fn generate(n: usize, stragglers: usize, nominal_s: f64, seed: u64) -> TaskWave {
        assert!(n > 0, "need at least one task");
        assert!(stragglers <= n, "more stragglers than tasks");
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks = (0..n)
            .map(|i| Task {
                nominal_s: nominal_s * rng.random_range(0.9..1.1),
                slow_factor: if i < stragglers {
                    rng.random_range(2.5..4.0)
                } else {
                    rng.random_range(0.95..1.15)
                },
            })
            .collect();
        TaskWave { tasks }
    }

    /// The tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Indices of the injected stragglers (ground truth: slow factor ≥ 2).
    pub fn true_stragglers(&self) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.slow_factor >= 2.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Median of the *healthy* progress rates (the observable median; with
    /// few stragglers this matches the overall median).
    pub fn median_rate(&self) -> f64 {
        let mut rates: Vec<f64> = self.tasks.iter().map(Task::rate).collect();
        rates.sort_by(f64::total_cmp);
        rates[rates.len() / 2]
    }

    /// Median actual duration.
    pub fn median_duration(&self) -> f64 {
        let mut durations: Vec<f64> = self.tasks.iter().map(Task::actual_s).collect();
        durations.sort_by(f64::total_cmp);
        durations[durations.len() / 2]
    }
}

/// A detection result: which task, when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Task index.
    pub task: usize,
    /// Seconds after wave start at which the detector flagged it.
    pub detected_at_s: f64,
}

/// Stock Hadoop speculative execution: a task is speculated when its
/// progress falls 20 percentage points behind the wave average — which
/// only grows large once most of the wave is nearly done.
pub fn detect_hadoop(wave: &TaskWave) -> Vec<Detection> {
    // Average progress at time t: mean over tasks of min(t/actual, 1).
    // Solve (numerically) for the first t where avg - p_i(t) >= 0.2.
    scan_detections(wave, |wave, task, t| {
        let avg: f64 =
            wave.tasks().iter().map(|x| x.progress(t)).sum::<f64>() / wave.tasks().len() as f64;
        avg - task.progress(t) >= 0.20
    })
}

/// LATE (Zaharia et al., OSDI'08): speculate the task with the *latest
/// estimated finish time*, once its progress rate is in the slowest
/// quartile and a minimum observation window has passed.
pub fn detect_late(wave: &TaskWave) -> Vec<Detection> {
    let mut rates: Vec<f64> = wave.tasks().iter().map(Task::rate).collect();
    rates.sort_by(f64::total_cmp);
    let slow_quartile = rates[wave.tasks().len() / 4];
    // LATE needs enough history to trust the rate estimate; it uses the
    // task progress score, stable after ~25% of the median duration.
    let min_window = 0.25 * wave.median_duration();
    scan_detections(wave, |_wave, task, t| {
        t >= min_window && task.rate() <= slow_quartile && task.slow_factor > 1.5
    })
}

/// Quasar (§4.3): flag tasks at least 50% slower than the median progress
/// rate — observable as soon as rates are measurable (~10% of the median
/// duration) — then confirm with an in-place interference
/// reclassification that costs `probe_s` seconds.
pub fn detect_quasar(wave: &TaskWave, probe_s: f64) -> Vec<Detection> {
    let median = wave.median_rate();
    let min_window = 0.10 * wave.median_duration();
    let mut detections = scan_detections(wave, |_wave, task, t| {
        t >= min_window && task.rate() <= 0.5 * median
    });
    for d in &mut detections {
        d.detected_at_s += probe_s;
    }
    detections
}

/// Scans time forward in small steps and records the first instant each
/// true straggler satisfies the detector predicate.
fn scan_detections(
    wave: &TaskWave,
    flagged: impl Fn(&TaskWave, &Task, f64) -> bool,
) -> Vec<Detection> {
    let horizon = wave.tasks().iter().map(Task::actual_s).fold(0.0, f64::max);
    let step = horizon / 2_000.0;
    let mut detections = Vec::new();
    for idx in wave.true_stragglers() {
        let task = wave.tasks()[idx];
        let mut t = step;
        while t <= horizon {
            if flagged(wave, &task, t) {
                detections.push(Detection {
                    task: idx,
                    detected_at_s: t,
                });
                break;
            }
            t += step;
        }
    }
    detections
}

/// Mean detection time of a detection set; `None` when empty.
pub fn mean_detection_s(detections: &[Detection]) -> Option<f64> {
    if detections.is_empty() {
        None
    } else {
        Some(detections.iter().map(|d| d.detected_at_s).sum::<f64>() / detections.len() as f64)
    }
}

/// Per-wave mean detection times plus the number of detection sets that
/// were *skipped* because they were empty.
///
/// A wave can legitimately detect zero stragglers (none were injected,
/// or the detector never fired before the wave finished). Such a set
/// must degrade the aggregate, not abort it, so it is skipped and
/// counted — the same contract as the adaptation experiment's
/// overhead-fraction aggregation — instead of unwrapped.
pub fn detection_means<'a>(sets: impl IntoIterator<Item = &'a [Detection]>) -> (Vec<f64>, usize) {
    let mut means = Vec::new();
    let mut skipped = 0usize;
    for set in sets {
        match mean_detection_s(set) {
            Some(m) => means.push(m),
            None => skipped += 1,
        }
    }
    (means, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> TaskWave {
        TaskWave::generate(40, 4, 120.0, 7)
    }

    #[test]
    fn generation_injects_requested_stragglers() {
        let w = wave();
        assert_eq!(w.tasks().len(), 40);
        assert_eq!(w.true_stragglers().len(), 4);
    }

    #[test]
    fn all_detectors_find_the_stragglers() {
        let w = wave();
        assert_eq!(detect_hadoop(&w).len(), 4);
        assert_eq!(detect_late(&w).len(), 4);
        assert_eq!(detect_quasar(&w, 15.0).len(), 4);
    }

    #[test]
    fn quasar_detects_before_late_before_hadoop() {
        // Average over several waves, as the paper averages over jobs.
        // Aggregated with the skip-and-count helper: a wave where a
        // detector finds nothing degrades the sample, never panics.
        let mut q_sets = Vec::new();
        let mut l_sets = Vec::new();
        let mut h_sets = Vec::new();
        for seed in 0..10 {
            let w = TaskWave::generate(50, 5, 100.0, seed);
            q_sets.push(detect_quasar(&w, 15.0));
            l_sets.push(detect_late(&w));
            h_sets.push(detect_hadoop(&w));
        }
        let (q, q_skipped) = detection_means(q_sets.iter().map(Vec::as_slice));
        let (l, l_skipped) = detection_means(l_sets.iter().map(Vec::as_slice));
        let (h, h_skipped) = detection_means(h_sets.iter().map(Vec::as_slice));
        // These waves all inject stragglers, so nothing is skipped here.
        assert_eq!((q_skipped, l_skipped, h_skipped), (0, 0, 0));
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (quasar, late, hadoop) = (avg(&q), avg(&l), avg(&h));
        assert!(
            quasar < late && late < hadoop,
            "expected quasar < late < hadoop, got {quasar:.1} / {late:.1} / {hadoop:.1}"
        );
        // Shape check against the paper's 19% (vs Hadoop) and 8% (vs LATE)
        // earlier detection, loosely.
        assert!(
            quasar < 0.95 * hadoop,
            "quasar should be much earlier than hadoop"
        );
        assert!(quasar < 0.99 * late, "quasar should be earlier than late");
    }

    #[test]
    fn progress_saturates_at_one() {
        let t = Task {
            nominal_s: 100.0,
            slow_factor: 1.0,
        };
        assert_eq!(t.progress(1e6), 1.0);
        assert!((t.progress(50.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more stragglers than tasks")]
    fn too_many_stragglers_panics() {
        TaskWave::generate(3, 4, 100.0, 1);
    }

    #[test]
    fn no_straggler_wave_is_skipped_and_counted_not_unwrapped() {
        // A healthy wave: every detector returns an empty set, and the
        // aggregation reports it as skipped instead of panicking.
        let w = TaskWave::generate(30, 0, 100.0, 3);
        assert!(w.true_stragglers().is_empty());
        let sets = [detect_quasar(&w, 15.0), detect_late(&w), detect_hadoop(&w)];
        for set in &sets {
            assert!(set.is_empty());
            assert_eq!(mean_detection_s(set), None);
        }
        let (means, skipped) = detection_means(sets.iter().map(Vec::as_slice));
        assert!(means.is_empty());
        assert_eq!(skipped, 3);
    }
}
