//! Composing classification outputs into performance predictions.
//!
//! The four classifications are independent (paper §3.2); the estimator
//! recombines them multiplicatively around a shared anchor point: speed at
//! the anchor configuration on the reference platform with one node and no
//! interference. Heterogeneity, scale-up, scale-out, framework parameters,
//! and interference each contribute a ratio against their anchor column.

use quasar_interference::{penalty_for, PressureVector};

use crate::axes::Axes;
use crate::classify::Classification;

/// One planned node for prediction purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedNode {
    /// Index into [`Axes::platforms`].
    pub platform_index: usize,
    /// Index into [`Axes::scale_up`].
    pub scale_up_col: usize,
    /// Estimated external pressure on the hosting server.
    pub pressure: PressureVector,
}

/// Predicts workload performance for candidate allocations from a
/// [`Classification`].
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    axes: &'a Axes,
    class: &'a Classification,
}

impl<'a> Estimator<'a> {
    /// Creates an estimator over a classification.
    pub fn new(axes: &'a Axes, class: &'a Classification) -> Estimator<'a> {
        Estimator { axes, class }
    }

    /// Anchor speed: the classified speed at the anchor scale-up column
    /// (reference platform, one node, quiet).
    fn anchor_speed(&self) -> f64 {
        self.class.scale_up_speed[self.axes.anchor_config].max(1e-12)
    }

    /// Estimated interference penalty under external pressure, using the
    /// classified tolerated-pressure vector and the standard decay law.
    pub fn penalty(&self, pressure: &PressureVector) -> f64 {
        penalty_for(&self.class.tolerated, pressure)
    }

    /// Speed multiplier of a platform relative to the reference platform.
    pub fn hetero_factor(&self, platform_index: usize) -> f64 {
        let reference = self.class.hetero_speed[self.axes.ref_platform_index()].max(1e-12);
        self.class.hetero_speed[platform_index].max(0.0) / reference
    }

    /// Speed multiplier of a scale-up column relative to the anchor.
    pub fn scale_up_factor(&self, col: usize) -> f64 {
        self.class.scale_up_speed[col].max(0.0) / self.anchor_speed()
    }

    /// Per-node efficiency of running on `n` nodes relative to `n`
    /// independent single nodes: `speed(n) / (n × speed(1))` from the
    /// scale-out classification, interpolating between axis columns and
    /// extrapolating with the last measured efficiency beyond them.
    pub fn scale_out_efficiency(&self, nodes: usize) -> f64 {
        let Some(so) = &self.class.scale_out_speed else {
            return if nodes <= 1 { 1.0 } else { 0.0 };
        };
        let one = self.axes.scale_out_or_nearest(1);
        let base = so[one].max(1e-12);
        let speed_at = |nodes: usize| -> f64 {
            // Piecewise-linear in node count across the axis columns.
            let axis = &self.axes.scale_out;
            if let Some(i) = axis.iter().position(|&n| n == nodes) {
                return so[i].max(0.0);
            }
            let mut prev = 0;
            for (i, &n) in axis.iter().enumerate() {
                if n > nodes {
                    if i == 0 {
                        return so[0].max(0.0);
                    }
                    let (n0, n1) = (axis[i - 1] as f64, n as f64);
                    let (s0, s1) = (so[i - 1], so[i]);
                    let t = (nodes as f64 - n0) / (n1 - n0);
                    return (s0 + t * (s1 - s0)).max(0.0);
                }
                prev = i;
            }
            // Beyond the largest column: extrapolate with constant
            // per-node efficiency (the paper's feedback loop covers this
            // regime at runtime).
            let last_n = axis[prev] as f64;
            (so[prev] / last_n * nodes as f64).max(0.0)
        };
        (speed_at(nodes) / (nodes as f64 * base)).min(2.0)
    }

    /// Speed multiplier of a framework-parameter column relative to the
    /// stock configuration; 1.0 when the workload has no framework knobs.
    pub fn params_factor(&self, col: usize) -> f64 {
        match &self.class.params_speed {
            Some(p) => {
                let default = p[self.axes.default_params].max(1e-12);
                p[col].max(0.0) / default
            }
            None => 1.0,
        }
    }

    /// Predicted aggregate *speed* of an allocation (goal-kind agnostic:
    /// higher is better).
    pub fn total_speed(&self, nodes: &[PlannedNode], params_col: Option<usize>) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        let anchor = self.anchor_speed();
        let per_node: f64 = nodes
            .iter()
            .map(|n| {
                anchor
                    * self.hetero_factor(n.platform_index)
                    * self.scale_up_factor(n.scale_up_col)
                    * self.penalty(&n.pressure)
            })
            .sum();
        let efficiency = self.scale_out_efficiency(nodes.len());
        let params = params_col.map_or(1.0, |c| self.params_factor(c));
        per_node * efficiency * params * self.class.runtime_calibration
    }

    /// Predicted goal value (completion seconds / QPS / IPS) of an
    /// allocation.
    pub fn predicted_goal(&self, nodes: &[PlannedNode], params_col: Option<usize>) -> f64 {
        self.class
            .kind
            .from_speed(self.total_speed(nodes, params_col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::GoalKind;
    use quasar_workloads::PlatformCatalog;

    fn axes() -> Axes {
        Axes::for_catalog(&PlatformCatalog::local())
    }

    /// A synthetic classification with known structure: speed doubles on
    /// the reference platform vs others, scales linearly with the
    /// scale-up column index + 1, and scale-out is perfectly linear.
    fn synthetic(axes: &Axes, kind: GoalKind) -> Classification {
        Classification {
            kind,
            scale_up_speed: (0..axes.scale_up.len()).map(|i| (i + 1) as f64).collect(),
            scale_out_speed: Some(axes.scale_out.iter().map(|&n| n as f64 * 10.0).collect()),
            hetero_speed: (0..axes.platforms.len())
                .map(|i| {
                    if i == axes.ref_platform_index() {
                        2.0
                    } else {
                        1.0
                    }
                })
                .collect(),
            params_speed: None,
            tolerated: PressureVector::uniform(50.0),
            caused: PressureVector::uniform(10.0),
            runtime_calibration: 1.0,
        }
    }

    #[test]
    fn hetero_factor_is_relative_to_reference() {
        let axes = axes();
        let class = synthetic(&axes, GoalKind::Qps);
        let est = Estimator::new(&axes, &class);
        assert_eq!(est.hetero_factor(axes.ref_platform_index()), 1.0);
        let other = (axes.ref_platform_index() + 1) % axes.platforms.len();
        assert_eq!(est.hetero_factor(other), 0.5);
    }

    #[test]
    fn scale_out_efficiency_of_linear_axis_is_one() {
        let axes = axes();
        let class = synthetic(&axes, GoalKind::Qps);
        let est = Estimator::new(&axes, &class);
        for n in [1usize, 2, 4, 8, 16, 32] {
            assert!(
                (est.scale_out_efficiency(n) - 1.0).abs() < 1e-9,
                "linear scale-out axis must give unit efficiency at {n}"
            );
        }
        // Interpolated and extrapolated points too.
        assert!((est.scale_out_efficiency(5) - 1.0).abs() < 0.05);
        assert!((est.scale_out_efficiency(64) - 1.0).abs() < 0.05);
    }

    #[test]
    fn total_speed_composes_factors() {
        let axes = axes();
        let class = synthetic(&axes, GoalKind::Qps);
        let est = Estimator::new(&axes, &class);
        let anchor = class.scale_up_speed[axes.anchor_config];
        let node = PlannedNode {
            platform_index: axes.ref_platform_index(),
            scale_up_col: axes.anchor_config,
            pressure: PressureVector::zero(),
        };
        let single = est.total_speed(&[node], None);
        assert!((single - anchor).abs() < 1e-9, "anchor must predict itself");
        let double = est.total_speed(&[node, node], None);
        assert!((double - 2.0 * anchor).abs() < 1e-6);
    }

    #[test]
    fn pressure_reduces_prediction() {
        let axes = axes();
        let class = synthetic(&axes, GoalKind::Qps);
        let est = Estimator::new(&axes, &class);
        let quiet = PlannedNode {
            platform_index: 0,
            scale_up_col: axes.anchor_config,
            pressure: PressureVector::zero(),
        };
        let noisy = PlannedNode {
            pressure: PressureVector::uniform(90.0),
            ..quiet
        };
        assert!(est.total_speed(&[noisy], None) < est.total_speed(&[quiet], None));
    }

    #[test]
    fn time_kind_inverts_goal() {
        let axes = axes();
        let class = synthetic(&axes, GoalKind::Time);
        let est = Estimator::new(&axes, &class);
        let node = PlannedNode {
            platform_index: axes.ref_platform_index(),
            scale_up_col: axes.anchor_config,
            pressure: PressureVector::zero(),
        };
        let goal_1 = est.predicted_goal(&[node], None);
        let goal_2 = est.predicted_goal(&[node, node], None);
        assert!(goal_2 < goal_1, "more nodes, shorter completion");
    }

    #[test]
    fn single_node_kind_cannot_scale_out() {
        let axes = axes();
        let mut class = synthetic(&axes, GoalKind::Rate);
        class.scale_out_speed = None;
        let est = Estimator::new(&axes, &class);
        assert_eq!(est.scale_out_efficiency(1), 1.0);
        assert_eq!(est.scale_out_efficiency(2), 0.0);
    }
}
