//! Offline-characterized workload history.
//!
//! Collaborative filtering needs dense rows to anchor the sparse rows of
//! incoming workloads. The paper profiles a small number of workload
//! types (20–30) exhaustively offline — "these runs provide the
//! classification engine with dense information ... this step does not
//! need to repeat unless there are major changes in the cluster's hardware
//! or application structure" (§3.2). [`HistorySet::bootstrap`] performs
//! that offline campaign against a scratch simulation.

use std::collections::HashMap;

use quasar_cf::DenseMatrix;
use quasar_cluster::{
    managers::NullManager, ClusterSpec, ProfileConfig, SimConfig, Simulation, World,
};
use quasar_workloads::generate::Generator;
use quasar_workloads::{
    Dataset, LoadPattern, PlatformCatalog, Priority, WorkloadClass, WorkloadId,
};

use crate::axes::{Axes, GoalKind};

/// Dense per-axis history for one goal kind. Speed axes are stored in
/// natural-log space (ln speed) so the PQ row bias absorbs each training
/// workload's overall scale; interference axes are linear pressure points.
#[derive(Debug, Clone)]
pub struct KindHistory {
    /// ln-speed per scale-up column.
    pub scale_up: DenseMatrix,
    /// ln-speed per scale-out column (absent for single-node kinds).
    pub scale_out: Option<DenseMatrix>,
    /// ln-speed per platform column.
    pub hetero: DenseMatrix,
    /// Tolerated-pressure point per interference source.
    pub tolerated: DenseMatrix,
    /// Caused pressure per interference source.
    pub caused: DenseMatrix,
    /// ln-speed per framework-parameter column (framework kinds only).
    pub params: Option<DenseMatrix>,
}

/// The full offline history: one [`KindHistory`] per goal kind, sharing
/// one [`Axes`] definition.
#[derive(Debug, Clone)]
pub struct HistorySet {
    axes: Axes,
    kinds: HashMap<GoalKind, KindHistory>,
}

impl HistorySet {
    /// Runs the offline profiling campaign: generates `train_per_kind`
    /// training workloads per goal kind and profiles each across every
    /// column of every axis against a scratch simulation of the catalog.
    ///
    /// # Panics
    ///
    /// Panics if `train_per_kind < 2` (collaborative filtering needs at
    /// least a couple of anchor rows).
    pub fn bootstrap(catalog: &PlatformCatalog, train_per_kind: usize, seed: u64) -> HistorySet {
        assert!(train_per_kind >= 2, "need at least two training workloads");
        let axes = Axes::for_catalog(catalog);
        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 1),
            Box::new(NullManager),
            SimConfig {
                // Offline characterization is careful; keep a little noise
                // so the history is not suspiciously exact.
                noise: 0.01,
                seed,
                ..SimConfig::default()
            },
        );
        let mut generator = Generator::new(catalog.clone(), seed ^ 0x7A1);

        let mut pools: HashMap<GoalKind, Vec<WorkloadId>> = HashMap::new();
        for i in 0..train_per_kind {
            let time_job = match i % 3 {
                0 => generator.analytics_job(
                    WorkloadClass::Hadoop,
                    format!("train-h{i}"),
                    Dataset::new(format!("tds{i}"), 4.0 + 9.0 * i as f64, 1.0),
                    2,
                    1_800.0,
                    Priority::Guaranteed,
                ),
                1 => generator.analytics_job(
                    WorkloadClass::Spark,
                    format!("train-sp{i}"),
                    Dataset::new(format!("tds{i}"), 3.0 + 7.0 * i as f64, 0.9),
                    2,
                    1_500.0,
                    Priority::Guaranteed,
                ),
                _ => generator.analytics_job(
                    WorkloadClass::Storm,
                    format!("train-st{i}"),
                    Dataset::new(format!("tds{i}"), 2.0 + 5.0 * i as f64, 1.2),
                    2,
                    1_200.0,
                    Priority::Guaranteed,
                ),
            };
            let svc_class = match i % 3 {
                0 => WorkloadClass::Memcached,
                1 => WorkloadClass::Webserver,
                _ => WorkloadClass::Cassandra,
            };
            let qps_job = generator.service(
                svc_class,
                format!("train-s{i}"),
                10.0 + 5.0 * i as f64,
                LoadPattern::Flat {
                    qps: 10_000.0 + 1_000.0 * i as f64,
                },
                Priority::Guaranteed,
            );
            let rate_job =
                generator.single_node_job(format!("train-b{i}"), 600.0, Priority::Guaranteed);

            pools.entry(GoalKind::Time).or_default().push(time_job.id());
            pools.entry(GoalKind::Qps).or_default().push(qps_job.id());
            pools.entry(GoalKind::Rate).or_default().push(rate_job.id());
            sim.submit_at(time_job, 0.0);
            sim.submit_at(qps_job, 0.0);
            sim.submit_at(rate_job, 0.0);
        }
        // Deliver the arrivals (NullManager leaves everything pending).
        sim.run_until(sim.world().tick_s());

        let world = sim.world_mut();
        let mut kinds = HashMap::new();
        for kind in GoalKind::ALL {
            let rows = &pools[&kind];
            kinds.insert(kind, profile_kind(world, &axes, kind, rows));
        }

        HistorySet { axes, kinds }
    }

    /// The shared axis definitions.
    pub fn axes(&self) -> &Axes {
        &self.axes
    }

    /// The history for one goal kind.
    pub fn kind(&self, kind: GoalKind) -> &KindHistory {
        &self.kinds[&kind]
    }
}

/// Exhaustively profiles `rows` across every axis column.
fn profile_kind(
    world: &mut World,
    axes: &Axes,
    kind: GoalKind,
    rows: &[WorkloadId],
) -> KindHistory {
    let n = rows.len();
    let distributed = kind != GoalKind::Rate;
    let framework = kind == GoalKind::Time;

    let mut scale_up = DenseMatrix::zeros(n, axes.scale_up.len());
    let mut hetero = DenseMatrix::zeros(n, axes.platforms.len());
    let mut scale_out = distributed.then(|| DenseMatrix::zeros(n, axes.scale_out.len()));
    let mut params = framework.then(|| DenseMatrix::zeros(n, axes.params.len()));
    let mut tolerated = DenseMatrix::zeros(n, axes.resources.len());
    let mut caused = DenseMatrix::zeros(n, axes.resources.len());

    for (row, &id) in rows.iter().enumerate() {
        for (col, res) in axes.scale_up.iter().enumerate() {
            let config = ProfileConfig::single(axes.ref_platform, *res);
            let v = world.profile_config(id, &config).value;
            scale_up.set(row, col, ln_speed(kind, v));
        }
        for (col, &pid) in axes.platforms.iter().enumerate() {
            let config = ProfileConfig::single(pid, axes.anchor());
            let v = world.profile_config(id, &config).value;
            hetero.set(row, col, ln_speed(kind, v));
        }
        if let Some(m) = scale_out.as_mut() {
            for (col, &nodes) in axes.scale_out.iter().enumerate() {
                let config = ProfileConfig::single(axes.ref_platform, axes.scale_out_probe)
                    .with_nodes(nodes);
                let v = world.profile_config(id, &config).value;
                m.set(row, col, ln_speed(kind, v));
            }
        }
        if let Some(m) = params.as_mut() {
            for (col, p) in axes.params.iter().enumerate() {
                let config =
                    ProfileConfig::single(axes.ref_platform, axes.ref_full).with_params(*p);
                let v = world.profile_config(id, &config).value;
                m.set(row, col, ln_speed(kind, v));
            }
        }
        for (col, &resource) in axes.resources.iter().enumerate() {
            tolerated.set(row, col, world.probe_sensitivity(id, resource, 0.05).value);
            caused.set(row, col, world.probe_caused(id, resource).value);
        }
    }

    KindHistory {
        scale_up,
        scale_out,
        hetero,
        tolerated,
        caused,
        params,
    }
}

/// Converts a measured goal value into log-space speed, guarding zeros.
///
/// Exposed so validation experiments can build exhaustive-classification
/// histories in the same value space.
pub fn ln_speed(kind: GoalKind, value: f64) -> f64 {
    kind.to_speed(value).max(1e-12).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> HistorySet {
        HistorySet::bootstrap(&PlatformCatalog::local(), 4, 42)
    }

    #[test]
    fn bootstrap_builds_all_kinds() {
        let h = history();
        for kind in GoalKind::ALL {
            let k = h.kind(kind);
            assert_eq!(k.scale_up.rows(), 4);
            assert_eq!(k.scale_up.cols(), h.axes().scale_up.len());
            assert_eq!(k.hetero.cols(), h.axes().platforms.len());
            assert_eq!(k.tolerated.cols(), 10);
        }
        assert!(h.kind(GoalKind::Rate).scale_out.is_none());
        assert!(h.kind(GoalKind::Time).params.is_some());
        assert!(h.kind(GoalKind::Qps).params.is_none());
    }

    #[test]
    fn history_values_are_finite() {
        let h = history();
        for kind in GoalKind::ALL {
            let k = h.kind(kind);
            for v in k.scale_up.as_slice() {
                assert!(v.is_finite(), "ln-speed must be finite");
            }
            for v in k.tolerated.as_slice() {
                assert!((0.0..=100.0).contains(v), "pressure point in range");
            }
        }
    }

    #[test]
    fn scale_out_row_improves_with_nodes_for_services() {
        let h = history();
        let k = h.kind(GoalKind::Qps);
        let m = k.scale_out.as_ref().unwrap();
        // More nodes should generally mean more capacity: compare the
        // 1-node and 8-node columns via the graceful lookup (falls back
        // to the nearest column on axis sets missing those counts).
        let one = h.axes().scale_out_or_nearest(1);
        let eight = h.axes().scale_out_or_nearest(8);
        for row in 0..m.rows() {
            assert!(
                m.get(row, eight) > m.get(row, one),
                "8 nodes must beat 1 node for services"
            );
        }
    }

    #[test]
    fn scale_out_lookup_survives_custom_axis_sets() {
        // A history bootstrapped on the stock catalog, then consulted
        // through a custom axis set without the 1/8-node counts: the
        // graceful lookup returns the nearest columns instead of the
        // old `.position().unwrap()` panic.
        let h = history();
        let mut axes = h.axes().clone();
        axes.scale_out = vec![2, 4, 16];
        assert_eq!(axes.scale_out_position(1), None);
        assert_eq!(axes.scale_out_position(8), None);
        let one = axes.scale_out_or_nearest(1);
        let eight = axes.scale_out_or_nearest(8);
        assert_eq!(axes.scale_out[one], 2);
        // |8-4| = 4 beats |8-16| = 8, so the 4-node column wins.
        assert_eq!(axes.scale_out[eight], 4);
    }

    #[test]
    fn ln_speed_inverts_time() {
        assert!(ln_speed(GoalKind::Time, 100.0) < ln_speed(GoalKind::Time, 10.0));
        assert!(ln_speed(GoalKind::Qps, 100.0) > ln_speed(GoalKind::Qps, 10.0));
    }
}
