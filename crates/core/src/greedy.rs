//! Greedy joint allocation and assignment (paper §3.3).
//!
//! The scheduler ranks available servers by decreasing resource quality
//! (estimated platform speed × estimated interference penalty × impact on
//! already-placed workloads), then sizes the allocation along the ranking
//! — scale-up within a server first, then scale-out — until the
//! performance constraint is met, and finally trims the last node to the
//! least sufficient configuration.

use quasar_interference::PressureVector;
use quasar_workloads::{NodeResources, QosTarget};

use crate::axes::{Axes, GoalKind};
use crate::classify::Classification;
use crate::estimate::{Estimator, PlannedNode};
use crate::ordering::{cost, desirability};

/// A candidate server as seen by the scheduler: free resources plus the
/// manager's *estimates* of its pressure and of how much headroom its
/// current tenants have (so the new workload doesn't wreck them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateServer {
    /// Server identity (opaque to the scheduler; echoed in the plan).
    pub server: usize,
    /// Index into [`Axes::platforms`].
    pub platform_index: usize,
    /// Free cores.
    pub free_cores: u32,
    /// Free memory in GB.
    pub free_memory_gb: f64,
    /// Estimated external pressure the new workload would see there.
    pub pressure: PressureVector,
    /// Multiplier in `(0, 1]` penalizing servers where the incoming
    /// workload's caused pressure would push an existing tenant past its
    /// tolerance (1.0 = no victims).
    pub victim_factor: f64,
    /// Hourly price of the whole server, in dollars (cost-target
    /// extension, paper §4.4).
    pub hourly_price: f64,
}

/// The scheduler's output: per-server slices, chosen framework-parameter
/// column, and the performance prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationPlan {
    /// `(candidate server id, resources)` slices.
    pub nodes: Vec<(usize, NodeResources)>,
    /// Chosen framework-parameter column, if applicable.
    pub params_col: Option<usize>,
    /// Predicted goal value of the plan.
    pub predicted_goal: f64,
    /// Whether the prediction meets the target with margin.
    pub meets: bool,
    /// Estimated spend of the plan in dollars per hour (slices are billed
    /// pro rata to the share of the server they hold).
    pub hourly_cost: f64,
}

/// Margin the scheduler leaves against the target to absorb measurement
/// noise and classification error.
const TARGET_MARGIN: f64 = 0.08;

/// Greedy joint allocation/assignment over classified estimates.
#[derive(Debug, Clone, Copy)]
pub struct GreedyScheduler {
    /// Maximum nodes per workload.
    pub max_nodes: usize,
}

impl GreedyScheduler {
    /// A scheduler bounded at `max_nodes` nodes per workload.
    pub fn new(max_nodes: usize) -> GreedyScheduler {
        assert!(max_nodes >= 1, "need at least one node");
        GreedyScheduler { max_nodes }
    }

    /// Computes an allocation plan for a workload.
    ///
    /// Returns `None` when no candidate has room for even the smallest
    /// configuration. Otherwise returns the best plan found, with `meets`
    /// indicating whether it satisfies the target.
    pub fn plan(
        &self,
        axes: &Axes,
        class: &Classification,
        target: &QosTarget,
        candidates: &[CandidateServer],
    ) -> Option<AllocationPlan> {
        self.plan_with_budget(axes, class, target, candidates, None)
    }

    /// [`GreedyScheduler::plan`] with an optional spending cap in dollars
    /// per hour: node growth stops at the budget, and the most expensive
    /// slices are dropped if a partial plan overshoots it (the paper's
    /// §4.4 cost target "serves as a limit for resource allocation").
    pub fn plan_with_budget(
        &self,
        axes: &Axes,
        class: &Classification,
        target: &QosTarget,
        candidates: &[CandidateServer],
        budget_per_hour: Option<f64>,
    ) -> Option<AllocationPlan> {
        let _span = quasar_obs::span!("core.greedy.plan", "candidates={}", candidates.len());
        {
            static PLANS: std::sync::OnceLock<quasar_obs::registry::Counter> =
                std::sync::OnceLock::new();
            PLANS
                .get_or_init(|| quasar_obs::Registry::global().counter("quasar.core.greedy.plans"))
                .inc();
        }
        let est = Estimator::new(axes, class);

        // Pick framework parameters first: the best-estimated column whose
        // memory footprint is modest (packing-friendly).
        let params_col = class.params_speed.as_ref().map(|speeds| {
            speeds
                .iter()
                .enumerate()
                .filter(|(c, _)| axes.params[*c].memory_per_node_gb() <= 24.0)
                .max_by(|a, b| desirability(*a.1).total_cmp(&desirability(*b.1)))
                .map(|(c, _)| c)
                .unwrap_or(axes.default_params)
        });

        // Rank candidates by quality: estimated platform speed on a quiet
        // node, degraded by estimated interference and victim impact.
        let mut ranked: Vec<&CandidateServer> = candidates
            .iter()
            .filter(|c| c.free_cores >= 1 && c.free_memory_gb >= 1.0)
            .collect();
        if ranked.is_empty() {
            return None;
        }
        let quality = |c: &CandidateServer| -> f64 {
            est.hetero_factor(c.platform_index) * est.penalty(&c.pressure) * c.victim_factor
        };
        // A non-finite quality estimate (model blow-up) must never rank
        // ahead of any finite candidate.
        ranked.sort_by(|a, b| desirability(quality(b)).total_cmp(&desirability(quality(a))));

        let single_node_only = class.scale_out_speed.is_none();
        let max_nodes = if single_node_only { 1 } else { self.max_nodes };

        // Grow node set best-quality-first, each node at its best fitting
        // scale-up configuration (scale-up before scale-out, §3.3),
        // stopping at the spending cap when one is set.
        let mut planned: Vec<PlannedNode> = Vec::new();
        let mut chosen: Vec<(usize, NodeResources)> = Vec::new();
        let mut spend = 0.0;
        for candidate in ranked.iter().take(max_nodes) {
            let Some(col) = self.best_fitting_col(axes, &est, candidate) else {
                continue;
            };
            let node_cost = slice_cost(candidate, axes.scale_up[col]);
            if let Some(budget) = budget_per_hour {
                if spend + node_cost > budget {
                    continue; // a cheaper later candidate may still fit
                }
            }
            spend += node_cost;
            planned.push(PlannedNode {
                platform_index: candidate.platform_index,
                scale_up_col: col,
                pressure: candidate.pressure,
            });
            chosen.push((candidate.server, axes.scale_up[col]));
            let goal = est.predicted_goal(&planned, params_col);
            if meets_target(class.kind, goal, target) {
                break;
            }
        }
        if chosen.is_empty() {
            // Nothing affordable at best-fitting size: fall back to the
            // single cheapest fitting slice so the workload still runs
            // (the cost target "serves as a limit", not a veto).
            let cheapest = ranked
                .iter()
                .filter_map(|c| {
                    self.best_fitting_col(axes, &est, c).map(|col| {
                        let smallest = (0..axes.scale_up.len())
                            .filter(|&cc| {
                                let r = axes.scale_up[cc];
                                r.cores <= c.free_cores && r.memory_gb <= c.free_memory_gb
                            })
                            .min_by(|&a, &b| {
                                cost(slice_cost(c, axes.scale_up[a]))
                                    .total_cmp(&cost(slice_cost(c, axes.scale_up[b])))
                            })
                            .unwrap_or(col);
                        (c, smallest)
                    })
                })
                .min_by(|(ca, a), (cb, b)| {
                    cost(slice_cost(ca, axes.scale_up[*a]))
                        .total_cmp(&cost(slice_cost(cb, axes.scale_up[*b])))
                });
            if let Some((c, col)) = cheapest {
                planned.push(PlannedNode {
                    platform_index: c.platform_index,
                    scale_up_col: col,
                    pressure: c.pressure,
                });
                chosen.push((c.server, axes.scale_up[col]));
            } else {
                return None;
            }
        }

        // Re-pick framework parameters now that node sizes are known: the
        // mapper count must not cap the cores we just allocated (Table 3:
        // Quasar raises mappers/node to match, and beyond, the hardware
        // when mapper interference is low).
        let params_col = params_col.map(|initial| {
            let speeds = class
                .params_speed
                .as_ref()
                .expect("params_col implies speeds");
            let c_max = chosen.iter().map(|(_, r)| r.cores).max().unwrap_or(1);
            let pool: Vec<usize> = (0..axes.params.len())
                .filter(|&c| axes.params[c].mappers_per_node >= c_max)
                .collect();
            let pool = if pool.is_empty() {
                (0..axes.params.len()).collect()
            } else {
                pool
            };
            pool.into_iter()
                .max_by(|&a, &b| desirability(speeds[a]).total_cmp(&desirability(speeds[b])))
                .unwrap_or(initial)
        });

        // Trim: shrink every node (weakest-quality last, so the best
        // servers keep their capacity) to the smallest configuration that
        // still meets the target ("allocate the least amount of resources
        // needed", §3.3).
        let goal = est.predicted_goal(&planned, params_col);
        if meets_target(class.kind, goal, target) {
            for idx in (0..planned.len()).rev() {
                self.trim_node(
                    axes,
                    &est,
                    params_col,
                    target,
                    class.kind,
                    idx,
                    &mut planned,
                    &mut chosen,
                );
            }
        }

        let predicted_goal = est.predicted_goal(&planned, params_col);
        let hourly_cost = chosen
            .iter()
            .map(|&(server, res)| {
                let cand = candidates
                    .iter()
                    .find(|c| c.server == server)
                    .expect("chosen servers come from the candidate set");
                slice_cost(cand, res)
            })
            .sum();
        Some(AllocationPlan {
            nodes: chosen,
            params_col,
            predicted_goal,
            meets: meets_target(class.kind, predicted_goal, target),
            hourly_cost,
        })
    }

    /// Plans a batch of same-class targets against one shared candidate
    /// pool, debiting each committed plan's slices from the pool before
    /// planning the next target.
    ///
    /// This is the admission fast path for sharded cells: a drained batch
    /// of arrivals is planned in one sweep against a single snapshot of
    /// the cell's servers instead of re-snapshotting the world per job.
    /// Planning is sequential in batch order, so earlier jobs get first
    /// pick of capacity and the output is deterministic for a given
    /// batch. A `None` entry means the pool had no room left for that
    /// job — the caller re-queues it for a later round.
    pub fn plan_batch(
        &self,
        axes: &Axes,
        class: &Classification,
        targets: &[QosTarget],
        candidates: &[CandidateServer],
    ) -> Vec<Option<AllocationPlan>> {
        let mut pool: Vec<CandidateServer> = candidates.to_vec();
        targets
            .iter()
            .map(|target| {
                let plan = self.plan(axes, class, target, &pool);
                if let Some(plan) = &plan {
                    for &(server, res) in &plan.nodes {
                        let slot = pool
                            .iter_mut()
                            .find(|c| c.server == server)
                            .expect("plans only place on pool servers");
                        slot.free_cores = slot.free_cores.saturating_sub(res.cores);
                        slot.free_memory_gb = (slot.free_memory_gb - res.memory_gb).max(0.0);
                    }
                }
                plan
            })
            .collect()
    }

    /// The scale-up column with the highest estimated speed that fits the
    /// candidate's free resources.
    fn best_fitting_col(
        &self,
        axes: &Axes,
        est: &Estimator<'_>,
        candidate: &CandidateServer,
    ) -> Option<usize> {
        (0..axes.scale_up.len())
            .filter(|&c| {
                let r = axes.scale_up[c];
                r.cores <= candidate.free_cores && r.memory_gb <= candidate.free_memory_gb
            })
            .max_by(|&a, &b| {
                desirability(est.scale_up_factor(a))
                    .total_cmp(&desirability(est.scale_up_factor(b)))
                    // Prefer the smaller footprint on ties.
                    .then_with(|| {
                        (axes.scale_up[b].cores, axes.scale_up[b].memory_gb as u64)
                            .cmp(&(axes.scale_up[a].cores, axes.scale_up[a].memory_gb as u64))
                    })
            })
    }

    /// Shrinks one node's configuration while the plan still meets the
    /// target.
    #[allow(clippy::too_many_arguments)]
    fn trim_node(
        &self,
        axes: &Axes,
        est: &Estimator<'_>,
        params_col: Option<usize>,
        target: &QosTarget,
        kind: GoalKind,
        last: usize,
        planned: &mut [PlannedNode],
        chosen: &mut [(usize, NodeResources)],
    ) {
        let current = planned[last].scale_up_col;
        // Candidate smaller columns, ordered by ascending footprint.
        let mut smaller: Vec<usize> = (0..axes.scale_up.len())
            .filter(|&c| {
                let r = axes.scale_up[c];
                let cur = axes.scale_up[current];
                r.cores <= cur.cores && r.memory_gb <= cur.memory_gb && c != current
            })
            .collect();
        smaller.sort_by(|&a, &b| {
            let (ra, rb) = (axes.scale_up[a], axes.scale_up[b]);
            (ra.cores, ra.memory_gb as u64).cmp(&(rb.cores, rb.memory_gb as u64))
        });
        for c in smaller {
            let saved = planned[last].scale_up_col;
            planned[last].scale_up_col = c;
            let goal = est.predicted_goal(planned, params_col);
            if meets_target(kind, goal, target) {
                chosen[last].1 = axes.scale_up[c];
                return;
            }
            planned[last].scale_up_col = saved;
        }
    }
}

/// Pro-rata hourly cost of holding `res` on a candidate server: the
/// dominant share of cores or memory times the server's price.
fn slice_cost(candidate: &CandidateServer, res: NodeResources) -> f64 {
    let total_cores = (candidate.free_cores.max(res.cores)) as f64;
    let total_mem = candidate.free_memory_gb.max(res.memory_gb);
    let share = (res.cores as f64 / total_cores.max(1.0))
        .max(res.memory_gb / total_mem.max(1e-9))
        .min(1.0);
    candidate.hourly_price * share
}

/// Whether a predicted goal value satisfies a target with margin.
fn meets_target(kind: GoalKind, predicted: f64, target: &QosTarget) -> bool {
    match (kind, target) {
        (GoalKind::Time, QosTarget::CompletionTime { seconds }) => {
            predicted <= seconds * (1.0 - TARGET_MARGIN)
        }
        (GoalKind::Qps, QosTarget::Throughput { qps, .. }) => {
            predicted >= qps * (1.0 + TARGET_MARGIN)
        }
        (GoalKind::Rate, QosTarget::Ips { ips }) => predicted >= ips * (1.0 + TARGET_MARGIN),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_workloads::PlatformCatalog;

    fn axes() -> Axes {
        Axes::for_catalog(&PlatformCatalog::local())
    }

    /// A classification where speed is proportional to cores on every
    /// platform, platform 9 (J) is twice as fast as the rest, and
    /// scale-out is linear.
    fn class(axes: &Axes, kind: GoalKind) -> Classification {
        Classification {
            kind,
            scale_up_speed: axes
                .scale_up
                .iter()
                .map(|r| r.cores as f64 * (1.0 + r.memory_gb / 100.0))
                .collect(),
            scale_out_speed: Some(axes.scale_out.iter().map(|&n| n as f64).collect()),
            hetero_speed: (0..axes.platforms.len())
                .map(|i| {
                    if i == axes.ref_platform_index() {
                        2.0
                    } else {
                        1.0
                    }
                })
                .collect(),
            params_speed: None,
            tolerated: PressureVector::uniform(60.0),
            caused: PressureVector::uniform(15.0),
            runtime_calibration: 1.0,
        }
    }

    fn candidate(server: usize, platform_index: usize, cores: u32, mem: f64) -> CandidateServer {
        CandidateServer {
            server,
            platform_index,
            free_cores: cores,
            free_memory_gb: mem,
            pressure: PressureVector::zero(),
            victim_factor: 1.0,
            hourly_price: 1.0,
        }
    }

    #[test]
    fn prefers_the_fast_quiet_server() {
        let axes = axes();
        let class = class(&axes, GoalKind::Qps);
        let scheduler = GreedyScheduler::new(4);
        let ref_idx = axes.ref_platform_index();
        let other = (ref_idx + 1) % axes.platforms.len();
        let candidates = vec![
            candidate(0, other, 24, 48.0),
            candidate(1, ref_idx, 24, 48.0),
        ];
        // Small target: one node suffices.
        let anchor_speed = class.scale_up_speed[axes.anchor_config];
        let target = QosTarget::throughput(anchor_speed * 0.5, 1000.0);
        let plan = scheduler.plan(&axes, &class, &target, &candidates).unwrap();
        assert!(plan.meets);
        assert_eq!(plan.nodes[0].0, 1, "must pick the reference platform");
    }

    #[test]
    fn scales_out_when_one_node_is_not_enough() {
        let axes = axes();
        let class = class(&axes, GoalKind::Qps);
        let scheduler = GreedyScheduler::new(8);
        let ref_idx = axes.ref_platform_index();
        let candidates: Vec<_> = (0..8).map(|i| candidate(i, ref_idx, 24, 48.0)).collect();
        // Max single-node speed = 24 cores × factor × hetero(2) — ask for
        // roughly 3 nodes worth.
        let one_node_speed = 2.0 * 24.0 * (1.0 + 48.0 / 100.0);
        let target = QosTarget::throughput(one_node_speed * 2.5, 1000.0);
        let plan = scheduler.plan(&axes, &class, &target, &candidates).unwrap();
        assert!(plan.meets, "predicted {}", plan.predicted_goal);
        assert!(
            plan.nodes.len() >= 3,
            "needs at least 3 nodes, got {}",
            plan.nodes.len()
        );
    }

    #[test]
    fn trims_to_least_sufficient_allocation() {
        let axes = axes();
        let class = class(&axes, GoalKind::Qps);
        let scheduler = GreedyScheduler::new(4);
        let ref_idx = axes.ref_platform_index();
        let candidates = vec![candidate(0, ref_idx, 24, 48.0)];
        // Tiny target: smallest config should be chosen after trimming.
        let target = QosTarget::throughput(0.5, 1000.0);
        let plan = scheduler.plan(&axes, &class, &target, &candidates).unwrap();
        assert!(plan.meets);
        assert_eq!(plan.nodes.len(), 1);
        let res = plan.nodes[0].1;
        assert!(
            res.cores <= 2,
            "tiny target must get a tiny slice, got {} cores",
            res.cores
        );
    }

    #[test]
    fn victim_factor_deranks_harmful_colocations() {
        let axes = axes();
        let class = class(&axes, GoalKind::Qps);
        let scheduler = GreedyScheduler::new(2);
        let ref_idx = axes.ref_platform_index();
        let mut bad = candidate(0, ref_idx, 24, 48.0);
        bad.victim_factor = 0.1;
        let good = candidate(1, ref_idx, 24, 48.0);
        let target = QosTarget::throughput(1.0, 1000.0);
        let plan = scheduler
            .plan(&axes, &class, &target, &[bad, good])
            .unwrap();
        assert_eq!(plan.nodes[0].0, 1, "victimizing server must rank last");
    }

    #[test]
    fn single_node_workloads_never_scale_out() {
        let axes = axes();
        let mut class = class(&axes, GoalKind::Rate);
        class.scale_out_speed = None;
        let scheduler = GreedyScheduler::new(8);
        let ref_idx = axes.ref_platform_index();
        let candidates: Vec<_> = (0..4).map(|i| candidate(i, ref_idx, 24, 48.0)).collect();
        // Impossible target: still at most one node.
        let target = QosTarget::ips(1e12);
        let plan = scheduler.plan(&axes, &class, &target, &candidates).unwrap();
        assert_eq!(plan.nodes.len(), 1);
        assert!(!plan.meets);
    }

    #[test]
    fn budget_caps_the_spend() {
        let axes = axes();
        let class = class(&axes, GoalKind::Qps);
        let scheduler = GreedyScheduler::new(8);
        let ref_idx = axes.ref_platform_index();
        let candidates: Vec<_> = (0..8).map(|i| candidate(i, ref_idx, 24, 48.0)).collect();
        // A target needing several nodes, but a budget for ~1.5 of them.
        let one_node_speed = 2.0 * 24.0 * (1.0 + 48.0 / 100.0);
        let target = QosTarget::throughput(one_node_speed * 4.0, 1000.0);
        let unlimited = scheduler.plan(&axes, &class, &target, &candidates).unwrap();
        assert!(unlimited.nodes.len() >= 4);
        assert!(unlimited.hourly_cost > 1.5);
        let capped = scheduler
            .plan_with_budget(&axes, &class, &target, &candidates, Some(1.5))
            .unwrap();
        assert!(
            capped.hourly_cost <= 1.5 + 1e-9,
            "cost {:.2} must respect the budget",
            capped.hourly_cost
        );
        assert!(!capped.meets, "the budget prevents meeting the target");
        assert!(capped.nodes.len() < unlimited.nodes.len());
    }

    #[test]
    fn plans_report_their_cost() {
        let axes = axes();
        let class = class(&axes, GoalKind::Qps);
        let scheduler = GreedyScheduler::new(2);
        let ref_idx = axes.ref_platform_index();
        let candidates = vec![candidate(0, ref_idx, 24, 48.0)];
        let target = QosTarget::throughput(1.0, 1000.0);
        let plan = scheduler.plan(&axes, &class, &target, &candidates).unwrap();
        assert!(plan.hourly_cost > 0.0 && plan.hourly_cost <= 1.0 + 1e-9);
    }

    #[test]
    fn no_capacity_returns_none() {
        let axes = axes();
        let class = class(&axes, GoalKind::Qps);
        let scheduler = GreedyScheduler::new(2);
        let candidates = vec![candidate(0, 0, 0, 0.5)];
        let target = QosTarget::throughput(1.0, 1000.0);
        assert!(scheduler
            .plan(&axes, &class, &target, &candidates)
            .is_none());
    }

    #[test]
    fn unmeetable_target_returns_best_effort_plan() {
        let axes = axes();
        let class = class(&axes, GoalKind::Time);
        let scheduler = GreedyScheduler::new(2);
        let ref_idx = axes.ref_platform_index();
        let candidates = vec![candidate(0, ref_idx, 4, 8.0)];
        let target = QosTarget::completion(1e-9);
        let plan = scheduler.plan(&axes, &class, &target, &candidates).unwrap();
        assert!(!plan.meets);
        assert_eq!(plan.nodes.len(), 1);
    }

    #[test]
    fn plan_batch_debits_capacity_and_spills_to_the_next_server() {
        let axes = axes();
        let class = class(&axes, GoalKind::Rate);
        let scheduler = GreedyScheduler::new(1);
        let ref_idx = axes.ref_platform_index();
        // Two servers; each fits a couple of modest slices.
        let candidates = vec![
            candidate(0, ref_idx, 8, 16.0),
            candidate(1, ref_idx, 8, 16.0),
        ];
        // A target sized to want most of one server per job.
        let anchor_speed = class.scale_up_speed[axes.anchor_config];
        let targets = vec![QosTarget::ips(anchor_speed * 1.5); 6];
        let plans = scheduler.plan_batch(&axes, &class, &targets, &candidates);
        assert_eq!(plans.len(), targets.len());
        let placed: Vec<&AllocationPlan> = plans.iter().flatten().collect();
        assert!(
            placed.len() >= 2,
            "both servers must admit at least one job, placed {}",
            placed.len()
        );
        assert!(
            plans.iter().any(Option::is_none),
            "the batch must exhaust the two-server pool"
        );
        // Committed slices never exceed each server's free capacity.
        for server in [0usize, 1] {
            let used: u32 = placed
                .iter()
                .flat_map(|p| p.nodes.iter())
                .filter(|(s, _)| *s == server)
                .map(|(_, r)| r.cores)
                .sum();
            assert!(used <= 8, "server {server} oversubscribed: {used} cores");
        }
        // Both servers see load: the first job's slices debit server 0's
        // pool entry, pushing a later job onto server 1.
        let servers_used: std::collections::BTreeSet<usize> = placed
            .iter()
            .flat_map(|p| p.nodes.iter().map(|(s, _)| *s))
            .collect();
        assert_eq!(servers_used.len(), 2, "spill must reach the second server");
    }

    #[test]
    fn non_finite_estimates_never_rank_first() {
        // A corrupted CF estimate (NaN or infinite speed on one platform)
        // must neither panic the scheduler nor make that platform look
        // infinitely attractive.
        let axes = axes();
        let scheduler = GreedyScheduler::new(4);
        let ref_idx = axes.ref_platform_index();
        let poisoned_idx = (ref_idx + 1) % axes.platforms.len();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut class = class(&axes, GoalKind::Qps);
            class.hetero_speed[poisoned_idx] = bad;
            let candidates = vec![
                candidate(0, poisoned_idx, 24, 48.0),
                candidate(1, ref_idx, 24, 48.0),
            ];
            let anchor_speed = class.scale_up_speed[axes.anchor_config];
            let target = QosTarget::throughput(anchor_speed * 0.5, 1000.0);
            let plan = scheduler.plan(&axes, &class, &target, &candidates).unwrap();
            assert!(
                plan.nodes.iter().all(|(server, _)| *server == 1),
                "poisoned platform must never be selected ({bad})"
            );
            assert!(plan.predicted_goal.is_finite());
        }
    }
}
