//! The four classification axes (plus framework parameters).
//!
//! Quasar decomposes the allocation/assignment space into four independent
//! classifications (paper §3.2): scale-up, scale-out, heterogeneity, and
//! interference. Each axis defines the *columns* of one sparse matrix; the
//! rows are workloads. This module fixes those column spaces for a given
//! platform catalog so the profiler, offline history, classifier, and
//! estimator all agree on them.

use quasar_interference::SharedResource;
use quasar_workloads::{FrameworkParams, NodeResources, PlatformCatalog, PlatformId, QosTarget};

/// The unit family of a workload's performance goal, which selects the
/// history pool it is classified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GoalKind {
    /// Batch completion time (lower is better); internally converted to
    /// speed = 1/time.
    Time,
    /// Service throughput at the latency bound (higher is better).
    Qps,
    /// Single-node instruction rate (higher is better).
    Rate,
}

impl GoalKind {
    /// The goal kind of a QoS target.
    pub fn of(target: &QosTarget) -> GoalKind {
        match target {
            QosTarget::CompletionTime { .. } => GoalKind::Time,
            QosTarget::Throughput { .. } => GoalKind::Qps,
            QosTarget::Ips { .. } => GoalKind::Rate,
        }
    }

    /// All goal kinds.
    pub const ALL: [GoalKind; 3] = [GoalKind::Time, GoalKind::Qps, GoalKind::Rate];

    /// Converts a measured goal value into "speed" (higher is better).
    pub fn to_speed(self, value: f64) -> f64 {
        match self {
            GoalKind::Time => {
                if value > 0.0 {
                    1.0 / value
                } else {
                    0.0
                }
            }
            GoalKind::Qps | GoalKind::Rate => value,
        }
    }

    /// Converts a speed back into a goal value.
    pub fn from_speed(self, speed: f64) -> f64 {
        // Speed and goal value are mutual inverses for Time and identical
        // otherwise, so the mapping is an involution.
        self.to_speed(speed)
    }
}

/// The shared column spaces of all classifications for one catalog.
///
/// # Examples
///
/// ```
/// use quasar_core::Axes;
/// use quasar_workloads::PlatformCatalog;
///
/// let axes = Axes::for_catalog(&PlatformCatalog::local());
/// assert!(axes.scale_up.len() > 10);
/// assert_eq!(axes.platforms.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Axes {
    /// Scale-up configurations (cores × memory grid) on the reference
    /// (highest-end) platform.
    pub scale_up: Vec<NodeResources>,
    /// Index into `scale_up` of the anchor configuration shared with the
    /// heterogeneity and scale-out classifications.
    pub anchor_config: usize,
    /// Node counts for scale-out classification.
    pub scale_out: Vec<usize>,
    /// Per-node configuration used for scale-out profiling (a mid-size
    /// slice on the reference platform; the estimator only uses speed
    /// *ratios* along this axis, so the absolute slice size cancels).
    pub scale_out_probe: NodeResources,
    /// All platforms (columns of the heterogeneity classification).
    pub platforms: Vec<PlatformId>,
    /// The reference platform (highest-end; scale-up profiling runs here).
    pub ref_platform: PlatformId,
    /// The full resources of the reference platform; framework-parameter
    /// profiling runs at this size so mapper counts are not capped by a
    /// tiny sandbox.
    pub ref_full: NodeResources,
    /// Framework-parameter configurations for analytics workloads.
    pub params: Vec<FrameworkParams>,
    /// Index into `params` of the stock configuration.
    pub default_params: usize,
    /// The interference sources, in column order.
    pub resources: [SharedResource; quasar_interference::RESOURCE_COUNT],
}

impl Axes {
    /// Builds the axes for a catalog.
    ///
    /// The anchor configuration is the largest configuration that fits on
    /// *every* platform, so heterogeneity columns are comparable.
    pub fn for_catalog(catalog: &PlatformCatalog) -> Axes {
        let reference = catalog.highest_end();
        let min_cores = catalog.iter().map(|p| p.cores).min().expect("non-empty");
        let min_mem = catalog
            .iter()
            .map(|p| p.memory_gb)
            .fold(f64::INFINITY, f64::min);

        let core_steps: Vec<u32> = [1u32, 2, 4, 6, 8, 12, 16, 20, 24]
            .into_iter()
            .filter(|&c| c <= reference.cores)
            .collect();
        let mem_steps: Vec<f64> = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0]
            .into_iter()
            .filter(|&m| m <= reference.memory_gb)
            .collect();

        let anchor_cores = *core_steps
            .iter()
            .filter(|&&c| c <= min_cores)
            .max()
            .expect("1 core always fits");
        let anchor_mem = mem_steps
            .iter()
            .copied()
            .filter(|&m| m <= min_mem)
            .fold(1.0_f64, f64::max);

        let mut scale_up = Vec::new();
        let mut anchor_config = 0;
        for &c in &core_steps {
            for &m in &mem_steps {
                if c == anchor_cores && m == anchor_mem {
                    anchor_config = scale_up.len();
                }
                scale_up.push(NodeResources::new(c, m));
            }
        }

        let params = FrameworkParams::search_space();
        let default_params = params
            .iter()
            .position(|p| *p == FrameworkParams::hadoop_default())
            .expect("stock config is in the search space");

        Axes {
            scale_up,
            anchor_config,
            scale_out: vec![1, 2, 3, 4, 6, 8, 12, 16, 24, 32],
            scale_out_probe: NodeResources::new(
                8.min(reference.cores),
                12.0_f64.min(reference.memory_gb),
            ),
            platforms: catalog.iter().map(|p| p.id).collect(),
            ref_platform: reference.id,
            ref_full: NodeResources::all_of(reference),
            params,
            default_params,
            resources: SharedResource::ALL,
        }
    }

    /// The anchor configuration itself.
    pub fn anchor(&self) -> NodeResources {
        self.scale_up[self.anchor_config]
    }

    /// The index of the reference platform within `platforms`.
    pub fn ref_platform_index(&self) -> usize {
        self.platforms
            .iter()
            .position(|&p| p == self.ref_platform)
            .expect("reference platform is in the axis")
    }

    /// The scale-up column whose configuration is closest to `res`
    /// (Euclidean in normalized cores/memory), used to quantize arbitrary
    /// allocations onto the axis.
    pub fn nearest_scale_up(&self, res: NodeResources) -> usize {
        let max_cores = self
            .scale_up
            .iter()
            .map(|r| r.cores)
            .max()
            .expect("axis non-empty") as f64;
        let max_mem = self
            .scale_up
            .iter()
            .map(|r| r.memory_gb)
            .fold(0.0, f64::max);
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, cand) in self.scale_up.iter().enumerate() {
            let dc = (cand.cores as f64 - res.cores as f64) / max_cores;
            let dm = (cand.memory_gb - res.memory_gb) / max_mem;
            let d = dc * dc + dm * dm;
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// The scale-out column index for a node count (nearest column).
    pub fn nearest_scale_out(&self, nodes: usize) -> usize {
        self.scale_out
            .iter()
            .enumerate()
            .min_by_key(|(_, &n)| n.abs_diff(nodes))
            .map(|(i, _)| i)
            .expect("axis non-empty")
    }

    /// The scale-out column holding exactly `nodes`, or `None` when this
    /// axis configuration does not include that count.
    pub fn scale_out_position(&self, nodes: usize) -> Option<usize> {
        self.scale_out.iter().position(|&n| n == nodes)
    }

    /// The scale-out column for `nodes`, falling back to the nearest
    /// column when the exact count is absent from the axis.
    ///
    /// Custom axis configurations (a coarser grid, a cluster capped below
    /// some node count) are legal; code that only needs a representative
    /// column must degrade to the nearest one instead of panicking.
    pub fn scale_out_or_nearest(&self, nodes: usize) -> usize {
        self.scale_out_position(nodes)
            .unwrap_or_else(|| self.nearest_scale_out(nodes))
    }

    /// The heterogeneity column index for a platform.
    ///
    /// # Panics
    ///
    /// Panics if the platform is not in the axis.
    pub fn platform_index(&self, platform: PlatformId) -> usize {
        self.platforms
            .iter()
            .position(|&p| p == platform)
            .expect("platform is in the axis")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_kind_maps_targets() {
        assert_eq!(GoalKind::of(&QosTarget::completion(10.0)), GoalKind::Time);
        assert_eq!(
            GoalKind::of(&QosTarget::throughput(1.0, 1.0)),
            GoalKind::Qps
        );
        assert_eq!(GoalKind::of(&QosTarget::ips(1.0)), GoalKind::Rate);
    }

    #[test]
    fn speed_conversion_round_trips() {
        for kind in GoalKind::ALL {
            let v = 123.0;
            assert!((kind.from_speed(kind.to_speed(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn anchor_fits_every_platform() {
        for catalog in [PlatformCatalog::local(), PlatformCatalog::ec2()] {
            let axes = Axes::for_catalog(&catalog);
            let anchor = axes.anchor();
            for p in catalog.iter() {
                assert!(anchor.cores <= p.cores, "{}: anchor cores", p.name);
                assert!(anchor.memory_gb <= p.memory_gb, "{}: anchor mem", p.name);
            }
        }
    }

    #[test]
    fn anchor_is_a_scale_up_column() {
        let axes = Axes::for_catalog(&PlatformCatalog::local());
        assert_eq!(axes.scale_up[axes.anchor_config], axes.anchor());
    }

    #[test]
    fn nearest_scale_up_finds_exact_columns() {
        let axes = Axes::for_catalog(&PlatformCatalog::local());
        for (i, res) in axes.scale_up.iter().enumerate() {
            assert_eq!(axes.nearest_scale_up(*res), i);
        }
    }

    #[test]
    fn nearest_scale_out_rounds() {
        let axes = Axes::for_catalog(&PlatformCatalog::local());
        assert_eq!(axes.scale_out[axes.nearest_scale_out(1)], 1);
        assert_eq!(axes.scale_out[axes.nearest_scale_out(5)], 4);
        assert_eq!(axes.scale_out[axes.nearest_scale_out(1000)], 32);
    }

    #[test]
    fn scale_out_lookup_degrades_gracefully_on_custom_axes() {
        let mut axes = Axes::for_catalog(&PlatformCatalog::local());
        assert_eq!(axes.scale_out_position(1), Some(0));
        assert_eq!(axes.scale_out_or_nearest(1), 0);
        // A custom axis set that omits both the 1-node and 8-node counts
        // must fall back to the nearest column, not panic.
        axes.scale_out = vec![2, 6, 12];
        assert_eq!(axes.scale_out_position(1), None);
        assert_eq!(axes.scale_out_position(8), None);
        assert_eq!(axes.scale_out_or_nearest(1), 0); // 2 is nearest to 1
        assert_eq!(axes.scale_out_or_nearest(8), 1); // 6 beats 12 for 8
    }

    #[test]
    fn ref_platform_is_highest_end() {
        let catalog = PlatformCatalog::local();
        let axes = Axes::for_catalog(&catalog);
        assert_eq!(axes.ref_platform, catalog.highest_end().id);
        assert_eq!(axes.platforms[axes.ref_platform_index()], axes.ref_platform);
    }
}
