//! Online profiling of incoming workloads.
//!
//! Upon admission, Quasar profiles the incoming workload (with its actual
//! dataset) briefly in sandboxes — a couple of scale-up allocations, one
//! scale-out point, one other platform, and two interference
//! microbenchmark ramps — producing the sparse rows that classification
//! completes (paper §3.2, §3.4).

use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};

use quasar_cluster::{ProfileConfig, World};
use quasar_workloads::WorkloadId;

use crate::axes::{Axes, GoalKind};

/// The sparse profiling signal for one workload: `(column, goal value)`
/// pairs per axis, plus the wall-clock cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilingData {
    /// Goal kind of the workload.
    pub kind: GoalKind,
    /// Observed scale-up entries (column, goal value).
    pub scale_up: Vec<(usize, f64)>,
    /// Observed scale-out entries (column, goal value); empty for
    /// single-node workloads.
    pub scale_out: Vec<(usize, f64)>,
    /// Observed heterogeneity entries (column, goal value).
    pub hetero: Vec<(usize, f64)>,
    /// Observed framework-parameter entries (column, goal value).
    pub params: Vec<(usize, f64)>,
    /// Observed tolerated-pressure points (column, pressure).
    pub tolerated: Vec<(usize, f64)>,
    /// Observed caused-pressure points (column, pressure).
    pub caused: Vec<(usize, f64)>,
    /// Wall-clock seconds of profiling on the critical path: the four
    /// classifications profile in parallel sandboxes (§3.4), so this is
    /// the maximum over the groups plus workload setup.
    pub wall_seconds: f64,
    /// Total sandbox-seconds consumed (resource cost).
    pub total_seconds: f64,
}

/// Runs the online profiling campaign for incoming workloads.
#[derive(Debug)]
pub struct Profiler {
    entries_per_axis: usize,
    rng: StdRng,
}

impl Profiler {
    /// A profiler taking `entries_per_axis` measurements per
    /// classification row (the density knob of Fig. 3; the paper uses 2).
    ///
    /// # Panics
    ///
    /// Panics if `entries_per_axis` is zero.
    pub fn new(entries_per_axis: usize, seed: u64) -> Profiler {
        assert!(entries_per_axis >= 1, "need at least one profiling entry");
        Profiler {
            entries_per_axis,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Profiles workload `id` through the world's sandbox API.
    pub fn profile(&mut self, world: &mut World, axes: &Axes, id: WorkloadId) -> ProfilingData {
        let spec = world.spec(id);
        let class = spec.class;
        let kind = GoalKind::of(&spec.target);
        let distributed = class.is_distributed();
        let framework = class.has_framework_params();
        let d = self.entries_per_axis;

        let mut data = ProfilingData {
            kind,
            scale_up: Vec::new(),
            scale_out: Vec::new(),
            hetero: Vec::new(),
            params: Vec::new(),
            tolerated: Vec::new(),
            caused: Vec::new(),
            wall_seconds: 0.0,
            total_seconds: 0.0,
        };

        let mut group_seconds = [0.0_f64; 4];

        // Scale-up group: the anchor plus d-1 random other configurations
        // on the highest-end platform.
        let mut su_cols = vec![axes.anchor_config];
        su_cols.extend(self.pick_other(axes.scale_up.len(), axes.anchor_config, d - 1));
        for col in su_cols {
            let config = ProfileConfig::single(axes.ref_platform, axes.scale_up[col]);
            let r = world.profile_config(id, &config);
            data.scale_up.push((col, r.value));
            group_seconds[0] += r.seconds;
        }

        // Scale-out group: reuses the anchor run as the 1-node point and
        // adds runs at small node counts (profiling is capped at 4 nodes
        // online, §3.2).
        if distributed {
            // Nearest-column fallback keeps custom axis sets without a
            // literal 1-node count from panicking here.
            let one = axes.scale_out_or_nearest(1);
            let config = ProfileConfig::single(axes.ref_platform, axes.scale_out_probe);
            let r = world.profile_config(id, &config);
            data.scale_out.push((one, r.value));
            group_seconds[1] += r.seconds;
            let small: Vec<usize> = axes
                .scale_out
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 1 && n <= 4)
                .map(|(i, _)| i)
                .collect();
            for &col in small.choose_multiple(&mut self.rng, (d - 1).max(1)) {
                let config = ProfileConfig::single(axes.ref_platform, axes.scale_out_probe)
                    .with_nodes(axes.scale_out[col]);
                let r = world.profile_config(id, &config);
                data.scale_out.push((col, r.value));
                group_seconds[1] += r.seconds;
            }
        }

        // Heterogeneity group: reuses the anchor-config run on the
        // reference platform, adds d-1 random other platforms.
        {
            let ref_idx = axes.ref_platform_index();
            let config = ProfileConfig::single(axes.ref_platform, axes.anchor());
            let r = world.profile_config(id, &config);
            data.hetero.push((ref_idx, r.value));
            group_seconds[2] += r.seconds;
            for col in self.pick_other(axes.platforms.len(), ref_idx, d - 1) {
                let config = ProfileConfig::single(axes.platforms[col], axes.anchor());
                let r = world.profile_config(id, &config);
                data.hetero.push((col, r.value));
                group_seconds[2] += r.seconds;
            }
        }

        // Framework parameters (folded into the scale-up sandbox).
        if framework {
            let mut cols = vec![axes.default_params];
            cols.extend(self.pick_other(axes.params.len(), axes.default_params, d - 1));
            for col in cols {
                let config = ProfileConfig::single(axes.ref_platform, axes.ref_full)
                    .with_params(axes.params[col]);
                let r = world.profile_config(id, &config);
                data.params.push((col, r.value));
                group_seconds[0] += r.seconds;
            }
        }

        // Interference group: ramp microbenchmarks in d random resources
        // for tolerated and caused pressure (no extra profiling run — it
        // reuses the scale-up copy, §3.2).
        {
            let n = axes.resources.len();
            let mut cols: Vec<usize> = (0..n).collect();
            cols.shuffle(&mut self.rng);
            for &col in cols.iter().take(d) {
                let r = world.probe_sensitivity(id, axes.resources[col], 0.05);
                data.tolerated.push((col, r.value));
                group_seconds[3] += r.seconds;
            }
            for &col in cols.iter().rev().take(d) {
                let r = world.probe_caused(id, axes.resources[col]);
                data.caused.push((col, r.value));
                group_seconds[3] += r.seconds;
            }
        }

        data.total_seconds = group_seconds.iter().sum();
        data.wall_seconds =
            class.setup_seconds() + group_seconds.iter().copied().fold(0.0, f64::max);
        data
    }

    /// Picks `count` random indices out of `0..len`, excluding `exclude`.
    fn pick_other(&mut self, len: usize, exclude: usize, count: usize) -> Vec<usize> {
        let pool: Vec<usize> = (0..len).filter(|&i| i != exclude).collect();
        pool.choose_multiple(&mut self.rng, count.min(pool.len()))
            .copied()
            .collect()
    }

    /// Random source for callers that need profiler-coherent choices.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_cluster::{managers::NullManager, ClusterSpec, SimConfig, Simulation};
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{Dataset, LoadPattern, PlatformCatalog, Priority, WorkloadClass};

    fn sim_with(
        f: impl FnOnce(&mut Generator) -> quasar_workloads::Workload,
    ) -> (Simulation, WorkloadId) {
        let catalog = PlatformCatalog::local();
        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 1),
            Box::new(NullManager),
            SimConfig {
                noise: 0.0,
                ..SimConfig::default()
            },
        );
        let mut generator = Generator::new(catalog, 5);
        let w = f(&mut generator);
        let id = w.id();
        sim.submit_at(w, 0.0);
        sim.run_until(5.0);
        (sim, id)
    }

    #[test]
    fn hadoop_profile_covers_all_axes() {
        let (mut sim, id) = sim_with(|g| {
            g.analytics_job(
                WorkloadClass::Hadoop,
                "h",
                Dataset::new("d", 10.0, 1.0),
                2,
                600.0,
                Priority::Guaranteed,
            )
        });
        let axes = Axes::for_catalog(&PlatformCatalog::local());
        let mut profiler = Profiler::new(2, 1);
        let data = profiler.profile(sim.world_mut(), &axes, id);
        assert_eq!(data.kind, GoalKind::Time);
        assert_eq!(data.scale_up.len(), 2);
        assert_eq!(data.scale_out.len(), 2);
        assert_eq!(data.hetero.len(), 2);
        assert_eq!(data.params.len(), 2);
        assert_eq!(data.tolerated.len(), 2);
        assert_eq!(data.caused.len(), 2);
        assert!(data.wall_seconds > 0.0);
        assert!(data.total_seconds >= data.wall_seconds - WorkloadClass::Hadoop.setup_seconds());
    }

    #[test]
    fn single_node_profile_skips_scale_out_and_params() {
        let (mut sim, id) = sim_with(|g| g.single_node_job("b", 300.0, Priority::BestEffort));
        let axes = Axes::for_catalog(&PlatformCatalog::local());
        let mut profiler = Profiler::new(2, 2);
        let data = profiler.profile(sim.world_mut(), &axes, id);
        assert_eq!(data.kind, GoalKind::Rate);
        assert!(data.scale_out.is_empty());
        assert!(data.params.is_empty());
    }

    #[test]
    fn service_profile_reports_qps_values() {
        let (mut sim, id) = sim_with(|g| {
            g.service(
                WorkloadClass::Memcached,
                "mc",
                16.0,
                LoadPattern::Flat { qps: 50_000.0 },
                Priority::Guaranteed,
            )
        });
        let axes = Axes::for_catalog(&PlatformCatalog::local());
        let mut profiler = Profiler::new(3, 3);
        let data = profiler.profile(sim.world_mut(), &axes, id);
        assert_eq!(data.kind, GoalKind::Qps);
        assert_eq!(data.scale_up.len(), 3);
        for (_, v) in &data.scale_up {
            assert!(*v > 0.0, "knee QPS must be positive");
        }
    }

    #[test]
    fn profiled_columns_are_unique_per_axis() {
        let (mut sim, id) = sim_with(|g| {
            g.analytics_job(
                WorkloadClass::Spark,
                "sp",
                Dataset::new("d", 6.0, 1.0),
                2,
                400.0,
                Priority::Guaranteed,
            )
        });
        let axes = Axes::for_catalog(&PlatformCatalog::local());
        let mut profiler = Profiler::new(4, 9);
        let data = profiler.profile(sim.world_mut(), &axes, id);
        for entries in [&data.scale_up, &data.hetero, &data.tolerated] {
            let mut cols: Vec<usize> = entries.iter().map(|(c, _)| *c).collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), entries.len(), "columns must be unique");
        }
    }
}
