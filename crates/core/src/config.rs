//! Quasar manager configuration.

use crate::similarity::SimilarityConfig;

/// Tunables of the Quasar manager; defaults follow the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuasarConfig {
    /// Profiling entries per classification row (the input-matrix density
    /// knob of Fig. 3; the paper settles on 2).
    pub profiling_entries: usize,
    /// Offline-characterized training workloads per goal kind (the paper
    /// exhaustively profiles 20–30 workload types offline).
    pub training_workloads: usize,
    /// QoS slack: a workload within this fraction of its target counts as
    /// on track (the paper quotes ~5% deviations).
    pub qos_slack: f64,
    /// Consecutive off-track observations before adaptation kicks in.
    pub miss_threshold: u32,
    /// Seconds between adaptation scans.
    pub adapt_interval_s: f64,
    /// Seconds between proactive phase-detection sweeps (10 min in §4.1).
    pub proactive_interval_s: f64,
    /// Fraction of running workloads sampled per proactive sweep (20%).
    pub proactive_fraction: f64,
    /// Acceptable QoS loss when probing interference sensitivity (5%).
    pub probe_qos_loss: f64,
    /// Maximum nodes the greedy scheduler will allocate to one workload.
    pub max_nodes: usize,
    /// Cores given to a best-effort job slice.
    pub best_effort_cores: u32,
    /// Memory given to a best-effort job slice, in GB.
    pub best_effort_memory_gb: f64,
    /// Enable the resource-partitioning extension (§4.4): when a
    /// latency-critical workload is off track and the manager's estimated
    /// interference penalty on its servers is severe, enable hardware
    /// partitioning instead of (before) adding resources.
    pub resource_partitioning: bool,
    /// Enable the load-prediction extension (§4.1 future work): scale
    /// user-facing services when the *forecast* load outgrows the current
    /// provisioning point, before latency degrades.
    pub predictive_scaling: bool,
    /// How far ahead the predictor looks, in seconds.
    pub prediction_lead_s: f64,
    /// Seed for profiling-configuration randomization.
    pub seed: u64,
    /// Worker threads for the per-axis classification fan-out
    /// ([`crate::Classifier::with_threads`]). Classification is a pure
    /// function of its inputs, so any value produces bit-identical
    /// results; 1 (the default) keeps the serial path.
    pub threads: usize,
    /// The workload-similarity index ([`crate::similarity`]): when
    /// enabled, repeat arrivals skip or warm-start reconstruction.
    /// Disabled by default — the manager then behaves bit-identically
    /// to a build without the index.
    pub similarity: SimilarityConfig,
}

impl Default for QuasarConfig {
    fn default() -> QuasarConfig {
        QuasarConfig {
            profiling_entries: 2,
            training_workloads: 24,
            qos_slack: 0.05,
            miss_threshold: 2,
            adapt_interval_s: 30.0,
            proactive_interval_s: 600.0,
            proactive_fraction: 0.20,
            probe_qos_loss: 0.05,
            max_nodes: 32,
            best_effort_cores: 2,
            best_effort_memory_gb: 2.0,
            resource_partitioning: false,
            predictive_scaling: false,
            prediction_lead_s: 120.0,
            seed: 0x9A5A,
            threads: 1,
            similarity: SimilarityConfig::default(),
        }
    }
}

impl QuasarConfig {
    /// A configuration with smaller training pools and coarser intervals,
    /// for fast tests.
    pub fn fast_test() -> QuasarConfig {
        QuasarConfig {
            training_workloads: 8,
            adapt_interval_s: 15.0,
            ..QuasarConfig::default()
        }
    }

    /// The default configuration with the predictive-scaling extension
    /// enabled.
    pub fn predictive() -> QuasarConfig {
        QuasarConfig {
            predictive_scaling: true,
            ..QuasarConfig::default()
        }
    }

    /// Returns the configuration with out-of-range knobs clamped to safe
    /// values. Manager construction funnels every config through this.
    ///
    /// `proactive_fraction` multiplies a running-set length and goes
    /// through `ceil() as usize`, so a NaN or out-of-range value would
    /// produce a bogus sample count: NaN and negatives become 0.0 (no
    /// proactive sampling), anything above 1.0 becomes 1.0 (sample
    /// everything).
    pub fn validated(mut self) -> QuasarConfig {
        self.proactive_fraction = if self.proactive_fraction.is_nan() {
            0.0
        } else {
            self.proactive_fraction.clamp(0.0, 1.0)
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validated_clamps_proactive_fraction() {
        let with = |f: f64| {
            QuasarConfig {
                proactive_fraction: f,
                ..QuasarConfig::default()
            }
            .validated()
        };
        assert_eq!(with(f64::NAN).proactive_fraction, 0.0);
        assert_eq!(with(-0.3).proactive_fraction, 0.0);
        assert_eq!(with(7.5).proactive_fraction, 1.0);
        assert_eq!(with(0.2).proactive_fraction, 0.2);
        // Everything else passes through untouched.
        assert_eq!(with(0.2), QuasarConfig::default());
    }

    #[test]
    fn defaults_match_paper_constants() {
        let c = QuasarConfig::default();
        assert_eq!(c.profiling_entries, 2);
        assert_eq!(c.proactive_interval_s, 600.0);
        assert!((c.proactive_fraction - 0.2).abs() < 1e-12);
        assert!((c.probe_qos_loss - 0.05).abs() < 1e-12);
    }
}
