//! Deterministic parallel execution.
//!
//! A fixed-size worker pool built on [`std::thread::scope`] that fans
//! out independent items while guaranteeing **bit-identical output to
//! serial execution regardless of thread count**. Two ingredients make
//! this hold:
//!
//! 1. Results are assembled by *item index*, never by completion order.
//! 2. Any randomness an item needs comes from a private RNG stream
//!    seeded by [`derive_seed`]`(base_seed, item_index)` — a pure
//!    function of the item's position, not of which worker ran it or
//!    when.
//!
//! With those two rules, `--threads 1` and `--threads N` produce the
//! same bytes; parallelism only changes wall-clock time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if that cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives the seed for item `index` of a run with `base_seed`.
///
/// SplitMix64 finalizer over the pair, so per-item streams are
/// decorrelated even for adjacent indices and a zero base seed. This is
/// the *only* sanctioned way to give a parallel item randomness: the
/// seed depends on `(base_seed, index)` alone, so output cannot depend
/// on scheduling.
pub fn derive_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on up to `threads` workers, returning results
/// in item order.
///
/// `f` receives the item's index alongside the item. With `threads <= 1`
/// (or a single item) this degenerates to a plain serial loop — no
/// threads are spawned. Workers pull indices from a shared atomic
/// counter, so scheduling is dynamic, but because `f` sees only
/// `(index, item)` and results land in slot `index`, the output vector
/// is identical for every thread count.
///
/// Panics in `f` propagate to the caller (via [`std::thread::scope`]).
pub fn par_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let workers = threads.min(n);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let out = f(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

/// [`par_map`] for items that need a private RNG stream: `f` receives
/// `(index, seed, item)` where `seed = `[`derive_seed`]`(base_seed, index)`.
pub fn par_map_seeded<T, U, F>(threads: usize, base_seed: u64, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, u64, T) -> U + Sync,
{
    par_map(threads, items, |i, item| {
        f(i, derive_seed(base_seed, i as u64), item)
    })
}

/// Runs a fixed set of heterogeneous tasks on up to `threads` workers,
/// returning their outputs in task order. Used to fan out the per-axis
/// CF classifications, which are a handful of differently-shaped jobs
/// rather than a uniform item list.
pub fn par_invoke<'a, U>(threads: usize, tasks: Vec<Box<dyn FnOnce() -> U + Send + 'a>>) -> Vec<U>
where
    U: Send + 'a,
{
    par_map(threads, tasks, |_, task| task())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..97).collect();
        let f = |i: usize, x: u64| x.wrapping_mul(derive_seed(42, i as u64));
        let serial = par_map(1, items.clone(), f);
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(
                par_map(threads, items.clone(), f),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn seeded_streams_depend_only_on_index() {
        let a = par_map_seeded(1, 7, vec![(); 16], |_, seed, ()| seed);
        let b = par_map_seeded(5, 7, vec![(); 16], |_, seed, ()| seed);
        assert_eq!(a, b);
        // All 16 streams distinct.
        let set: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn derive_seed_decorrelates_adjacent_indices() {
        let s0 = derive_seed(0, 0);
        let s1 = derive_seed(0, 1);
        assert_ne!(s0, s1);
        assert!((s0 ^ s1).count_ones() > 8, "adjacent seeds too similar");
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, empty, |_, x: u32| x).is_empty());
        assert_eq!(par_map(4, vec![9], |i, x: u32| x + i as u32), vec![9]);
    }

    #[test]
    fn invoke_preserves_task_order() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| {
                Box::new(move || {
                    // Stagger so completion order differs from task order.
                    std::thread::sleep(std::time::Duration::from_micros(((20 - i) * 50) as u64));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        assert_eq!(par_invoke(4, tasks), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map(64, vec![1u32, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }
}
