//! Deterministic parallel execution.
//!
//! A lazily-started **persistent worker pool** that fans out independent
//! items while guaranteeing **bit-identical output to serial execution
//! regardless of thread count**. Two ingredients make this hold:
//!
//! 1. Results are assembled by *item index*, never by completion order.
//! 2. Any randomness an item needs comes from a private RNG stream
//!    seeded by [`derive_seed`]`(base_seed, item_index)` — a pure
//!    function of the item's position, not of which worker ran it or
//!    when.
//!
//! With those two rules, `--threads 1` and `--threads N` produce the
//! same bytes; parallelism only changes wall-clock time.
//!
//! Workers are spawned on first use, park on a condvar while idle, and
//! are reused across [`par_map`] calls, so many-small-item sweeps do not
//! pay thread-spawn latency on every fan-out (an earlier version built a
//! fresh [`std::thread::scope`] pool per call). The submitting thread
//! always participates in its own job, so a job makes progress even when
//! every pooled worker is busy elsewhere (including nested `par_map`
//! calls from inside a worker).

use std::sync::{Mutex, OnceLock};

use quasar_obs::registry::{Counter, Histogram, Registry};

/// Registry handles for the fan-out metrics. `jobs`/`items` count
/// logical work (deterministic across thread counts — they increment on
/// the serial path too); everything under `quasar.core.par.pool.` is
/// live scheduling telemetry and is excluded from deterministic
/// snapshots.
struct ParMetrics {
    jobs: Counter,
    items: Counter,
    job_items: Histogram,
}

fn par_metrics() -> &'static ParMetrics {
    static METRICS: OnceLock<ParMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        ParMetrics {
            jobs: reg.counter("quasar.core.par.jobs"),
            items: reg.counter("quasar.core.par.items"),
            job_items: reg.histogram(
                "quasar.core.par.job_items",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0],
            ),
        }
    })
}

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if that cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives the seed for item `index` of a run with `base_seed`.
///
/// SplitMix64 finalizer over the pair, so per-item streams are
/// decorrelated even for adjacent indices and a zero base seed. This is
/// the *only* sanctioned way to give a parallel item randomness: the
/// seed depends on `(base_seed, index)` alone, so output cannot depend
/// on scheduling.
pub fn derive_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `(workers currently alive, workers ever spawned)` in the persistent
/// pool. The two are equal today (workers never exit); tests use the
/// second to assert that consecutive [`par_map`] calls reuse the pool
/// instead of spawning fresh threads.
pub fn pool_status() -> (usize, u64) {
    pool::status()
}

/// Maps `f` over `items` on up to `threads` workers, returning results
/// in item order.
///
/// `f` receives the item's index alongside the item. With `threads <= 1`
/// (or a single item) this degenerates to a plain serial loop — no
/// threads are spawned or woken. Workers pull indices from a shared
/// atomic counter, so scheduling is dynamic, but because `f` sees only
/// `(index, item)` and results land in slot `index`, the output vector
/// is identical for every thread count.
///
/// Panics in `f` propagate to the caller: the first panicking item's
/// payload is resumed on the submitting thread after the job drains.
pub fn par_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    // Job accounting and the job span fire on *every* call — including
    // the serial path below — so trace output and the deterministic
    // metric view are identical for every thread count.
    let metrics = par_metrics();
    metrics.jobs.inc();
    metrics.items.add(n as u64);
    metrics.job_items.record(n as f64);
    let _job_span = quasar_obs::span!("core.par.job", "items={n}");
    if threads <= 1 || n <= 1 {
        let out = items
            .into_iter()
            .enumerate()
            .map(|(i, x)| {
                // Sim time is item-local state: start each item from the
                // same baseline the pooled path gives it.
                quasar_obs::set_sim_time(0.0);
                f(i, x)
            })
            .collect();
        // Leave the submitter at the same baseline regardless of which
        // item ran last (matches the pooled path below).
        quasar_obs::set_sim_time(0.0);
        return out;
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        let item = slots[i]
            .lock()
            .expect("item slot poisoned")
            .take()
            .expect("each index is claimed exactly once");
        // Reset per item so a span inside `f` sees a sim time derived
        // only from this item's own work, never from whatever item this
        // worker thread happened to run previously.
        quasar_obs::set_sim_time(0.0);
        let out = f(i, item);
        *results[i].lock().expect("result slot poisoned") = Some(out);
    };
    pool::run(threads, n, &task);
    quasar_obs::set_sim_time(0.0);
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

/// [`par_map`] over items the caller keeps: `f` receives `(index,
/// &mut item)` and the items stay in place, so long-lived stateful
/// workers (e.g. sharded manager cells that persist across admission
/// rounds) can be driven in parallel without moving them through a
/// `Vec` every round. Returns `f`'s outputs in item order.
///
/// The determinism contract is the same as [`par_map`]: results land by
/// item index, `threads <= 1` (or a single item) degenerates to a plain
/// serial loop, and sim time is reset per item and on return.
pub fn par_map_mut<T, U, F>(threads: usize, items: &mut [T], f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let n = items.len();
    let metrics = par_metrics();
    metrics.jobs.inc();
    metrics.items.add(n as u64);
    metrics.job_items.record(n as f64);
    let _job_span = quasar_obs::span!("core.par.job", "items={n}");
    if threads <= 1 || n <= 1 {
        let out = items
            .iter_mut()
            .enumerate()
            .map(|(i, x)| {
                quasar_obs::set_sim_time(0.0);
                f(i, x)
            })
            .collect();
        quasar_obs::set_sim_time(0.0);
        return out;
    }
    let slots: Vec<Mutex<Option<&mut T>>> = items.iter_mut().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        let item = slots[i]
            .lock()
            .expect("item slot poisoned")
            .take()
            .expect("each index is claimed exactly once");
        quasar_obs::set_sim_time(0.0);
        let out = f(i, item);
        *results[i].lock().expect("result slot poisoned") = Some(out);
    };
    pool::run(threads, n, &task);
    quasar_obs::set_sim_time(0.0);
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

/// [`par_map`] for items that need a private RNG stream: `f` receives
/// `(index, seed, item)` where `seed = `[`derive_seed`]`(base_seed, index)`.
pub fn par_map_seeded<T, U, F>(threads: usize, base_seed: u64, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, u64, T) -> U + Sync,
{
    par_map(threads, items, |i, item| {
        f(i, derive_seed(base_seed, i as u64), item)
    })
}

/// Runs a fixed set of heterogeneous tasks on up to `threads` workers,
/// returning their outputs in task order. Used to fan out the per-axis
/// CF classifications, which are a handful of differently-shaped jobs
/// rather than a uniform item list.
pub fn par_invoke<'a, U>(threads: usize, tasks: Vec<Box<dyn FnOnce() -> U + Send + 'a>>) -> Vec<U>
where
    U: Send + 'a,
{
    par_map(threads, tasks, |_, task| task())
}

/// The persistent pool behind [`par_map`].
///
/// Jobs are queued under one mutex; workers park on `job_ready` while
/// the queue has no claimable work and scan it again on wake. The
/// submitter enqueues its job, wakes workers, works through items
/// itself, then blocks on `job_done` until no worker still holds an item
/// of the job. Because the submitter only returns once the job is fully
/// quiescent, a task closure borrowing stack data can safely be handed
/// to pool threads that outlive the call — that protocol invariant is
/// what the two `unsafe` blocks below encode.
mod pool {
    use std::any::Any;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    use quasar_obs::registry::{Gauge, Histogram, Registry};

    /// Live pool telemetry (`quasar.core.par.pool.*`). These reflect
    /// actual scheduling — worker counts, queue pressure, per-job
    /// occupancy — so they are deliberately *not* part of the
    /// deterministic snapshot view.
    struct PoolMetrics {
        live: Gauge,
        spawned: Gauge,
        queue_depth_max: Gauge,
        job_workers: Histogram,
    }

    fn pool_metrics() -> &'static PoolMetrics {
        static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let reg = Registry::global();
            PoolMetrics {
                live: reg.gauge("quasar.core.par.pool.live"),
                spawned: reg.gauge("quasar.core.par.pool.spawned"),
                queue_depth_max: reg.gauge("quasar.core.par.pool.queue_depth_max"),
                job_workers: reg.histogram(
                    "quasar.core.par.pool.job_workers",
                    &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
                ),
            }
        })
    }

    /// Upper bound on pool size. Oversubscribing a little lets blocked
    /// submitters overlap with running workers, but an unbounded pool
    /// would grow with the largest `threads` argument ever seen.
    fn worker_cap() -> usize {
        super::available_threads().saturating_mul(2).clamp(4, 64)
    }

    /// Type-erased pointer to a caller-owned task closure.
    ///
    /// Pool workers outlive any one [`run`] call, so the task cannot be
    /// lent to them as a plain borrow; validity is a protocol invariant
    /// instead: `run` does not return until no worker can reach this
    /// pointer again (job dequeued and `active == 0`), and the pointee
    /// outlives `run`'s borrow of it.
    struct TaskPtr(*const (dyn Fn(usize) + Sync));

    // SAFETY: the pointee is `Sync` (callable from any thread through a
    // shared reference) and `run` keeps it alive for as long as any
    // worker can observe the pointer, per the protocol described above.
    #[allow(unsafe_code)]
    unsafe impl Send for TaskPtr {}
    #[allow(unsafe_code)]
    unsafe impl Sync for TaskPtr {}

    struct Job {
        task: TaskPtr,
        n: usize,
        /// Next unclaimed item index; claims past `n` mean "drained".
        next: AtomicUsize,
        /// Workers currently inside `run_items` for this job. Mutated
        /// only under the pool lock so `job_done` waits cannot miss the
        /// final decrement.
        active: AtomicUsize,
        /// Set on the first panic; stops further claims so the job
        /// drains quickly.
        abort: AtomicBool,
        panic: Mutex<Option<Box<dyn Any + Send>>>,
        /// Distinct threads that ran at least one stint on this job
        /// (pool workers + the submitter), for occupancy telemetry.
        participants: AtomicUsize,
    }

    impl Job {
        fn has_work(&self) -> bool {
            !self.abort.load(Ordering::Relaxed) && self.next.load(Ordering::Relaxed) < self.n
        }

        /// Claims and runs items until none remain or the job aborts.
        fn run_items(&self) {
            // SAFETY: this job is observable by the worker (it was found
            // on the queue, or is owned by the submitter), so per the
            // `TaskPtr` protocol the pointee is still alive.
            #[allow(unsafe_code)]
            let task = unsafe { &*self.task.0 };
            while !self.abort.load(Ordering::Relaxed) {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.n {
                    break;
                }
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                    self.abort.store(true, Ordering::Relaxed);
                    let mut slot = self.panic.lock().expect("panic slot poisoned");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
        }
    }

    #[derive(Default)]
    struct State {
        queue: VecDeque<Arc<Job>>,
        workers: usize,
    }

    struct Pool {
        state: Mutex<State>,
        /// Signalled when a job with claimable work is enqueued.
        job_ready: Condvar,
        /// Signalled when a worker finishes its involvement in a job.
        job_done: Condvar,
        spawned_total: AtomicU64,
    }

    fn pool() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State::default()),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            spawned_total: AtomicU64::new(0),
        })
    }

    pub(super) fn status() -> (usize, u64) {
        let p = pool();
        let workers = p.state.lock().expect("pool state poisoned").workers;
        (workers, p.spawned_total.load(Ordering::Relaxed))
    }

    fn worker_loop(pool: &'static Pool) {
        loop {
            let job: Arc<Job> = {
                let mut st = pool.state.lock().expect("pool state poisoned");
                loop {
                    if let Some(job) = st.queue.iter().find(|j| j.has_work()).cloned() {
                        job.active.fetch_add(1, Ordering::Relaxed);
                        job.participants.fetch_add(1, Ordering::Relaxed);
                        break job;
                    }
                    st = pool.job_ready.wait(st).expect("pool state poisoned");
                }
            };
            job.run_items();
            let _st = pool.state.lock().expect("pool state poisoned");
            job.active.fetch_sub(1, Ordering::Relaxed);
            pool.job_done.notify_all();
        }
    }

    /// Runs `task(0..n)` on up to `threads` workers (the submitting
    /// thread counts as one), blocking until every index has run. The
    /// first panic raised by an item is resumed here after the job
    /// drains.
    pub(super) fn run(threads: usize, n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // SAFETY: pure lifetime erasure between identically-laid-out fat
        // pointers (`*const dyn ... + 'a` → `... + 'static`); the
        // `TaskPtr` protocol keeps every dereference within `'a`.
        #[allow(unsafe_code)]
        let task = TaskPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(std::ptr::from_ref(task))
        });
        let job = Arc::new(Job {
            task,
            n,
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            panic: Mutex::new(None),
            // The submitter always works the job (below).
            participants: AtomicUsize::new(1),
        });
        let pool = pool();
        let metrics = pool_metrics();
        {
            let mut st = pool.state.lock().expect("pool state poisoned");
            st.queue.push_back(job.clone());
            metrics.queue_depth_max.set_max(st.queue.len() as u64);
            let want = threads.min(n).saturating_sub(1).min(worker_cap());
            while st.workers < want {
                std::thread::Builder::new()
                    .name(format!("quasar-par-{}", st.workers))
                    .spawn(move || worker_loop(pool))
                    .expect("failed to spawn pool worker");
                st.workers += 1;
                pool.spawned_total.fetch_add(1, Ordering::Relaxed);
            }
            metrics.live.set(st.workers as u64);
            metrics
                .spawned
                .set(pool.spawned_total.load(Ordering::Relaxed));
            pool.job_ready.notify_all();
        }
        // The submitter works its own job: progress is guaranteed even
        // with every pooled worker busy (or parked behind a nested call).
        job.run_items();
        {
            // Dequeue first so no further worker can pick the job up,
            // then wait for the ones already inside it.
            let mut st = pool.state.lock().expect("pool state poisoned");
            st.queue.retain(|j| !Arc::ptr_eq(j, &job));
            while job.active.load(Ordering::Relaxed) > 0 {
                st = pool.job_done.wait(st).expect("pool state poisoned");
            }
        }
        metrics
            .job_workers
            .record(job.participants.load(Ordering::Relaxed) as f64);
        let payload = job.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..97).collect();
        let f = |i: usize, x: u64| x.wrapping_mul(derive_seed(42, i as u64));
        let serial = par_map(1, items.clone(), f);
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(
                par_map(threads, items.clone(), f),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn seeded_streams_depend_only_on_index() {
        let a = par_map_seeded(1, 7, vec![(); 16], |_, seed, ()| seed);
        let b = par_map_seeded(5, 7, vec![(); 16], |_, seed, ()| seed);
        assert_eq!(a, b);
        // All 16 streams distinct.
        let set: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn derive_seed_decorrelates_adjacent_indices() {
        let s0 = derive_seed(0, 0);
        let s1 = derive_seed(0, 1);
        assert_ne!(s0, s1);
        assert!((s0 ^ s1).count_ones() > 8, "adjacent seeds too similar");
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, empty, |_, x: u32| x).is_empty());
        assert_eq!(par_map(4, vec![9], |i, x: u32| x + i as u32), vec![9]);
    }

    #[test]
    fn par_map_mut_updates_in_place_and_matches_serial() {
        let f = |i: usize, x: &mut u64| {
            *x = x.wrapping_mul(3).wrapping_add(i as u64);
            *x
        };
        let mut serial: Vec<u64> = (0..97).collect();
        let serial_out = par_map_mut(1, &mut serial, f);
        for threads in [2, 4, 8] {
            let mut items: Vec<u64> = (0..97).collect();
            let out = par_map_mut(threads, &mut items, f);
            assert_eq!(out, serial_out, "threads={threads}");
            assert_eq!(items, serial, "threads={threads}");
        }
        // Outputs are by item index and reflect the in-place update.
        assert_eq!(serial_out[5], serial[5]);
    }

    #[test]
    fn invoke_preserves_task_order() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| {
                Box::new(move || {
                    // Stagger so completion order differs from task order.
                    std::thread::sleep(std::time::Duration::from_micros(((20 - i) * 50) as u64));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        assert_eq!(par_invoke(4, tasks), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map(64, vec![1u32, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let result = std::panic::catch_unwind(|| {
            par_map(4, (0..32).collect::<Vec<u32>>(), |_, x| {
                if x == 13 {
                    panic!("boom at 13");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom at 13"), "unexpected payload: {msg}");
        // The pool must stay usable after a panicked job.
        assert_eq!(par_map(4, vec![1u32, 2], |_, x| x + 1), vec![2, 3]);
    }

    #[test]
    fn nested_par_map_completes() {
        let out = par_map(4, (0..8u64).collect::<Vec<_>>(), |_, x| {
            par_map(4, (0..8u64).collect::<Vec<_>>(), move |_, y| x * 10 + y)
                .into_iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = (0..8u64)
            .map(|x| (0..8).map(|y| x * 10 + y).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Saturate the pool to its hard cap so neither this test's later
        // calls nor concurrently-running tests can grow it further.
        let _ = par_map(64, (0..256u64).collect::<Vec<_>>(), |i, x| {
            x.wrapping_add(i as u64)
        });
        let (workers_before, spawned_before) = pool_status();
        assert!(
            workers_before >= 3,
            "cap saturation spawned {workers_before}"
        );
        for round in 0..8u64 {
            let out = par_map(64, (0..64u64).collect::<Vec<_>>(), move |i, x| {
                x * 2 + i as u64 + round
            });
            assert_eq!(out[3], 9 + round);
        }
        let (workers_after, spawned_after) = pool_status();
        assert_eq!(workers_before, workers_after);
        assert_eq!(
            spawned_before, spawned_after,
            "consecutive par_map calls must reuse pooled workers, not spawn new ones"
        );
    }
}
