//! The four parallel classifications (and the exhaustive alternative).
//!
//! Each classification appends the workload's sparse profiling row to the
//! dense offline history of its goal kind and reconstructs the missing
//! entries with SVD + PQ/SGD (paper §3.2). Speed axes are reconstructed in
//! log space; interference axes in linear pressure space.

use std::sync::OnceLock;

use quasar_cf::{DenseMatrix, PqModel, Reconstructor};
use quasar_interference::PressureVector;
use quasar_obs::registry::{Counter, Histogram, Registry};
use quasar_obs::span::timed;

use crate::axes::{Axes, GoalKind};
use crate::history::{ln_speed, HistorySet, KindHistory};
use crate::profile::ProfilingData;

/// Registry handles for the classification metrics
/// (`quasar.core.classify.*`).
struct ClassifyMetrics {
    classifications: Counter,
    axis_us: Histogram,
    decision_us: Histogram,
    exhaustive_us: Histogram,
}

fn classify_metrics() -> &'static ClassifyMetrics {
    static METRICS: OnceLock<ClassifyMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        ClassifyMetrics {
            classifications: reg.counter("quasar.core.classify.classifications"),
            axis_us: reg.histogram_us("quasar.core.classify.axis_us"),
            decision_us: reg.histogram_us("quasar.core.classify.decision_us"),
            exhaustive_us: reg.histogram_us("quasar.core.classify.exhaustive_us"),
        }
    })
}

/// The dense output of classification: estimated performance across every
/// axis column, in linear *speed* units (higher is better), plus estimated
/// interference vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Goal kind the estimates are expressed in.
    pub kind: GoalKind,
    /// Estimated speed per scale-up column.
    pub scale_up_speed: Vec<f64>,
    /// Estimated speed per scale-out column (None for single-node).
    pub scale_out_speed: Option<Vec<f64>>,
    /// Estimated speed per platform column.
    pub hetero_speed: Vec<f64>,
    /// Estimated speed per framework-parameter column (None when the
    /// workload has no framework knobs).
    pub params_speed: Option<Vec<f64>>,
    /// Estimated tolerated pressure per interference source.
    pub tolerated: PressureVector,
    /// Estimated caused pressure per interference source.
    pub caused: PressureVector,
    /// Runtime feedback multiplier on predicted speed (paper §3.2: "a
    /// simple feedback loop that updates the matrix entries when the
    /// performance measured at runtime deviates from the one estimated
    /// through classification"; it also covers scaling past the node
    /// counts profiling can reach). Starts at 1.0; the manager adjusts it
    /// from live measurements.
    pub runtime_calibration: f64,
}

impl Classification {
    /// Estimated goal value (completion time / QPS / IPS) at a scale-up
    /// column on the reference platform.
    pub fn goal_at_scale_up(&self, col: usize) -> f64 {
        self.kind.from_speed(self.scale_up_speed[col])
    }
}

/// The output of one axis task, tagged so results can be reassembled
/// in a fixed order regardless of which worker finished first.
enum AxisOut {
    ScaleUp(Vec<f64>),
    Hetero(Vec<f64>),
    ScaleOut(Option<Vec<f64>>),
    Params(Option<Vec<f64>>),
    Pressure(PressureVector, PressureVector),
}

/// The per-axis latent-factor models behind one [`Classification`],
/// captured so the similarity index can warm-start SGD for a later,
/// similar arrival ([`Classifier::classify_warm`]) instead of paying
/// the SVD initialization again.
///
/// Axes that were not reconstructed carry `None`: scale-out/params when
/// the workload lacks them, and the interference axes when profiling
/// produced no pressure observations (those fall back to a uniform
/// estimate without training anything).
#[derive(Debug, Clone)]
pub struct AxisModels {
    /// Scale-up axis model.
    pub scale_up: PqModel,
    /// Heterogeneity axis model.
    pub hetero: PqModel,
    /// Scale-out axis model.
    pub scale_out: Option<PqModel>,
    /// Framework-parameter axis model.
    pub params: Option<PqModel>,
    /// Tolerated-pressure axis model.
    pub tolerated: Option<PqModel>,
    /// Caused-pressure axis model.
    pub caused: Option<PqModel>,
}

/// A pressure estimate plus the model that produced it (when trained).
type PressureOutM = (PressureVector, Option<PqModel>);

/// The model-capturing variant of [`AxisOut`].
enum AxisOutM {
    ScaleUp(Vec<f64>, PqModel),
    Hetero(Vec<f64>, PqModel),
    ScaleOut(Option<(Vec<f64>, PqModel)>),
    Params(Option<(Vec<f64>, PqModel)>),
    Pressure(Box<(PressureOutM, PressureOutM)>),
}

/// Runs the four parallel classifications.
#[derive(Debug, Clone)]
pub struct Classifier {
    reconstructor: Reconstructor,
    threads: usize,
}

impl Default for Classifier {
    fn default() -> Classifier {
        Classifier {
            reconstructor: Reconstructor::default(),
            threads: 1,
        }
    }
}

impl Classifier {
    /// A classifier with default SGD hyper-parameters, running its axis
    /// classifications serially.
    pub fn new() -> Classifier {
        Classifier::default()
    }

    /// Fans the per-axis classifications out over up to `threads` OS
    /// threads (paper §3.2 runs the four classifications concurrently).
    /// Every axis is a pure function of `(history, data)`, so the
    /// result is bit-identical to serial execution; only the wall-clock
    /// time changes. `threads <= 1` keeps the serial path.
    pub fn with_threads(mut self, threads: usize) -> Classifier {
        self.threads = threads.max(1);
        self
    }

    /// The configured fan-out width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Classifies one workload from its profiling signal against the
    /// offline history.
    pub fn classify(&self, history: &HistorySet, data: &ProfilingData) -> Classification {
        self.classify_timed(history, data).0
    }

    /// [`Classifier::classify`] plus the wall-clock decision time of the
    /// *parallel* scheme: the four classifications run concurrently
    /// (paper §3.2), so the decision latency is the maximum over the
    /// per-axis reconstruction times, returned in microseconds.
    ///
    /// The reported decision time is always the max over per-axis times
    /// (the parallel scheme's latency model), independent of whether
    /// this process actually ran the axes on one thread or several.
    pub fn classify_timed(
        &self,
        history: &HistorySet,
        data: &ProfilingData,
    ) -> (Classification, f64) {
        let kind = data.kind;
        let k: &KindHistory = history.kind(kind);
        let _decision_span = quasar_obs::span!("core.classify.decision");

        // Each axis runs under a `timed` span: the span carries the
        // per-axis wall time into traces, and the returned microseconds
        // feed the registry histograms and the decision-latency model
        // below (no ad-hoc `Instant::now()` bookkeeping).
        type AxisTask<'a> = Box<dyn FnOnce() -> (AxisOut, f64) + Send + 'a>;
        let tasks: Vec<AxisTask<'_>> = vec![
            Box::new(move || {
                timed("core.classify.scale_up", || {
                    AxisOut::ScaleUp(self.speed_axis(kind, &k.scale_up, &data.scale_up))
                })
            }),
            Box::new(move || {
                timed("core.classify.hetero", || {
                    AxisOut::Hetero(self.speed_axis(kind, &k.hetero, &data.hetero))
                })
            }),
            Box::new(move || {
                timed("core.classify.scale_out", || {
                    AxisOut::ScaleOut(
                        k.scale_out
                            .as_ref()
                            .filter(|_| !data.scale_out.is_empty())
                            .map(|m| self.speed_axis(kind, m, &data.scale_out)),
                    )
                })
            }),
            Box::new(move || {
                timed("core.classify.params", || {
                    AxisOut::Params(
                        k.params
                            .as_ref()
                            .filter(|_| !data.params.is_empty())
                            .map(|m| self.speed_axis(kind, m, &data.params)),
                    )
                })
            }),
            Box::new(move || {
                timed("core.classify.interference", || {
                    let tolerated = self.pressure_axis(&k.tolerated, &data.tolerated);
                    let caused = self.pressure_axis(&k.caused, &data.caused);
                    AxisOut::Pressure(tolerated, caused)
                })
            }),
        ];

        let results = crate::par::par_invoke(self.threads, tasks);
        let wall_us = results.iter().map(|(_, us)| *us).fold(0.0, f64::max);
        let metrics = classify_metrics();
        metrics.classifications.inc();
        for (_, us) in &results {
            metrics.axis_us.record(*us);
        }
        metrics.decision_us.record(wall_us);

        let mut scale_up_speed = Vec::new();
        let mut hetero_speed = Vec::new();
        let mut scale_out_speed = None;
        let mut params_speed = None;
        let mut tolerated = PressureVector::zero();
        let mut caused = PressureVector::zero();
        for (out, _) in results {
            match out {
                AxisOut::ScaleUp(v) => scale_up_speed = v,
                AxisOut::Hetero(v) => hetero_speed = v,
                AxisOut::ScaleOut(v) => scale_out_speed = v,
                AxisOut::Params(v) => params_speed = v,
                AxisOut::Pressure(t, c) => {
                    tolerated = t;
                    caused = c;
                }
            }
        }

        (
            Classification {
                kind,
                scale_up_speed,
                scale_out_speed,
                hetero_speed,
                params_speed,
                tolerated,
                caused,
                runtime_calibration: 1.0,
            },
            wall_us,
        )
    }

    /// [`Classifier::classify_timed`] that also captures the trained
    /// per-axis models, so the caller (the similarity index) can store
    /// them for later warm starts.
    ///
    /// The reconstructions bypass the row cache (models must actually be
    /// trained to be captured), but reconstruction is a pure function of
    /// its inputs, so the returned [`Classification`] is **bit-identical**
    /// to [`Classifier::classify`] on the same `(history, data)` — only
    /// the wall-clock time can differ.
    pub fn classify_with_models(
        &self,
        history: &HistorySet,
        data: &ProfilingData,
    ) -> (Classification, f64, AxisModels) {
        self.classify_models_inner(history, data, None)
    }

    /// Classifies with every axis's SGD warm-started from a similar
    /// neighbor's captured models (skipping the SVD initialization), and
    /// captures the newly trained models in turn. Axes whose neighbor
    /// model is absent or shape-incompatible fall back to a cold train.
    pub fn classify_warm(
        &self,
        history: &HistorySet,
        data: &ProfilingData,
        warm: &AxisModels,
    ) -> (Classification, f64, AxisModels) {
        self.classify_models_inner(history, data, Some(warm))
    }

    /// Shared driver for the model-capturing paths: the same five-task
    /// fan-out, latency model, and metrics as [`Classifier::classify_timed`].
    fn classify_models_inner(
        &self,
        history: &HistorySet,
        data: &ProfilingData,
        warm: Option<&AxisModels>,
    ) -> (Classification, f64, AxisModels) {
        let kind = data.kind;
        let k: &KindHistory = history.kind(kind);
        let _decision_span = quasar_obs::span!("core.classify.decision");

        type AxisTask<'a> = Box<dyn FnOnce() -> (AxisOutM, f64) + Send + 'a>;
        let tasks: Vec<AxisTask<'_>> = vec![
            Box::new(move || {
                timed("core.classify.scale_up", || {
                    let (v, m) = self.speed_axis_model(
                        kind,
                        &k.scale_up,
                        &data.scale_up,
                        warm.map(|w| &w.scale_up),
                    );
                    AxisOutM::ScaleUp(v, m)
                })
            }),
            Box::new(move || {
                timed("core.classify.hetero", || {
                    let (v, m) = self.speed_axis_model(
                        kind,
                        &k.hetero,
                        &data.hetero,
                        warm.map(|w| &w.hetero),
                    );
                    AxisOutM::Hetero(v, m)
                })
            }),
            Box::new(move || {
                timed("core.classify.scale_out", || {
                    AxisOutM::ScaleOut(
                        k.scale_out
                            .as_ref()
                            .filter(|_| !data.scale_out.is_empty())
                            .map(|m| {
                                self.speed_axis_model(
                                    kind,
                                    m,
                                    &data.scale_out,
                                    warm.and_then(|w| w.scale_out.as_ref()),
                                )
                            }),
                    )
                })
            }),
            Box::new(move || {
                timed("core.classify.params", || {
                    AxisOutM::Params(k.params.as_ref().filter(|_| !data.params.is_empty()).map(
                        |m| {
                            self.speed_axis_model(
                                kind,
                                m,
                                &data.params,
                                warm.and_then(|w| w.params.as_ref()),
                            )
                        },
                    ))
                })
            }),
            Box::new(move || {
                timed("core.classify.interference", || {
                    let tolerated = self.pressure_axis_model(
                        &k.tolerated,
                        &data.tolerated,
                        warm.and_then(|w| w.tolerated.as_ref()),
                    );
                    let caused = self.pressure_axis_model(
                        &k.caused,
                        &data.caused,
                        warm.and_then(|w| w.caused.as_ref()),
                    );
                    AxisOutM::Pressure(Box::new((tolerated, caused)))
                })
            }),
        ];

        let results = crate::par::par_invoke(self.threads, tasks);
        let wall_us = results.iter().map(|(_, us)| *us).fold(0.0, f64::max);
        let metrics = classify_metrics();
        metrics.classifications.inc();
        for (_, us) in &results {
            metrics.axis_us.record(*us);
        }
        metrics.decision_us.record(wall_us);

        let mut scale_up = None;
        let mut hetero = None;
        let mut scale_out = None;
        let mut params = None;
        let mut pressure = None;
        for (out, _) in results {
            match out {
                AxisOutM::ScaleUp(v, m) => scale_up = Some((v, m)),
                AxisOutM::Hetero(v, m) => hetero = Some((v, m)),
                AxisOutM::ScaleOut(v) => scale_out = v,
                AxisOutM::Params(v) => params = v,
                AxisOutM::Pressure(tc) => pressure = Some(*tc),
            }
        }
        let (scale_up_speed, scale_up_model) = scale_up.expect("scale-up task ran");
        let (hetero_speed, hetero_model) = hetero.expect("hetero task ran");
        let (scale_out_speed, scale_out_model) = match scale_out {
            Some((v, m)) => (Some(v), Some(m)),
            None => (None, None),
        };
        let (params_speed, params_model) = match params {
            Some((v, m)) => (Some(v), Some(m)),
            None => (None, None),
        };
        let ((tolerated, tolerated_model), (caused, caused_model)) =
            pressure.expect("interference task ran");

        (
            Classification {
                kind,
                scale_up_speed,
                scale_out_speed,
                hetero_speed,
                params_speed,
                tolerated,
                caused,
                runtime_calibration: 1.0,
            },
            wall_us,
            AxisModels {
                scale_up: scale_up_model,
                hetero: hetero_model,
                scale_out: scale_out_model,
                params: params_model,
                tolerated: tolerated_model,
                caused: caused_model,
            },
        )
    }

    /// Reconstructs one speed axis: goal-value observations → ln-speed
    /// row → CF against history → linear speeds.
    fn speed_axis(
        &self,
        kind: GoalKind,
        history: &DenseMatrix,
        observed: &[(usize, f64)],
    ) -> Vec<f64> {
        let target: Vec<(usize, f64)> = observed
            .iter()
            .map(|&(c, v)| (c, ln_speed(kind, v)))
            .collect();
        let row = self
            .reconstructor
            .reconstruct_row(history, &target)
            .expect("history is dense and target non-empty");
        row.into_iter().map(f64::exp).collect()
    }

    /// Reconstructs one interference axis. Pressure values live on a
    /// 0–100 scale; they are normalized into [0, 1] for the SGD pass
    /// (whose learning rate is tuned for unit-scale data) and scaled back.
    fn pressure_axis(&self, history: &DenseMatrix, observed: &[(usize, f64)]) -> PressureVector {
        if observed.is_empty() {
            return PressureVector::uniform(PressureVector::MAX / 2.0);
        }
        let scaled_history = DenseMatrix::from_fn(history.rows(), history.cols(), |r, c| {
            history.get(r, c) / PressureVector::MAX
        });
        let scaled_observed: Vec<(usize, f64)> = observed
            .iter()
            .map(|&(c, v)| (c, v / PressureVector::MAX))
            .collect();
        let row = self
            .reconstructor
            .reconstruct_row(&scaled_history, &scaled_observed)
            .expect("history is dense and target non-empty");
        let mut v = PressureVector::zero();
        for (i, value) in row.into_iter().enumerate() {
            v.set(
                quasar_interference::SharedResource::from_index(i),
                value * PressureVector::MAX,
            );
        }
        v
    }

    /// [`Classifier::speed_axis`] that trains uncached and returns the
    /// model, optionally warm-starting from a neighbor's. The float
    /// pipeline is identical, so the speeds match the cached path
    /// bit-for-bit on a cold train.
    fn speed_axis_model(
        &self,
        kind: GoalKind,
        history: &DenseMatrix,
        observed: &[(usize, f64)],
        warm: Option<&PqModel>,
    ) -> (Vec<f64>, PqModel) {
        let target: Vec<(usize, f64)> = observed
            .iter()
            .map(|&(c, v)| (c, ln_speed(kind, v)))
            .collect();
        let (row, model) = match warm {
            Some(w) => self.reconstructor.reconstruct_row_warm(history, &target, w),
            None => self
                .reconstructor
                .reconstruct_row_with_model(history, &target),
        }
        .expect("history is dense and target non-empty");
        (row.into_iter().map(f64::exp).collect(), model)
    }

    /// [`Classifier::pressure_axis`] that trains uncached and returns
    /// the model (`None` on the no-observations uniform fallback).
    fn pressure_axis_model(
        &self,
        history: &DenseMatrix,
        observed: &[(usize, f64)],
        warm: Option<&PqModel>,
    ) -> (PressureVector, Option<PqModel>) {
        if observed.is_empty() {
            return (PressureVector::uniform(PressureVector::MAX / 2.0), None);
        }
        let scaled_history = DenseMatrix::from_fn(history.rows(), history.cols(), |r, c| {
            history.get(r, c) / PressureVector::MAX
        });
        let scaled_observed: Vec<(usize, f64)> = observed
            .iter()
            .map(|&(c, v)| (c, v / PressureVector::MAX))
            .collect();
        let (row, model) = match warm {
            Some(w) => {
                self.reconstructor
                    .reconstruct_row_warm(&scaled_history, &scaled_observed, w)
            }
            None => self
                .reconstructor
                .reconstruct_row_with_model(&scaled_history, &scaled_observed),
        }
        .expect("history is dense and target non-empty");
        let mut v = PressureVector::zero();
        for (i, value) in row.into_iter().enumerate() {
            v.set(
                quasar_interference::SharedResource::from_index(i),
                value * PressureVector::MAX,
            );
        }
        (v, Some(model))
    }
}

/// The single exhaustive classification the paper compares against
/// (§3.2, "multiple parallel versus single exhaustive classification"):
/// one matrix whose columns are joint (platform × scale-up × scale-out)
/// vectors. More robust to cross-term pathologies, but the column count
/// explodes and decision time rises by orders of magnitude (Fig. 3e).
#[derive(Debug, Clone)]
pub struct ExhaustiveClassifier {
    reconstructor: Reconstructor,
    /// The joint columns: (platform index, scale-up column, scale-out column).
    columns: Vec<(usize, usize, usize)>,
}

impl ExhaustiveClassifier {
    /// Builds the joint column space from the axes, subsampled to keep the
    /// matrix tractable: every platform × a spread of scale-up configs ×
    /// small node counts.
    pub fn new(axes: &Axes) -> ExhaustiveClassifier {
        // The whole scale-up grid joins the cross product: this is what
        // makes the exhaustive scheme's matrices explode (Fig. 3e).
        let su_cols: Vec<usize> = (0..axes.scale_up.len()).collect();
        let so_cols: Vec<usize> = axes
            .scale_out
            .iter()
            .enumerate()
            .filter(|(_, &n)| n <= 4)
            .map(|(i, _)| i)
            .collect();
        let mut columns = Vec::new();
        for p in 0..axes.platforms.len() {
            for &su in &su_cols {
                for &so in &so_cols {
                    columns.push((p, su, so));
                }
            }
        }
        ExhaustiveClassifier {
            reconstructor: Reconstructor::new(),
            columns,
        }
    }

    /// The joint columns.
    pub fn columns(&self) -> &[(usize, usize, usize)] {
        &self.columns
    }

    /// Reconstructs the full joint row from sparse joint observations
    /// (`(column index, ln-speed)`), given a dense joint history.
    ///
    /// # Panics
    ///
    /// Panics if `observed` is empty.
    pub fn classify_row(&self, history: &DenseMatrix, observed: &[(usize, f64)]) -> Vec<f64> {
        self.classify_row_timed(history, observed).0
    }

    /// [`ExhaustiveClassifier::classify_row`] plus its wall-clock
    /// decision time in microseconds, recorded as a
    /// `core.classify.exhaustive` span and into the
    /// `quasar.core.classify.exhaustive_us` histogram (Fig. 3e compares
    /// this latency against the parallel scheme's).
    ///
    /// # Panics
    ///
    /// Panics if `observed` is empty.
    pub fn classify_row_timed(
        &self,
        history: &DenseMatrix,
        observed: &[(usize, f64)],
    ) -> (Vec<f64>, f64) {
        assert!(!observed.is_empty(), "need at least one observation");
        let (row, us) = timed("core.classify.exhaustive", || {
            self.reconstructor
                .reconstruct_row(history, observed)
                .expect("dense history, non-empty target")
        });
        classify_metrics().exhaustive_us.record(us);
        (row, us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_cluster::{managers::NullManager, ClusterSpec, SimConfig, Simulation};
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{Dataset, PlatformCatalog, Priority, WorkloadClass};

    use crate::profile::Profiler;

    /// End-to-end: profile a fresh workload sparsely and check the
    /// classification predicts the (noiseless) ground truth measured
    /// through full profiling.
    #[test]
    fn classification_predicts_unseen_columns() {
        let catalog = PlatformCatalog::local();
        let history = HistorySet::bootstrap(&catalog, 12, 77);
        let axes = history.axes().clone();

        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 1),
            Box::new(NullManager),
            SimConfig {
                noise: 0.0,
                ..SimConfig::default()
            },
        );
        let mut generator = Generator::new(catalog.clone(), 123);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "probe",
            Dataset::new("d", 25.0, 1.1),
            2,
            900.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        sim.submit_at(job, 0.0);
        sim.run_until(5.0);

        let mut profiler = Profiler::new(2, 9);
        let data = profiler.profile(sim.world_mut(), &axes, id);
        let class = Classifier::new().classify(&history, &data);

        // Compare estimated vs measured across the heterogeneity axis.
        let mut errors = Vec::new();
        for (col, &pid) in axes.platforms.iter().enumerate() {
            let config = quasar_cluster::ProfileConfig::single(pid, axes.anchor());
            let actual = sim.world_mut().profile_config(id, &config).value;
            let actual_speed = GoalKind::Time.to_speed(actual);
            let rel = (class.hetero_speed[col] - actual_speed).abs() / actual_speed;
            errors.push(rel);
        }
        let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(
            mean_err < 0.30,
            "mean heterogeneity error {mean_err:.2} too high; errors {errors:?}"
        );
    }

    /// The tentpole guarantee: fanning the axis classifications out over
    /// worker threads produces *bit-identical* output to the serial path
    /// on the same seed, for every thread count.
    #[test]
    fn parallel_classification_is_bit_identical_to_serial() {
        let catalog = PlatformCatalog::local();
        let history = HistorySet::bootstrap(&catalog, 8, 41);
        let axes = history.axes().clone();

        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 1),
            Box::new(NullManager),
            SimConfig::default(),
        );
        let mut generator = Generator::new(catalog.clone(), 7);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "det-probe",
            Dataset::new("d", 12.0, 1.0),
            2,
            600.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        sim.submit_at(job, 0.0);
        sim.run_until(5.0);
        let data = Profiler::new(2, 9).profile(sim.world_mut(), &axes, id);

        let serial = Classifier::new().with_threads(1).classify(&history, &data);
        for threads in [2, 4, 8] {
            let parallel = Classifier::new()
                .with_threads(threads)
                .classify(&history, &data);
            assert_eq!(
                serial, parallel,
                "classification diverged at {threads} threads"
            );
            // Byte-level check on the float vectors, not just PartialEq
            // (which would conflate -0.0 with 0.0 and panic on NaN).
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&serial.scale_up_speed), bits(&parallel.scale_up_speed));
            assert_eq!(bits(&serial.hetero_speed), bits(&parallel.hetero_speed));
        }
    }

    /// Adoption smoke for the CF scratch arenas: classification drives
    /// `reconstruct_row` hard enough that buffer checkouts must be
    /// served from pooled capacity, visible as the global
    /// `quasar.cf.scratch.reuses` counter advancing.
    #[test]
    fn classification_reuses_cf_scratch_arenas() {
        let catalog = PlatformCatalog::local();
        let history = HistorySet::bootstrap(&catalog, 8, 41);
        let axes = history.axes().clone();

        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 1),
            Box::new(NullManager),
            SimConfig::default(),
        );
        let mut generator = Generator::new(catalog.clone(), 7);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "scratch-probe",
            Dataset::new("d", 12.0, 1.0),
            2,
            600.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        sim.submit_at(job, 0.0);
        sim.run_until(5.0);
        let data = Profiler::new(2, 9).profile(sim.world_mut(), &axes, id);

        let reuses = Registry::global().counter("quasar.cf.scratch.reuses");
        let before = reuses.get();
        // Two serial classifications: the axis reconstructions within
        // each one (and the second run entirely) hit warmed arenas.
        let classifier = Classifier::new().with_threads(1);
        classifier.classify(&history, &data);
        classifier.classify(&history, &data);
        assert!(
            reuses.get() > before,
            "classification must reuse pooled scratch buffers"
        );
    }

    /// `classify_with_models` (the similarity index's miss path) must be
    /// bit-identical to the plain cached path — this is what makes
    /// "index enabled, no hits" byte-identical to "index disabled".
    #[test]
    fn model_capturing_classification_is_bit_identical_to_plain() {
        let catalog = PlatformCatalog::local();
        let history = HistorySet::bootstrap(&catalog, 8, 41);
        let axes = history.axes().clone();

        let mut sim = Simulation::new(
            ClusterSpec::uniform(catalog.clone(), 1),
            Box::new(NullManager),
            SimConfig::default(),
        );
        let mut generator = Generator::new(catalog.clone(), 7);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "model-probe",
            Dataset::new("d", 12.0, 1.0),
            2,
            600.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        sim.submit_at(job, 0.0);
        sim.run_until(5.0);
        let data = Profiler::new(2, 9).profile(sim.world_mut(), &axes, id);

        let classifier = Classifier::new();
        let plain = classifier.classify(&history, &data);
        let (modeled, _, models) = classifier.classify_with_models(&history, &data);
        assert_eq!(plain, modeled);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&plain.scale_up_speed), bits(&modeled.scale_up_speed));
        assert_eq!(bits(&plain.hetero_speed), bits(&modeled.hetero_speed));
        // A Hadoop job reconstructs every axis, so every model is there.
        assert!(models.scale_out.is_some());
        assert!(models.params.is_some());
        assert!(models.tolerated.is_some());

        // Warm-starting from the captured models on the same data stays
        // a valid classification (finite, positive speeds).
        let (warm, _, _) = classifier.classify_warm(&history, &data, &models);
        assert_eq!(warm.kind, plain.kind);
        assert!(warm
            .scale_up_speed
            .iter()
            .all(|s| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn empty_interference_observations_fall_back() {
        let catalog = PlatformCatalog::local();
        let history = HistorySet::bootstrap(&catalog, 3, 5);
        let data = ProfilingData {
            kind: GoalKind::Rate,
            scale_up: vec![(0, 100.0)],
            scale_out: vec![],
            hetero: vec![(0, 90.0)],
            params: vec![],
            tolerated: vec![],
            caused: vec![],
            wall_seconds: 1.0,
            total_seconds: 1.0,
        };
        let class = Classifier::new().classify(&history, &data);
        assert!(
            class
                .tolerated
                .get(quasar_interference::SharedResource::Cpu)
                > 0.0
        );
    }

    #[test]
    fn exhaustive_columns_cover_all_platforms() {
        let axes = Axes::for_catalog(&PlatformCatalog::local());
        let ex = ExhaustiveClassifier::new(&axes);
        let platforms: std::collections::BTreeSet<usize> =
            ex.columns().iter().map(|&(p, _, _)| p).collect();
        assert_eq!(platforms.len(), axes.platforms.len());
        assert!(
            ex.columns().len() > axes.scale_up.len(),
            "joint space is bigger than any single axis"
        );
    }
}
