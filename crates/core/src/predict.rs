//! Load prediction for user-facing services.
//!
//! The paper notes (§4.1): "At the moment, Quasar does not employ load
//! prediction for user-facing services. In future work, we will use such
//! predictors as an additional signal to trigger adjustments." This
//! module implements that extension: a windowed linear predictor over a
//! service's offered load. When enabled
//! ([`crate::QuasarConfig::predictive_scaling`]), the manager treats a
//! predicted near-future load above the current provisioning point as an
//! off-track signal and scales *before* the latency knee is hit.
//!
//! # Examples
//!
//! ```
//! use quasar_core::predict::LoadPredictor;
//!
//! let mut p = LoadPredictor::new(8);
//! for i in 0..8 {
//!     p.observe(i as f64 * 10.0, 1_000.0 + i as f64 * 100.0);
//! }
//! // Rising ~10 QPS/s; 60 s ahead ≈ 2300.
//! let ahead = p.forecast(70.0 + 60.0).unwrap();
//! assert!((ahead - 2_300.0).abs() < 50.0);
//! ```

use std::collections::VecDeque;

/// A sliding-window linear (least-squares) forecaster of offered load.
#[derive(Debug, Clone)]
pub struct LoadPredictor {
    window: usize,
    samples: VecDeque<(f64, f64)>,
}

impl LoadPredictor {
    /// A predictor keeping the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` (a line needs two points).
    pub fn new(window: usize) -> LoadPredictor {
        assert!(window >= 2, "prediction window needs at least two samples");
        LoadPredictor {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }

    /// Records an observed `(time, offered QPS)` sample.
    pub fn observe(&mut self, time_s: f64, offered_qps: f64) {
        if let Some(&(last_t, _)) = self.samples.back() {
            if time_s <= last_t {
                return; // ignore out-of-order duplicates
            }
        }
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back((time_s, offered_qps));
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Least-squares slope of the window, in QPS per second; `None` with
    /// fewer than two samples.
    pub fn slope(&self) -> Option<f64> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let (mut st, mut sq, mut stt, mut stq) = (0.0, 0.0, 0.0, 0.0);
        for &(t, q) in &self.samples {
            st += t;
            sq += q;
            stt += t * t;
            stq += t * q;
        }
        let denominator = nf * stt - st * st;
        if denominator.abs() < 1e-9 {
            return None;
        }
        Some((nf * stq - st * sq) / denominator)
    }

    /// Forecast of the offered load at absolute time `at_s`, clamped to
    /// non-negative; `None` with fewer than two samples.
    pub fn forecast(&self, at_s: f64) -> Option<f64> {
        let slope = self.slope()?;
        let (mut st, mut sq) = (0.0, 0.0);
        for &(t, q) in &self.samples {
            st += t;
            sq += q;
        }
        let n = self.samples.len() as f64;
        let (mean_t, mean_q) = (st / n, sq / n);
        Some((mean_q + slope * (at_s - mean_t)).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_line_exactly() {
        let mut p = LoadPredictor::new(10);
        for i in 0..10 {
            p.observe(i as f64, 5.0 + 3.0 * i as f64);
        }
        assert!((p.slope().unwrap() - 3.0).abs() < 1e-9);
        assert!((p.forecast(20.0).unwrap() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn window_slides() {
        let mut p = LoadPredictor::new(4);
        // Old regime falling, new regime rising: only the window counts.
        for i in 0..4 {
            p.observe(i as f64, 100.0 - i as f64 * 10.0);
        }
        for i in 4..8 {
            p.observe(i as f64, 70.0 + (i - 4) as f64 * 20.0);
        }
        assert_eq!(p.len(), 4);
        assert!(
            p.slope().unwrap() > 0.0,
            "window must reflect the new trend"
        );
    }

    #[test]
    fn forecast_never_negative() {
        let mut p = LoadPredictor::new(4);
        p.observe(0.0, 10.0);
        p.observe(1.0, 5.0);
        assert_eq!(p.forecast(100.0), Some(0.0));
    }

    #[test]
    fn too_few_samples_yield_none() {
        let mut p = LoadPredictor::new(4);
        assert!(p.is_empty());
        assert_eq!(p.slope(), None);
        p.observe(0.0, 1.0);
        assert_eq!(p.forecast(1.0), None);
    }

    #[test]
    fn out_of_order_samples_are_ignored() {
        let mut p = LoadPredictor::new(4);
        p.observe(5.0, 10.0);
        p.observe(5.0, 99.0);
        p.observe(3.0, 99.0);
        assert_eq!(p.len(), 1);
    }
}
