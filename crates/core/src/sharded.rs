//! Datacenter-scale sharded admission: per-worker cells, batched
//! decisions, and a narrow cross-shard seam.
//!
//! The paper's headline scalability claim (§4.4) is that Quasar keeps
//! scheduling overheads flat as the cluster grows because decisions touch
//! per-job state, not global state. This module reproduces that shape:
//! cluster state is carved into [`Cell`]s (each a disjoint server slice
//! with its own world and manager), arrivals are routed serially into
//! per-cell inboxes, and every admission round fans the cells out on the
//! persistent worker pool via [`par_map_mut`]. Cells only communicate
//! through the [`Seam`] slot table and the serial [`rebalance`] pass
//! between rounds, so output is byte-identical for every thread count
//! *and* the placement outcome is identical for every shard count when
//! capacity is not contended (see `fig12` in `quasar-experiments`).
//!
//! The per-cell manager is [`BatchAdmission`]: a deliberately lean
//! admission path that classifies one representative job up front
//! ([`template_classification`]) and then plans whole batches with
//! [`GreedyScheduler::plan_batch`] instead of re-profiling every arrival
//! — the SVD+SGD classification fast path is still O(ms) per job, which
//! at 10⁵–10⁶ arrivals would dwarf the scheduling cost being measured.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

use quasar_cluster::managers::{Manager, NullManager};
use quasar_cluster::shard::{rebalance, route};
use quasar_cluster::{Cell, ClusterSpec, NodeAlloc, Seam, ServerId, SimConfig, Simulation, World};
use quasar_interference::PressureVector;
use quasar_obs::registry::{Histogram, Registry};
use quasar_workloads::generate::Generator;
use quasar_workloads::{Priority, QosTarget, Workload, WorkloadId};

use crate::axes::Axes;
use crate::classify::{Classification, Classifier};
use crate::greedy::{CandidateServer, GreedyScheduler};
use crate::history::HistorySet;
use crate::par::par_map_mut;
use crate::profile::Profiler;
use crate::similarity::{Signature, SimilarityConfig, SimilarityIndex};

/// Live wall-clock telemetry for the sharded driver. Everything under
/// `quasar.cluster.shard.wall.` is stripped from deterministic snapshots.
fn round_wall_us() -> &'static Histogram {
    static HIST: OnceLock<Histogram> = OnceLock::new();
    HIST.get_or_init(|| {
        Registry::global().histogram(
            "quasar.cluster.shard.wall.round_us",
            &[
                100.0,
                300.0,
                1_000.0,
                3_000.0,
                10_000.0,
                30_000.0,
                100_000.0,
                300_000.0,
                1_000_000.0,
            ],
        )
    })
}

/// Counters kept by a [`BatchAdmission`] manager, read through the
/// [`Arc<Mutex<_>>`] handle the driver keeps after the manager is boxed
/// into its cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Placement decisions attempted (plan computations, including
    /// retries for jobs that found no room in an earlier round).
    pub decisions: u64,
    /// Jobs successfully placed.
    pub placed: u64,
}

/// Most jobs a [`BatchAdmission`] manager plans per tick. On a saturated
/// cell the unplaced backlog can reach the full sweep size; replanning
/// all of it every tick would make per-tick cost O(backlog) instead of
/// O(capacity). The cap keeps retries FIFO-fair and per-tick work flat.
const PLAN_CAP: usize = 512;

/// A lean per-cell manager for datacenter-scale admission sweeps.
///
/// Arrivals are buffered; each tick up to [`PLAN_CAP`] of them are
/// planned in one [`GreedyScheduler::plan_batch`] sweep against a single
/// snapshot of the cell's servers, using a shared template
/// [`Classification`] instead of per-job profiling. Jobs whose plan
/// found no room are re-queued for the next tick. Plans are committed
/// even when they miss the target with margin — the sweep measures
/// decision throughput, and an under-margin plan on an uncontended
/// cluster still runs the job.
pub struct BatchAdmission {
    axes: Axes,
    class: Classification,
    scheduler: GreedyScheduler,
    queue: VecDeque<WorkloadId>,
    stats: Arc<Mutex<BatchStats>>,
    /// Cell-local similarity index keyed by QoS class; `None` unless the
    /// sharded config enables it. Each cell owns its own index — entries
    /// never cross the seam, so placement digests stay independent of the
    /// shard count and of cell interleaving.
    similarity: Option<SimilarityIndex>,
}

impl BatchAdmission {
    /// A batched-admission manager planning with `class` on `axes`.
    pub fn new(axes: Axes, class: Classification) -> BatchAdmission {
        BatchAdmission::with_similarity(axes, class, SimilarityConfig::default())
    }

    /// A batched-admission manager with a cell-local similarity index
    /// (no index when `similarity.enabled` is false).
    pub fn with_similarity(
        axes: Axes,
        class: Classification,
        similarity: SimilarityConfig,
    ) -> BatchAdmission {
        BatchAdmission {
            axes,
            class,
            scheduler: GreedyScheduler::new(4),
            queue: VecDeque::new(),
            stats: Arc::new(Mutex::new(BatchStats::default())),
            similarity: similarity.enabled.then(|| SimilarityIndex::new(similarity)),
        }
    }

    /// A handle onto the decision counters that stays readable after the
    /// manager is boxed into a [`Cell`].
    pub fn stats_handle(&self) -> Arc<Mutex<BatchStats>> {
        self.stats.clone()
    }

    /// The candidate view of the cell's servers: free capacity with no
    /// interference estimate. Template classification already folded the
    /// workload's tolerated/caused pressure into the plan margin; per-job
    /// pressure accounting is what the full `QuasarManager` is for.
    fn candidates(&self, world: &World) -> Vec<CandidateServer> {
        world
            .servers()
            .iter()
            .map(|server| CandidateServer {
                server: server.id().0,
                platform_index: self.axes.platform_index(server.platform()),
                free_cores: server.free_cores(),
                free_memory_gb: server.free_memory_gb(),
                pressure: PressureVector::zero(),
                victim_factor: 1.0,
                hourly_price: world.platform_of(server.id()).price_per_hour(),
            })
            .collect()
    }
}

impl Manager for BatchAdmission {
    fn name(&self) -> &str {
        "batch-admission"
    }

    // Every queued job is world-pending, so an idle world implies an
    // empty admission queue and a no-op tick: idle spans may be skipped.
    fn needs_idle_ticks(&self) -> bool {
        false
    }

    fn on_arrival(&mut self, _world: &mut World, id: WorkloadId) {
        self.queue.push_back(id);
    }

    fn on_tick(&mut self, world: &mut World) {
        if self.queue.is_empty() {
            return;
        }
        let take = self.queue.len().min(PLAN_CAP);
        let batch: Vec<WorkloadId> = self.queue.drain(..take).collect();
        let targets: Vec<QosTarget> = batch.iter().map(|&id| world.spec(id).target).collect();
        // With a cell-local similarity index, each job resolves its QoS
        // class through the index: the first sighting of a class files
        // the admission template under its signature (a miss), every
        // repeat hits the cached entry. All lookups return the template,
        // so plans — and the placement digest — are byte-identical with
        // the index on or off; the index only removes lookup work.
        let class = match self.similarity.as_mut() {
            Some(index) => {
                let template = &self.class;
                let mut resolved = template.clone();
                for target in &targets {
                    let sig = Signature::of_features(qos_features(target), index.config());
                    resolved = index.reuse_or_insert(sig, || template.clone()).0;
                }
                resolved
            }
            None => self.class.clone(),
        };
        let candidates = self.candidates(world);
        let plans = self
            .scheduler
            .plan_batch(&self.axes, &class, &targets, &candidates);
        let mut placed = 0u64;
        for (&id, plan) in batch.iter().zip(&plans) {
            let committed = plan.as_ref().is_some_and(|plan| {
                let nodes: Vec<NodeAlloc> = plan
                    .nodes
                    .iter()
                    .map(|&(server, resources)| NodeAlloc {
                        server: ServerId(server),
                        resources,
                        active_after: world.now(),
                    })
                    .collect();
                world.place(id, nodes, Default::default()).is_ok()
            });
            if committed {
                placed += 1;
            } else {
                self.queue.push_back(id);
            }
        }
        let mut stats = self.stats.lock().expect("stats poisoned");
        stats.decisions += batch.len() as u64;
        stats.placed += placed;
    }

    fn on_completion(&mut self, _world: &mut World, _id: WorkloadId) {}
}

/// Quantized feature coordinates of a QoS class for the cell-local
/// similarity index: the variant joins as its own feature (tag 0x40) so
/// different goal kinds never collide, and each target value joins
/// ln-bucketed (tag 0x41) so targets within the bucket width fuse into
/// one class.
fn qos_features(target: &QosTarget) -> Vec<(u64, usize, i64)> {
    // Same bucket width as profiling-row speeds: ~5% per bucket.
    let bucket = |v: f64| (v.max(1e-12).ln() / 0.05).round() as i64;
    match *target {
        QosTarget::CompletionTime { seconds } => {
            vec![(0x40, 0, 0), (0x41, 0, bucket(seconds))]
        }
        QosTarget::Throughput {
            qps,
            p99_latency_us,
        } => vec![
            (0x40, 1, 0),
            (0x41, 0, bucket(qps)),
            (0x41, 1, bucket(p99_latency_us)),
        ],
        QosTarget::Ips { ips } => vec![(0x40, 2, 0), (0x41, 0, bucket(ips))],
    }
}

/// Classifies one representative single-node job on a sandboxed
/// one-server scratch world and returns the result for reuse across an
/// entire admission sweep.
///
/// Profiling and CF classification run exactly once per sweep, not per
/// arrival: at the 10⁵–10⁶ jobs `fig12` admits, per-arrival SVD+SGD would
/// dominate the very scheduling cost the sweep measures. All sweep jobs
/// are drawn from the same generator family, so one classification is
/// representative.
pub fn template_classification(
    history: &HistorySet,
    spec: &ClusterSpec,
    seed: u64,
) -> Classification {
    let catalog = spec.catalog().clone();
    let config = SimConfig {
        noise: 0.0,
        seed,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(
        ClusterSpec::uniform(catalog.clone(), 1),
        Box::new(NullManager),
        config,
    );
    let mut generator = Generator::new(catalog, seed);
    let job = generator.single_node_job("template", 300.0, Priority::Guaranteed);
    let id = job.id();
    sim.submit_at(job, 0.0);
    // One tick delivers the submission; the job stays pending under the
    // null manager, which is all sandboxed profiling needs.
    let tick = sim.world().tick_s();
    sim.run_until(tick);
    let mut profiler = Profiler::new(2, seed ^ 0xF00D);
    let data = profiler.profile(sim.world_mut(), history.axes(), id);
    Classifier::new().classify(history, &data)
}

/// Tuning for [`run_sharded`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of cells to carve the cluster into.
    pub shards: usize,
    /// Worker threads for the per-round fan-out (1 = serial).
    pub threads: usize,
    /// Maximum inbox jobs a cell admits per round.
    pub batch_cap: usize,
    /// Simulated seconds per round (each round ticks physics this far).
    pub round_s: f64,
    /// Hard cap on rounds, so a sweep with unplaceable jobs terminates.
    pub max_rounds: usize,
    /// Backlog spread tolerated before [`rebalance`] migrates queued jobs.
    pub rebalance_threshold: usize,
    /// Per-cell world configuration (seed, tick, noise).
    pub sim: SimConfig,
    /// Cell-local similarity index configuration (disabled by default;
    /// see [`crate::similarity`]). Each cell builds its own index, so
    /// enabling it never couples cells or perturbs placement digests.
    pub similarity: SimilarityConfig,
}

impl Default for ShardedConfig {
    fn default() -> ShardedConfig {
        ShardedConfig {
            shards: 1,
            threads: 1,
            batch_cap: 256,
            round_s: 30.0,
            max_rounds: 1_000,
            rebalance_threshold: 8,
            sim: SimConfig {
                noise: 0.0,
                ..SimConfig::default()
            },
            similarity: SimilarityConfig::default(),
        }
    }
}

/// What a sharded admission sweep produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedOutcome {
    /// Cells the cluster was carved into.
    pub shards: usize,
    /// Jobs routed into the sweep.
    pub jobs: usize,
    /// Jobs successfully placed.
    pub placed: u64,
    /// Placement decisions attempted across all cells (retries included).
    pub decisions: u64,
    /// Admission rounds run.
    pub rounds: u64,
    /// Deepest per-cell backlog observed at any round boundary.
    pub max_queue_depth: usize,
    /// Jobs migrated between cells by [`rebalance`].
    pub rebalanced: u64,
    /// FNV-1a digest over the globally-sorted `(job id, placed)` pairs.
    /// On an uncontended cluster this is invariant across shard counts —
    /// the determinism smoke compares it between 1 and 4 shards.
    pub digest: u64,
    /// QoS violation episodes closed across all cells (open episodes are
    /// closed when the sweep drains).
    pub qos_episodes: u64,
    /// Severe episodes dumped as incident reports across all cells.
    pub qos_incidents: u64,
    /// FNV-1a digest over the globally-sorted episode ledger (workload,
    /// start, end, cause, ticks, peak depth). Invariant across thread
    /// counts; shard count changes colocation, so it is compared only
    /// between runs with the same shard count.
    pub qos_digest: u64,
}

/// Runs a batched admission sweep of `jobs` over `spec` carved into
/// `config.shards` cells.
///
/// The coordinator routes every job serially ([`route`]: least-loaded,
/// lowest-id ties), then loops rounds: fan the cells out on the worker
/// pool ([`par_map_mut`]), read the seam serially, and [`rebalance`]
/// queued jobs across cells — rebalance stays off the admission fast
/// path by design (DESIGN.md §5). The loop ends when no cell holds
/// backlog or `config.max_rounds` is hit.
pub fn run_sharded(
    spec: &ClusterSpec,
    history: &HistorySet,
    jobs: Vec<Workload>,
    config: &ShardedConfig,
) -> ShardedOutcome {
    let _span = quasar_obs::span!("core.sharded.run", "shards={}", config.shards);
    let template = template_classification(history, spec, config.sim.seed);
    let axes = history.axes();

    let seam = Seam::shared(config.shards);
    let mut stats: Vec<Arc<Mutex<BatchStats>>> = Vec::with_capacity(config.shards);
    let mut cells: Vec<Cell> = spec
        .partition(config.shards)
        .into_iter()
        .enumerate()
        .map(|(id, part)| {
            let manager =
                BatchAdmission::with_similarity(axes.clone(), template.clone(), config.similarity);
            stats.push(manager.stats_handle());
            Cell::new(
                id,
                part,
                Box::new(manager),
                config.sim,
                config.batch_cap,
                seam.clone(),
            )
        })
        .collect();

    let routed = route(&mut cells, jobs);

    let mut rounds = 0u64;
    let mut max_queue_depth = 0usize;
    let mut rebalanced = 0u64;
    while rounds < config.max_rounds as u64 {
        rounds += 1;
        let t_end = rounds as f64 * config.round_s;
        let started = std::time::Instant::now();
        par_map_mut(config.threads, &mut cells, |_, cell| cell.run_round(t_end));
        round_wall_us().record(started.elapsed().as_micros() as f64);
        // Serial seam read: the routing/rebalance load signal for this
        // round boundary.
        let round_max = {
            let seam = seam.lock().expect("seam poisoned");
            seam.slots().iter().map(|s| s.backlog).max().unwrap_or(0)
        };
        max_queue_depth = max_queue_depth.max(round_max);
        rebalanced += rebalance(&mut cells, config.rebalance_threshold);
        if cells.iter().map(Cell::backlog_estimate).sum::<usize>() == 0 {
            break;
        }
    }

    let (decisions, placed) = stats.iter().fold((0u64, 0u64), |(d, p), handle| {
        let s = handle.lock().expect("stats poisoned");
        (d + s.decisions, p + s.placed)
    });

    // Close still-open QoS episodes (the sweep is over) and fold the
    // cross-cell episode ledger into a globally-sorted digest, so the
    // value is independent of how jobs were distributed across threads.
    let mut qos_incidents = 0u64;
    let mut episodes: Vec<(u64, u64, u64, &'static str, u64, u64)> = Vec::new();
    for cell in &mut cells {
        cell.world_mut().finish_qos();
        qos_incidents += cell.world().incidents().len() as u64;
        episodes.extend(cell.world().qos().episodes().iter().map(|e| {
            (
                e.workload.0,
                e.start_s.to_bits(),
                e.end_s.to_bits(),
                e.cause.as_str(),
                e.ticks,
                e.peak_depth.to_bits(),
            )
        }));
    }
    episodes.sort_unstable();
    let qos_episodes = episodes.len() as u64;
    let mut qos_digest: u64 = 0xCBF2_9CE4_8422_2325;
    let mut fold = |word: u64| {
        for byte in word.to_le_bytes() {
            qos_digest ^= u64::from(byte);
            qos_digest = qos_digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (workload, start, end, cause, ticks, peak) in &episodes {
        fold(*workload);
        fold(*start);
        fold(*end);
        for byte in cause.bytes() {
            fold(u64::from(byte));
        }
        fold(*ticks);
        fold(*peak);
    }

    // Globally-sorted placement digest, so the value is independent of
    // how jobs were distributed across cells.
    let mut placements: Vec<(WorkloadId, bool)> = cells.iter().flat_map(Cell::placements).collect();
    placements.sort_unstable();
    let mut digest: u64 = 0xCBF2_9CE4_8422_2325;
    for (id, placed) in &placements {
        for byte in id.0.to_le_bytes().iter().chain(&[u8::from(*placed)]) {
            digest ^= u64::from(*byte);
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    ShardedOutcome {
        shards: config.shards,
        jobs: routed,
        placed,
        decisions,
        rounds,
        max_queue_depth,
        rebalanced,
        digest,
        qos_episodes,
        qos_incidents,
        qos_digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_workloads::PlatformCatalog;

    fn sweep_jobs(n: usize, seed: u64) -> Vec<Workload> {
        let mut generator = Generator::new(PlatformCatalog::local(), seed);
        (0..n)
            .map(|i| generator.single_node_job(format!("j{i}"), 120.0, Priority::Guaranteed))
            .collect()
    }

    fn history() -> HistorySet {
        HistorySet::bootstrap(&PlatformCatalog::local(), 24, 0x51AD)
    }

    #[test]
    fn sweep_places_everything_on_an_uncontended_cluster() {
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 4);
        let history = history();
        let outcome = run_sharded(
            &spec,
            &history,
            sweep_jobs(60, 0x5EED),
            &ShardedConfig {
                shards: 2,
                ..ShardedConfig::default()
            },
        );
        assert_eq!(outcome.jobs, 60);
        assert_eq!(outcome.placed, 60, "generous capacity must admit all");
        assert!(outcome.decisions >= 60);
        assert!(outcome.rounds < 100, "sweep must drain quickly");
    }

    #[test]
    fn outcome_is_invariant_across_threads_and_shard_counts() {
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 4);
        let history = history();
        let run = |shards: usize, threads: usize| {
            run_sharded(
                &spec,
                &history,
                sweep_jobs(80, 0xD1CE),
                &ShardedConfig {
                    shards,
                    threads,
                    ..ShardedConfig::default()
                },
            )
        };
        let serial = run(4, 1);
        let parallel = run(4, 4);
        assert_eq!(serial, parallel, "threads must not change the outcome");
        // Placement outcome (who got placed, not where) is shard-count
        // invariant on an uncontended cluster.
        let one = run(1, 2);
        assert_eq!(one.placed, serial.placed);
        assert_eq!(one.digest, serial.digest);
        assert_eq!(one.jobs, serial.jobs);
    }

    #[test]
    fn similarity_index_does_not_perturb_the_placement_digest() {
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 4);
        let history = history();
        let run = |shards: usize, threads: usize, similarity: SimilarityConfig| {
            run_sharded(
                &spec,
                &history,
                sweep_jobs(80, 0xD1CE),
                &ShardedConfig {
                    shards,
                    threads,
                    similarity,
                    ..ShardedConfig::default()
                },
            )
        };
        let off = run(2, 1, SimilarityConfig::default());
        // Same shard/thread split with cell-local indexes: byte-identical
        // outcome — lookups return the admission template either way.
        let on = run(2, 1, SimilarityConfig::enabled());
        assert_eq!(off, on, "index on/off must not change the outcome");
        // And with the index on, the digest stays invariant across both
        // thread and shard counts (per-cell ownership, no shared state).
        let threaded = run(2, 4, SimilarityConfig::enabled());
        assert_eq!(on, threaded);
        let resharded = run(4, 2, SimilarityConfig::enabled());
        assert_eq!(on.digest, resharded.digest);
        assert_eq!(on.placed, resharded.placed);
    }

    #[test]
    fn batch_admission_requeues_jobs_that_found_no_room() {
        // A one-server sliver: most of the batch must spill to later
        // rounds rather than vanish.
        let spec = ClusterSpec::with_counts(
            PlatformCatalog::local(),
            vec![(quasar_workloads::PlatformId(0), 1)],
        );
        let history = history();
        let outcome = run_sharded(
            &spec,
            &history,
            sweep_jobs(12, 0xBEEF),
            &ShardedConfig {
                shards: 1,
                max_rounds: 400,
                ..ShardedConfig::default()
            },
        );
        assert_eq!(outcome.jobs, 12);
        assert_eq!(outcome.placed, 12, "jobs place as earlier ones finish");
        assert!(
            outcome.decisions > 12,
            "spilled jobs must be retried, decisions {}",
            outcome.decisions
        );
    }
}
