//! NaN-safe ordering helpers for `f64` sort keys.
//!
//! `partial_cmp(..).expect(..)` comparators abort the whole run the
//! first time a NaN slips into an estimate. The policy here is instead:
//!
//! - Plain statistics sorts (percentiles, report tables) use
//!   [`f64::total_cmp`] directly — NaN sorts to a deterministic end and
//!   nothing panics.
//! - **Quality rankings** (pick the best server / highest estimate) map
//!   non-finite keys through [`desirability`], so a NaN or infinite
//!   estimate is *never preferred* over any finite candidate.
//! - **Cost minimizations** map non-finite keys through [`cost`], so a
//!   NaN cost is never chosen over any finite one.

/// `x` if finite, otherwise `fallback`.
#[inline]
pub fn finite_or(x: f64, fallback: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        fallback
    }
}

/// Sort key for "higher is better" rankings: non-finite estimates
/// (NaN, ±inf) collapse to [`f64::NEG_INFINITY`] so a corrupted
/// estimate can never win a `max_by`/descending sort over a finite one.
///
/// `+inf` is deliberately *not* treated as "infinitely good": an
/// infinite quality estimate is a model failure, not a great server.
#[inline]
pub fn desirability(x: f64) -> f64 {
    finite_or(x, f64::NEG_INFINITY)
}

/// Sort key for "lower is better" minimizations: non-finite costs
/// collapse to [`f64::INFINITY`] so they can never be selected by a
/// `min_by` over finite candidates.
#[inline]
pub fn cost(x: f64) -> f64 {
    finite_or(x, f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_never_wins_a_quality_ranking() {
        let mut xs = vec![f64::NAN, 3.0, f64::INFINITY, -1.0, f64::NEG_INFINITY];
        xs.sort_by(|a, b| desirability(*b).total_cmp(&desirability(*a)));
        assert_eq!(xs[0], 3.0);
        assert_eq!(xs[1], -1.0);
    }

    #[test]
    fn non_finite_never_wins_a_cost_minimization() {
        let best = [f64::NAN, 7.0, f64::INFINITY, 2.0]
            .into_iter()
            .min_by(|a, b| cost(*a).total_cmp(&cost(*b)))
            .unwrap();
        assert_eq!(best, 2.0);
    }

    #[test]
    fn finite_values_pass_through() {
        assert_eq!(desirability(1.5), 1.5);
        assert_eq!(cost(-2.5), -2.5);
        assert_eq!(finite_or(0.0, 9.0), 0.0);
        assert_eq!(finite_or(f64::NAN, 9.0), 9.0);
    }

    #[test]
    fn total_cmp_is_deterministic_with_nan() {
        let mut a = vec![2.0, f64::NAN, 1.0];
        let mut b = vec![f64::NAN, 1.0, 2.0];
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 2.0);
        assert!(a[2].is_nan() && b[2].is_nan());
    }
}
