//! Seeded generators for the paper's evaluation scenarios.
//!
//! The generators play the role of the paper's benchmark suites and
//! parameter sweeps: they sample ground-truth models from class priors and
//! set each workload's QoS target to the best performance achievable on
//! the reference allocation after a full parameter sweep — exactly how the
//! paper sets its targets ("set to the best performance achieved after a
//! parameter sweep on the different server platforms", §6.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use quasar_interference::PressureVector;

use crate::class::WorkloadClass;
use crate::dataset::Dataset;
use crate::framework::FrameworkParams;
use crate::load::LoadPattern;
use crate::model::{BatchModel, NodeResources, PerfModel, ServiceModel};
use crate::platform::PlatformCatalog;
use crate::spec::{Priority, Workload, WorkloadId, WorkloadSpec};
use crate::target::QosTarget;

/// A seeded workload factory bound to a platform catalog.
///
/// # Examples
///
/// ```
/// use quasar_workloads::{generate::Generator, PlatformCatalog};
///
/// let mut generator = Generator::new(PlatformCatalog::local(), 42);
/// let jobs = generator.mahout_suite(10);
/// assert_eq!(jobs.len(), 10);
/// ```
#[derive(Debug)]
pub struct Generator {
    catalog: PlatformCatalog,
    rng: StdRng,
    next_id: u64,
}

impl Generator {
    /// Creates a generator for the given catalog and seed.
    pub fn new(catalog: PlatformCatalog, seed: u64) -> Generator {
        Generator {
            catalog,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// The catalog this generator sizes targets against.
    pub fn catalog(&self) -> &PlatformCatalog {
        &self.catalog
    }

    fn fresh_id(&mut self) -> WorkloadId {
        let id = WorkloadId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Positions the generator so the next workload gets id `id` (for
    /// index-addressable streams; see [`bench_job`]).
    fn seek(&mut self, id: u64) {
        self.next_id = id;
    }

    /// A distributed analytics job (Hadoop/Spark/Storm).
    ///
    /// The job is calibrated so the *stock* configuration on `ref_nodes`
    /// highest-end servers takes `base_duration_s`; the QoS target is the
    /// best completion time over all platforms and framework parameters —
    /// the paper's parameter-sweep target.
    pub fn analytics_job(
        &mut self,
        class: WorkloadClass,
        name: impl Into<String>,
        dataset: Dataset,
        ref_nodes: usize,
        base_duration_s: f64,
        priority: Priority,
    ) -> Workload {
        assert!(
            class.is_batch() && class.is_distributed(),
            "analytics jobs are distributed batch"
        );
        let mut model = BatchModel::sample(dataset.clone(), true, &mut self.rng);
        model.calibrate_work(self.catalog.highest_end(), ref_nodes, base_duration_s);
        let target_s = best_batch_completion(&self.catalog, &model, ref_nodes);
        let spec = WorkloadSpec {
            id: self.fresh_id(),
            name: name.into(),
            class,
            dataset,
            target: QosTarget::completion(target_s),
            priority,
            cost_limit_per_hour: None,
        };
        Workload::new(spec, PerfModel::Batch(model), None)
    }

    /// A single-node batch job (SPEC/PARSEC-style), used in the paper as
    /// best-effort fill with an IPS-style target.
    pub fn single_node_job(
        &mut self,
        name: impl Into<String>,
        duration_s: f64,
        priority: Priority,
    ) -> Workload {
        let size_gb = self.rng.random_range(0.5..8.0);
        let dataset = Dataset::new("synthetic", size_gb, self.rng.random_range(0.5..2.0));
        let mut model = BatchModel::sample(dataset.clone(), false, &mut self.rng);
        model.calibrate_work(self.catalog.highest_end(), 1, duration_s);
        // IPS target: half the best single-node rate across platforms —
        // an attainable floor that still requires a decent assignment
        // (an exclusive top-end server per job would be unreasonable).
        let best_rate = self
            .catalog
            .iter()
            .map(|p| {
                model.node_rate(
                    p,
                    NodeResources::all_of(p),
                    &FrameworkParams::default(),
                    &PressureVector::zero(),
                    1,
                )
            })
            .fold(0.0, f64::max);
        let spec = WorkloadSpec {
            id: self.fresh_id(),
            name: name.into(),
            class: WorkloadClass::SingleNode,
            dataset,
            target: QosTarget::ips(best_rate * 0.5),
            priority,
            cost_limit_per_hour: None,
        };
        Workload::new(spec, PerfModel::Batch(model), None)
    }

    /// A latency-critical service of the given class.
    ///
    /// The QPS target is the peak of the load pattern; the latency bound
    /// follows the paper's scenarios (200 µs memcached, 30 ms Cassandra,
    /// 100 ms HotCRP webserver).
    pub fn service(
        &mut self,
        class: WorkloadClass,
        name: impl Into<String>,
        state_gb: f64,
        load: LoadPattern,
        priority: Priority,
    ) -> Workload {
        assert!(
            class.is_latency_critical(),
            "services must be latency-critical"
        );
        let (dataset, disk_bound, latency_us) = match class {
            WorkloadClass::Memcached => {
                let mixes = Dataset::memcached_catalog();
                let pick = self.rng.random_range(0..mixes.len());
                (mixes[pick].clone(), false, 200.0)
            }
            WorkloadClass::Cassandra => (Dataset::new("kv-disk", 2.0, 1.0), true, 30_000.0),
            WorkloadClass::Webserver => (Dataset::new("hotcrp", 5.0, 3.0), false, 100_000.0),
            _ => unreachable!("checked latency-critical above"),
        };
        let model = ServiceModel::sample(dataset.clone(), state_gb, disk_bound, &mut self.rng);
        let spec = WorkloadSpec {
            id: self.fresh_id(),
            name: name.into(),
            class,
            dataset,
            target: QosTarget::throughput(load.peak_qps(), latency_us),
            priority,
            cost_limit_per_hour: None,
        };
        Workload::new(spec, PerfModel::Service(model), Some(load))
    }

    /// The ten Mahout data-mining jobs of the single-batch-job scenario
    /// (Fig. 5), with dataset sizes spanning 1–900 GB.
    pub fn mahout_suite(&mut self, n: usize) -> Vec<Workload> {
        self.mahout_suite_scaled(n, 1.0)
    }

    /// [`Generator::mahout_suite`] with durations multiplied by
    /// `duration_scale` (experiments shrink the paper's 2–20 hour jobs to
    /// keep simulated time tractable without changing the shape).
    pub fn mahout_suite_scaled(&mut self, n: usize, duration_scale: f64) -> Vec<Workload> {
        let sizes = [
            2.1, 10.0, 20.0, 55.0, 100.0, 180.0, 300.0, 450.0, 700.0, 900.0,
        ];
        (0..n)
            .map(|i| {
                let size = sizes[i % sizes.len()];
                let dataset =
                    Dataset::new(format!("mahout-{i}"), size, self.rng.random_range(0.6..1.6));
                // Paper jobs take 2–20 hours; duration scales with size.
                let duration = (7_200.0 + 64.8 * size) * duration_scale;
                // Targets are defined at the node count stock Hadoop
                // would use, so the parameter sweep is apples-to-apples.
                let ref_nodes = crate::framework::hadoop_wave_nodes(size);
                self.analytics_job(
                    WorkloadClass::Hadoop,
                    format!("H{}", i + 1),
                    dataset,
                    ref_nodes,
                    duration,
                    Priority::Guaranteed,
                )
            })
            .collect()
    }

    /// The multi-framework batch mix of Fig. 6: `hadoop` Mahout jobs plus
    /// `storm` Storm and `spark` Spark jobs.
    pub fn batch_mix(&mut self, hadoop: usize, storm: usize, spark: usize) -> Vec<Workload> {
        let mut jobs = Vec::new();
        for i in 0..hadoop {
            let size = self.rng.random_range(5.0..120.0);
            let dataset =
                Dataset::new(format!("mahout-{i}"), size, self.rng.random_range(0.6..1.6));
            let duration = self.rng.random_range(1_800.0..7_200.0);
            let ref_nodes = crate::framework::hadoop_wave_nodes(size);
            jobs.push(self.analytics_job(
                WorkloadClass::Hadoop,
                format!("M{}", i + 1),
                dataset,
                ref_nodes,
                duration,
                Priority::Guaranteed,
            ));
        }
        for i in 0..storm {
            let size = self.rng.random_range(2.0..30.0);
            let dataset =
                Dataset::new(format!("stream-{i}"), size, self.rng.random_range(0.8..1.8));
            let duration = self.rng.random_range(1_800.0..5_400.0);
            let ref_nodes = crate::framework::hadoop_wave_nodes(size).min(4);
            jobs.push(self.analytics_job(
                WorkloadClass::Storm,
                format!("St{}", i + 1),
                dataset,
                ref_nodes,
                duration,
                Priority::Guaranteed,
            ));
        }
        for i in 0..spark {
            let size = self.rng.random_range(5.0..60.0);
            let dataset = Dataset::new(format!("rdd-{i}"), size, self.rng.random_range(0.6..1.4));
            let duration = self.rng.random_range(1_800.0..5_400.0);
            let ref_nodes = crate::framework::hadoop_wave_nodes(size).min(4);
            jobs.push(self.analytics_job(
                WorkloadClass::Spark,
                format!("Sp{}", i + 1),
                dataset,
                ref_nodes,
                duration,
                Priority::Guaranteed,
            ));
        }
        jobs
    }

    /// `n` best-effort single-node jobs (the SPEC/PARSEC/... fill of the
    /// paper's scenarios).
    pub fn best_effort_fill(&mut self, n: usize) -> Vec<Workload> {
        (0..n)
            .map(|i| {
                let duration = self.rng.random_range(120.0..1_800.0);
                self.single_node_job(format!("be{i}"), duration, Priority::BestEffort)
            })
            .collect()
    }

    /// The 1200-workload mixed fleet of the large-scale scenario
    /// (Fig. 11): analytics, latency-critical, and single-node jobs in
    /// random order, all with equal (guaranteed) priority.
    pub fn mixed_fleet(&mut self, n: usize) -> Vec<Workload> {
        (0..n)
            .map(|i| {
                let dice = self.rng.random_range(0.0..1.0);
                if dice < 0.20 {
                    let class = match self.rng.random_range(0..3) {
                        0 => WorkloadClass::Hadoop,
                        1 => WorkloadClass::Spark,
                        _ => WorkloadClass::Storm,
                    };
                    let dataset = Dataset::new(
                        format!("mix-{i}"),
                        self.rng.random_range(2.0..80.0),
                        self.rng.random_range(0.6..1.6),
                    );
                    let duration = self.rng.random_range(1_200.0..5_400.0);
                    self.analytics_job(
                        class,
                        format!("A{i}"),
                        dataset,
                        4,
                        duration,
                        Priority::Guaranteed,
                    )
                } else if dice < 0.28 {
                    let class = match self.rng.random_range(0..3) {
                        0 => WorkloadClass::Memcached,
                        1 => WorkloadClass::Cassandra,
                        _ => WorkloadClass::Webserver,
                    };
                    let state = if class == WorkloadClass::Cassandra {
                        self.rng.random_range(30.0..80.0)
                    } else {
                        self.rng.random_range(3.0..20.0)
                    };
                    let peak = if class == WorkloadClass::Cassandra {
                        self.rng.random_range(1_500.0..4_000.0)
                    } else {
                        self.rng.random_range(30_000.0..100_000.0)
                    };
                    let load = LoadPattern::Fluctuating {
                        base_qps: peak * 0.7,
                        amplitude_qps: peak * 0.3,
                        period_s: self.rng.random_range(1_800.0..7_200.0),
                    };
                    self.service(class, format!("S{i}"), state, load, Priority::Guaranteed)
                } else {
                    let duration = self.rng.random_range(300.0..2_400.0);
                    self.single_node_job(format!("B{i}"), duration, Priority::Guaranteed)
                }
            })
            .collect()
    }
}

/// A deterministic single-node benchmark job addressable by index: job
/// `k` is a pure function of `(catalog, seed, k)` with id
/// `WorkloadId(k)`, so a resumed run regenerates exactly the jobs it
/// needs in O(1) each instead of replaying a sequential generator
/// stream from the start.
pub fn bench_job(catalog: &PlatformCatalog, seed: u64, k: u64, duration_s: f64) -> Workload {
    let mut generator = Generator::new(
        catalog.clone(),
        seed.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    generator.seek(k);
    generator.single_node_job(format!("bench-{k}"), duration_s, Priority::Guaranteed)
}

/// Best completion time for `model` over any platform and framework
/// configuration at `nodes` nodes — the paper's parameter-sweep target.
fn best_batch_completion(catalog: &PlatformCatalog, model: &BatchModel, nodes: usize) -> f64 {
    let mut best = f64::INFINITY;
    for platform in catalog.iter() {
        let allocs: Vec<_> = (0..nodes)
            .map(|_| {
                (
                    platform,
                    NodeResources::all_of(platform),
                    PressureVector::zero(),
                )
            })
            .collect();
        for params in FrameworkParams::search_space() {
            if let Some(t) = model.completion_time(model.total_work(), &allocs, &params) {
                best = best.min(t);
            }
        }
    }
    assert!(best.is_finite(), "some allocation must complete the job");
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> Generator {
        Generator::new(PlatformCatalog::local(), 7)
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let mut g = generator();
        let jobs = g.mahout_suite(5);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id(), WorkloadId(i as u64));
        }
    }

    #[test]
    fn mahout_targets_are_achievable() {
        let mut g = generator();
        for job in g.mahout_suite(10) {
            let QosTarget::CompletionTime { seconds } = job.spec().target else {
                panic!("mahout jobs have completion targets");
            };
            assert!(seconds.is_finite() && seconds > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Generator::new(PlatformCatalog::local(), 9).mahout_suite(3);
        let b = Generator::new(PlatformCatalog::local(), 9).mahout_suite(3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Generator::new(PlatformCatalog::local(), 1).mahout_suite(3);
        let b = Generator::new(PlatformCatalog::local(), 2).mahout_suite(3);
        assert_ne!(a, b);
    }

    #[test]
    fn best_effort_fill_is_single_node() {
        let mut g = generator();
        for job in g.best_effort_fill(5) {
            assert_eq!(job.spec().class, WorkloadClass::SingleNode);
            assert!(job.spec().is_best_effort());
        }
    }

    #[test]
    fn services_have_loads_and_latency_targets() {
        let mut g = generator();
        let svc = g.service(
            WorkloadClass::Memcached,
            "mc",
            64.0,
            LoadPattern::Flat { qps: 100_000.0 },
            Priority::Guaranteed,
        );
        assert!(svc.load().is_some());
        assert!(svc.spec().target.is_latency_target());
        assert_eq!(svc.offered_qps(0.0), 100_000.0);
    }

    #[test]
    fn mixed_fleet_has_all_kinds() {
        let mut g = Generator::new(PlatformCatalog::ec2(), 11);
        let fleet = g.mixed_fleet(120);
        assert_eq!(fleet.len(), 120);
        let services = fleet
            .iter()
            .filter(|w| w.spec().class.is_latency_critical())
            .count();
        let analytics = fleet
            .iter()
            .filter(|w| w.spec().class.is_batch() && w.spec().class.is_distributed())
            .count();
        let single = fleet
            .iter()
            .filter(|w| w.spec().class == WorkloadClass::SingleNode)
            .count();
        assert!(services > 0 && analytics > 0 && single > 0);
        assert_eq!(services + analytics + single, 120);
    }

    #[test]
    fn batch_mix_counts() {
        let mut g = generator();
        let jobs = g.batch_mix(16, 4, 4);
        assert_eq!(jobs.len(), 24);
        assert_eq!(
            jobs.iter()
                .filter(|j| j.spec().class == WorkloadClass::Storm)
                .count(),
            4
        );
    }
}
