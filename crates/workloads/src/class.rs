//! Workload classes.

use std::fmt;

/// The classes of workloads Quasar manages (paper §5): distributed
/// analytics frameworks, latency-critical services (stateless and
/// stateful), and single-node batch jobs.
///
/// The class determines which allocation knobs apply (scale-out only for
/// distributed workloads), how the workload is profiled, and the form of
/// its QoS target (completion time, QPS + latency, or IPS).
///
/// # Examples
///
/// ```
/// use quasar_workloads::WorkloadClass;
///
/// assert!(WorkloadClass::Memcached.is_latency_critical());
/// assert!(!WorkloadClass::SingleNode.is_distributed());
/// assert!(WorkloadClass::Cassandra.is_stateful());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Hadoop-style MapReduce batch analytics (Mahout jobs in the paper).
    Hadoop,
    /// Storm-style streaming analytics.
    Storm,
    /// Spark-style in-memory analytics.
    Spark,
    /// Single-server batch job (SPEC/PARSEC/... in the paper).
    SingleNode,
    /// In-memory key-value store under live traffic.
    Memcached,
    /// Disk-backed NoSQL store under live traffic.
    Cassandra,
    /// Stateless web-serving tier (HotCRP in the paper).
    Webserver,
}

impl WorkloadClass {
    /// All classes.
    pub const ALL: [WorkloadClass; 7] = [
        WorkloadClass::Hadoop,
        WorkloadClass::Storm,
        WorkloadClass::Spark,
        WorkloadClass::SingleNode,
        WorkloadClass::Memcached,
        WorkloadClass::Cassandra,
        WorkloadClass::Webserver,
    ];

    /// Whether this class can use more than one server (scale-out applies).
    pub fn is_distributed(self) -> bool {
        !matches!(self, WorkloadClass::SingleNode)
    }

    /// Whether this class serves live traffic with a latency constraint.
    pub fn is_latency_critical(self) -> bool {
        matches!(
            self,
            WorkloadClass::Memcached | WorkloadClass::Cassandra | WorkloadClass::Webserver
        )
    }

    /// Whether this class carries significant state, making scale-out and
    /// migration expensive (microshard migration in the paper, §4.1).
    pub fn is_stateful(self) -> bool {
        matches!(self, WorkloadClass::Memcached | WorkloadClass::Cassandra)
    }

    /// Whether this class is a batch job that runs to completion.
    pub fn is_batch(self) -> bool {
        !self.is_latency_critical()
    }

    /// Whether this class exposes framework parameters (mappers per node,
    /// heap size, ...) that the manager can configure.
    pub fn has_framework_params(self) -> bool {
        matches!(
            self,
            WorkloadClass::Hadoop | WorkloadClass::Spark | WorkloadClass::Storm
        )
    }

    /// A short stable name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::Hadoop => "hadoop",
            WorkloadClass::Storm => "storm",
            WorkloadClass::Spark => "spark",
            WorkloadClass::SingleNode => "single-node",
            WorkloadClass::Memcached => "memcached",
            WorkloadClass::Cassandra => "cassandra",
            WorkloadClass::Webserver => "webserver",
        }
    }

    /// Setup time before profiling can begin, in seconds (paper §3.2:
    /// stateful services take 3–5 minutes to warm up; non-stateful batch
    /// profiling takes seconds).
    pub fn setup_seconds(self) -> f64 {
        match self {
            WorkloadClass::Cassandra => 240.0,
            WorkloadClass::Memcached => 120.0,
            WorkloadClass::Webserver => 30.0,
            WorkloadClass::Hadoop | WorkloadClass::Spark | WorkloadClass::Storm => 15.0,
            WorkloadClass::SingleNode => 2.0,
        }
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_properties_are_consistent() {
        for class in WorkloadClass::ALL {
            // A workload is either batch or latency-critical, never both.
            assert_ne!(class.is_batch(), class.is_latency_critical());
            // Stateful implies latency-critical in our model.
            if class.is_stateful() {
                assert!(class.is_latency_critical());
            }
        }
    }

    #[test]
    fn only_single_node_is_not_distributed() {
        for class in WorkloadClass::ALL {
            assert_eq!(class.is_distributed(), class != WorkloadClass::SingleNode);
        }
    }

    #[test]
    fn stateful_services_have_long_setup() {
        assert!(
            WorkloadClass::Cassandra.setup_seconds() > WorkloadClass::Hadoop.setup_seconds() * 10.0
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = WorkloadClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WorkloadClass::ALL.len());
    }
}
