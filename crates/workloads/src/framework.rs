//! Framework parameters for analytics jobs.
//!
//! For workloads like Hadoop, Quasar also configures the most important
//! framework parameters (paper §3.2 and Table 3): mappers per node, JVM
//! heap size, block size, replication, and compression. The ground-truth
//! effect of these knobs lives in [`crate::BatchModel`]; this module
//! defines the parameter space itself.

use std::fmt;

/// Compression codec choice for intermediate data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compression {
    /// No compression: no CPU cost, full I/O volume.
    None,
    /// LZO-style: cheap CPU, moderate ratio (paper's Hadoop default, 5.1x).
    Lzo,
    /// Gzip-style: more CPU, better ratio (Quasar picks 7.6x for H8).
    Gzip,
}

impl Compression {
    /// All codecs.
    pub const ALL: [Compression; 3] = [Compression::None, Compression::Lzo, Compression::Gzip];

    /// Approximate compression ratio on intermediate data.
    pub fn ratio(self) -> f64 {
        match self {
            Compression::None => 1.0,
            Compression::Lzo => 5.1,
            Compression::Gzip => 7.6,
        }
    }

    /// Relative CPU cost of compressing (1.0 = free).
    pub fn cpu_cost(self) -> f64 {
        match self {
            Compression::None => 1.0,
            Compression::Lzo => 1.04,
            Compression::Gzip => 1.10,
        }
    }
}

impl fmt::Display for Compression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Compression::None => write!(f, "none"),
            Compression::Lzo => write!(f, "lzo"),
            Compression::Gzip => write!(f, "gzip"),
        }
    }
}

/// Tunable framework parameters for a Hadoop/Spark/Storm-style job.
///
/// # Examples
///
/// ```
/// use quasar_workloads::FrameworkParams;
///
/// let p = FrameworkParams::hadoop_default();
/// assert_eq!(p.mappers_per_node, 8);
/// assert!(FrameworkParams::search_space().len() > 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkParams {
    /// Parallel worker tasks per node.
    pub mappers_per_node: u32,
    /// JVM heap per task, in GB.
    pub heap_gb: f64,
    /// HDFS block size in MB.
    pub block_size_mb: u32,
    /// Replication factor for intermediate data.
    pub replication: u32,
    /// Compression codec for intermediate data.
    pub compression: Compression,
}

impl FrameworkParams {
    /// The stock Hadoop configuration the paper compares against
    /// (Table 3): 8 mappers/node, 1 GB heap, 64 MB blocks, 2x
    /// replication, LZO.
    pub fn hadoop_default() -> FrameworkParams {
        FrameworkParams {
            mappers_per_node: 8,
            heap_gb: 1.0,
            block_size_mb: 64,
            replication: 2,
            compression: Compression::Lzo,
        }
    }

    /// The configuration Quasar selects for job H8 in Table 3: 12
    /// mappers/node, 0.75 GB heap, gzip.
    pub fn quasar_h8() -> FrameworkParams {
        FrameworkParams {
            mappers_per_node: 12,
            heap_gb: 0.75,
            block_size_mb: 64,
            replication: 2,
            compression: Compression::Gzip,
        }
    }

    /// Memory footprint per node implied by these parameters, in GB.
    pub fn memory_per_node_gb(&self) -> f64 {
        self.mappers_per_node as f64 * self.heap_gb
    }

    /// The discrete search space of framework configurations a manager may
    /// choose from (the columns of the scale-up classification matrix for
    /// framework workloads).
    pub fn search_space() -> Vec<FrameworkParams> {
        let mut space = Vec::new();
        for &mappers in &[4u32, 8, 12, 16] {
            for &heap_gb in &[0.5, 0.75, 1.0, 2.0] {
                for &compression in &[Compression::Lzo, Compression::Gzip] {
                    space.push(FrameworkParams {
                        mappers_per_node: mappers,
                        heap_gb,
                        block_size_mb: 64,
                        replication: 2,
                        compression,
                    });
                }
            }
        }
        space
    }
}

/// The node count stock Hadoop would provision for a dataset: enough
/// 8-mapper workers to finish the map tasks in about four waves, capped
/// at the configured worker pool of 8 (deadline-oblivious, data-driven —
/// the sizing the paper's framework-scheduler baseline uses, and the node
/// count at which the parameter-sweep targets of §6.1 are defined).
pub fn hadoop_wave_nodes(dataset_size_gb: f64) -> usize {
    let tasks = (dataset_size_gb * 1024.0 / 64.0).ceil();
    ((tasks / (8.0 * 4.0)).ceil() as usize).clamp(1, 8)
}

impl Default for FrameworkParams {
    fn default() -> FrameworkParams {
        FrameworkParams::hadoop_default()
    }
}

impl fmt::Display for FrameworkParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} mappers/node, {:.2}GB heap, {}MB blocks, {}x repl, {}",
            self.mappers_per_node,
            self.heap_gb,
            self.block_size_mb,
            self.replication,
            self.compression
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table3() {
        let p = FrameworkParams::hadoop_default();
        assert_eq!(p.mappers_per_node, 8);
        assert_eq!(p.heap_gb, 1.0);
        assert_eq!(p.compression, Compression::Lzo);
        assert_eq!(p.compression.ratio(), 5.1);
    }

    #[test]
    fn quasar_h8_matches_paper_table3() {
        let p = FrameworkParams::quasar_h8();
        assert_eq!(p.mappers_per_node, 12);
        assert_eq!(p.heap_gb, 0.75);
        assert_eq!(p.compression.ratio(), 7.6);
    }

    #[test]
    fn memory_per_node_multiplies() {
        let p = FrameworkParams::hadoop_default();
        assert_eq!(p.memory_per_node_gb(), 8.0);
    }

    #[test]
    fn search_space_is_unique_and_sized() {
        let space = FrameworkParams::search_space();
        assert_eq!(space.len(), 4 * 4 * 2);
        for (i, a) in space.iter().enumerate() {
            for b in &space[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn wave_nodes_scale_with_data_and_cap() {
        assert_eq!(hadoop_wave_nodes(2.1), 2);
        assert!(hadoop_wave_nodes(10.0) >= 4);
        assert_eq!(hadoop_wave_nodes(900.0), 8);
    }

    #[test]
    fn gzip_compresses_more_but_costs_cpu() {
        assert!(Compression::Gzip.ratio() > Compression::Lzo.ratio());
        assert!(Compression::Gzip.cpu_cost() > Compression::Lzo.cpu_cost());
    }
}
