//! Request-load patterns for latency-critical services.

use std::f64::consts::TAU;

/// The offered load (QPS) of a latency-critical service as a function of
/// time, covering the traffic scenarios of the paper's evaluation: flat,
/// fluctuating, a large spike (Fig. 8), and a diurnal pattern (Fig. 9).
///
/// # Examples
///
/// ```
/// use quasar_workloads::LoadPattern;
///
/// let spike = LoadPattern::Spike {
///     base_qps: 100.0,
///     spike_qps: 400.0,
///     start_s: 1000.0,
///     duration_s: 600.0,
/// };
/// assert_eq!(spike.qps_at(0.0), 100.0);
/// assert_eq!(spike.qps_at(1200.0), 400.0);
/// assert_eq!(spike.qps_at(2000.0), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadPattern {
    /// Constant load.
    Flat {
        /// Offered load in QPS.
        qps: f64,
    },
    /// Sinusoidal fluctuation around a base load.
    Fluctuating {
        /// Mean offered load in QPS.
        base_qps: f64,
        /// Peak deviation from the mean in QPS.
        amplitude_qps: f64,
        /// Oscillation period in seconds.
        period_s: f64,
    },
    /// Flat load with one rectangular spike.
    Spike {
        /// Baseline load in QPS.
        base_qps: f64,
        /// Load during the spike in QPS.
        spike_qps: f64,
        /// Spike start time in seconds.
        start_s: f64,
        /// Spike duration in seconds.
        duration_s: f64,
    },
    /// A 24-hour diurnal pattern between a trough and a peak.
    Diurnal {
        /// Minimum offered load in QPS.
        trough_qps: f64,
        /// Maximum offered load in QPS.
        peak_qps: f64,
    },
}

impl LoadPattern {
    /// Seconds in a day, the diurnal period.
    pub const DAY_S: f64 = 86_400.0;

    /// Offered load at time `t` seconds, always non-negative.
    pub fn qps_at(&self, t: f64) -> f64 {
        let qps = match *self {
            LoadPattern::Flat { qps } => qps,
            LoadPattern::Fluctuating {
                base_qps,
                amplitude_qps,
                period_s,
            } => base_qps + amplitude_qps * (TAU * t / period_s).sin(),
            LoadPattern::Spike {
                base_qps,
                spike_qps,
                start_s,
                duration_s,
            } => {
                if t >= start_s && t < start_s + duration_s {
                    spike_qps
                } else {
                    base_qps
                }
            }
            LoadPattern::Diurnal {
                trough_qps,
                peak_qps,
            } => {
                // Peak mid-day, trough at t=0 (midnight).
                let phase = (TAU * t / LoadPattern::DAY_S - std::f64::consts::PI / 2.0).sin();
                let mid = (trough_qps + peak_qps) / 2.0;
                let amp = (peak_qps - trough_qps) / 2.0;
                mid + amp * phase
            }
        };
        qps.max(0.0)
    }

    /// The maximum load this pattern can offer at any time.
    pub fn peak_qps(&self) -> f64 {
        match *self {
            LoadPattern::Flat { qps } => qps,
            LoadPattern::Fluctuating {
                base_qps,
                amplitude_qps,
                ..
            } => base_qps + amplitude_qps.abs(),
            LoadPattern::Spike {
                base_qps,
                spike_qps,
                ..
            } => base_qps.max(spike_qps),
            LoadPattern::Diurnal { peak_qps, .. } => peak_qps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_constant() {
        let p = LoadPattern::Flat { qps: 50.0 };
        for t in [0.0, 100.0, 1e6] {
            assert_eq!(p.qps_at(t), 50.0);
        }
    }

    #[test]
    fn fluctuating_stays_within_amplitude() {
        let p = LoadPattern::Fluctuating {
            base_qps: 100.0,
            amplitude_qps: 30.0,
            period_s: 600.0,
        };
        for i in 0..200 {
            let q = p.qps_at(i as f64 * 17.0);
            assert!((70.0..=130.0).contains(&q), "q={q}");
        }
        assert_eq!(p.peak_qps(), 130.0);
    }

    #[test]
    fn diurnal_peaks_midday_troughs_midnight() {
        let p = LoadPattern::Diurnal {
            trough_qps: 10.0,
            peak_qps: 100.0,
        };
        assert!((p.qps_at(0.0) - 10.0).abs() < 1e-6);
        assert!((p.qps_at(LoadPattern::DAY_S / 2.0) - 100.0).abs() < 1e-6);
        assert!((p.qps_at(LoadPattern::DAY_S) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn load_is_never_negative() {
        let p = LoadPattern::Fluctuating {
            base_qps: 10.0,
            amplitude_qps: 50.0,
            period_s: 100.0,
        };
        for i in 0..100 {
            assert!(p.qps_at(i as f64) >= 0.0);
        }
    }
}
