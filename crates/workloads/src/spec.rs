//! Schedulable workloads: the public spec and the hidden ground truth.

use std::fmt;

use crate::class::WorkloadClass;
use crate::dataset::Dataset;
use crate::load::LoadPattern;
use crate::model::PerfModel;
use crate::target::QosTarget;

/// Unique identifier of a workload within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkloadId(pub u64);

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Scheduling priority: the paper distinguishes primary workloads with QoS
/// guarantees from best-effort fill that "may be migrated or killed at any
/// point".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Has a QoS target the manager must meet.
    Guaranteed,
    /// Soaks up idle capacity; no guarantees.
    BestEffort,
}

/// What a user submits to the cluster manager: the workload's class, its
/// dataset, and a performance target — *not* a resource reservation.
///
/// This is the only workload information a manager is allowed to see
/// up-front; everything else must be learned by profiling and
/// classification.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Identifier.
    pub id: WorkloadId,
    /// Human-readable name (e.g. `"H8"`).
    pub name: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// Dataset the workload runs on.
    pub dataset: Dataset,
    /// The performance constraint to meet.
    pub target: QosTarget,
    /// Guaranteed or best-effort.
    pub priority: Priority,
    /// Optional spending cap in dollars per hour (the cost-target
    /// extension of paper §4.4); `None` = unconstrained.
    pub cost_limit_per_hour: Option<f64>,
}

impl WorkloadSpec {
    /// Whether this workload is best-effort fill.
    pub fn is_best_effort(&self) -> bool {
        self.priority == Priority::BestEffort
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} -> {}",
            self.id, self.class, self.name, self.target
        )
    }
}

/// A complete workload: the public spec plus the hidden ground-truth
/// performance model and, for services, the offered-load pattern.
///
/// The cluster simulator holds `Workload`s; managers only ever receive
/// `&WorkloadSpec` plus measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    spec: WorkloadSpec,
    model: PerfModel,
    load: Option<LoadPattern>,
}

impl Workload {
    /// Creates a workload from its parts.
    ///
    /// # Panics
    ///
    /// Panics if a latency-critical class is missing a load pattern, if a
    /// batch class has one, or if the model kind does not match the class.
    pub fn new(spec: WorkloadSpec, model: PerfModel, load: Option<LoadPattern>) -> Workload {
        assert_eq!(
            spec.class.is_latency_critical(),
            load.is_some(),
            "latency-critical workloads need a load pattern; batch must not have one"
        );
        assert_eq!(
            spec.class.is_latency_critical(),
            matches!(model, PerfModel::Service(_)),
            "model kind must match the workload class"
        );
        Workload { spec, model, load }
    }

    /// The public spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Attaches a spending cap in dollars per hour (builder style).
    pub fn with_cost_limit(mut self, dollars_per_hour: f64) -> Workload {
        assert!(
            dollars_per_hour.is_finite() && dollars_per_hour > 0.0,
            "cost limits must be positive"
        );
        self.spec.cost_limit_per_hour = Some(dollars_per_hour);
        self
    }

    /// The workload id.
    pub fn id(&self) -> WorkloadId {
        self.spec.id
    }

    /// The ground-truth performance model. Only the simulator should call
    /// this; managers must go through measurements.
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// The offered-load pattern (services only).
    pub fn load(&self) -> Option<&LoadPattern> {
        self.load.as_ref()
    }

    /// Offered load at time `t`; zero for batch workloads.
    pub fn offered_qps(&self, t: f64) -> f64 {
        self.load.as_ref().map_or(0.0, |l| l.qps_at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BatchModel, ServiceModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batch_spec(id: u64) -> WorkloadSpec {
        WorkloadSpec {
            id: WorkloadId(id),
            name: format!("H{id}"),
            class: WorkloadClass::Hadoop,
            dataset: Dataset::new("d", 10.0, 1.0),
            target: QosTarget::completion(3600.0),
            priority: Priority::Guaranteed,
            cost_limit_per_hour: None,
        }
    }

    #[test]
    fn batch_workload_has_no_load() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = PerfModel::Batch(BatchModel::sample(
            Dataset::new("d", 10.0, 1.0),
            true,
            &mut rng,
        ));
        let w = Workload::new(batch_spec(1), model, None);
        assert_eq!(w.offered_qps(100.0), 0.0);
        assert!(w.model().as_batch().is_some());
    }

    #[test]
    #[should_panic(expected = "load pattern")]
    fn service_without_load_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = WorkloadSpec {
            class: WorkloadClass::Memcached,
            target: QosTarget::throughput(1000.0, 200.0),
            ..batch_spec(2)
        };
        let model = PerfModel::Service(ServiceModel::sample(
            Dataset::new("d", 1.0, 1.0),
            10.0,
            false,
            &mut rng,
        ));
        Workload::new(spec, model, None);
    }

    #[test]
    #[should_panic(expected = "model kind must match")]
    fn mismatched_model_kind_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = WorkloadSpec {
            class: WorkloadClass::Memcached,
            target: QosTarget::throughput(1000.0, 200.0),
            ..batch_spec(3)
        };
        let model = PerfModel::Batch(BatchModel::sample(
            Dataset::new("d", 1.0, 1.0),
            true,
            &mut rng,
        ));
        Workload::new(spec, model, Some(LoadPattern::Flat { qps: 100.0 }));
    }

    #[test]
    fn cost_limit_builder_sets_the_cap() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = PerfModel::Batch(BatchModel::sample(
            Dataset::new("d", 4.0, 1.0),
            true,
            &mut rng,
        ));
        let w = Workload::new(batch_spec(9), model, None).with_cost_limit(1.5);
        assert_eq!(w.spec().cost_limit_per_hour, Some(1.5));
    }

    #[test]
    fn best_effort_flag() {
        let mut spec = batch_spec(4);
        spec.priority = Priority::BestEffort;
        assert!(spec.is_best_effort());
    }

    #[test]
    fn display_contains_id_and_class() {
        let s = batch_spec(8);
        let text = s.to_string();
        assert!(text.contains("w8"));
        assert!(text.contains("hadoop"));
    }
}
