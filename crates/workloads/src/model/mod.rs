//! Ground-truth performance models.
//!
//! A [`PerfModel`] answers "how fast does this workload run under this
//! exact allocation and assignment?" — the quantity the real cluster would
//! exhibit and that Quasar's classifier estimates from sparse profiling.

mod batch;
mod service;

pub use batch::BatchModel;
pub use service::{ServiceModel, ServiceObservation};

use crate::platform::{Platform, LATENT_DIM};
use quasar_interference::InterferenceProfile;

/// Resources allocated to a workload on a single node.
///
/// # Examples
///
/// ```
/// use quasar_workloads::NodeResources;
///
/// let r = NodeResources::new(8, 16.0);
/// assert_eq!(r.cores, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeResources {
    /// Cores allocated on the node.
    pub cores: u32,
    /// Memory allocated on the node, in GB.
    pub memory_gb: f64,
}

impl NodeResources {
    /// Creates a per-node resource allocation.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `memory_gb` is not positive.
    pub fn new(cores: u32, memory_gb: f64) -> NodeResources {
        assert!(cores > 0, "allocations need at least one core");
        assert!(
            memory_gb.is_finite() && memory_gb > 0.0,
            "allocations need positive memory"
        );
        NodeResources { cores, memory_gb }
    }

    /// The full resources of a platform.
    pub fn all_of(platform: &Platform) -> NodeResources {
        NodeResources::new(platform.cores, platform.memory_gb)
    }
}

/// Platform affinity in `[0, 1]` from the latent vectors of a workload and
/// a platform. This is what makes the workload × configuration performance
/// matrices approximately low-rank — the structure collaborative filtering
/// recovers (paper §3.2).
pub(crate) fn affinity(weights: &[f64; LATENT_DIM], platform: &Platform) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0.5;
    }
    let dot: f64 = weights
        .iter()
        .zip(platform.latent.iter())
        .map(|(w, l)| w * l)
        .sum();
    (dot / total).clamp(0.0, 1.0)
}

/// Relative speed of `platform` for a workload with the given latent
/// weights: per-core speed scaled by microarchitectural affinity.
///
/// The affinity band (0.55–1.20) is calibrated so a workload's per-core
/// spread across platforms is ~2x from affinity and ~3x from clock/IPC,
/// with core count adding the rest of Fig. 2's ~7x node-level spread.
pub(crate) fn platform_speed(weights: &[f64; LATENT_DIM], platform: &Platform) -> f64 {
    platform.core_speed * (0.55 + 0.65 * affinity(weights, platform))
}

/// The four resource-usage archetypes that interference profiles mix:
/// compute-, memory-, storage-, and network-bound. Per shared resource
/// (index order of [`quasar_interference::SharedResource::ALL`]), the
/// value is how intensely that archetype exercises the resource.
///
/// Real workloads are approximate mixtures of a few such behaviours —
/// which is exactly the low-rank structure that lets collaborative
/// filtering recover a full interference profile from two microbenchmark
/// ramps (paper §3.2; Paragon's key observation).
const ARCHETYPES: [[f64; quasar_interference::RESOURCE_COUNT]; 4] = [
    // cpu   l1i   l2    llc   membw memcap prefetch disk  net   tlb
    [0.90, 0.55, 0.60, 0.35, 0.25, 0.15, 0.45, 0.05, 0.10, 0.35], // compute
    [0.30, 0.25, 0.55, 0.85, 0.90, 0.70, 0.60, 0.05, 0.10, 0.45], // memory
    [0.15, 0.10, 0.15, 0.25, 0.30, 0.40, 0.10, 0.95, 0.20, 0.10], // storage
    [0.30, 0.15, 0.15, 0.20, 0.25, 0.15, 0.10, 0.10, 0.95, 0.10], // network
];

/// Samples an interference profile as a noisy archetype mixture.
///
/// `usage` scales the pressure the workload causes (0–1); `fragility`
/// scales how far below the no-impact point its tolerances sit (services
/// pass a higher fragility than batch jobs).
pub(crate) fn sample_interference<R: rand::Rng + ?Sized>(
    rng: &mut R,
    usage: f64,
    fragility: f64,
) -> InterferenceProfile {
    use quasar_interference::{PressureVector, SharedResource};

    // Mixture weights: skewed so most workloads have one dominant
    // behaviour plus a secondary one.
    let mut weights = [0.0; 4];
    for w in &mut weights {
        *w = rng.random_range(0.0_f64..1.0).powi(2);
    }
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total.max(1e-9);
    }

    let mut tolerated = PressureVector::zero();
    let mut caused = PressureVector::zero();
    for r in SharedResource::ALL {
        let i = r.index();
        let vulnerability: f64 = (0..4).map(|k| weights[k] * ARCHETYPES[k][i]).sum();
        let noise = rng.random_range(-4.0..4.0);
        tolerated.set(
            r,
            (100.0 * (1.0 - fragility * vulnerability) + noise).clamp(5.0, 98.0),
        );
        let noise = rng.random_range(-3.0..3.0);
        caused.set(r, (100.0 * usage * vulnerability + noise).clamp(0.0, 85.0));
    }
    InterferenceProfile::new(tolerated, caused)
}

/// The ground-truth performance surface of one workload instance.
///
/// Batch jobs expose a *work rate* (work units per second; completion time
/// = remaining work / rate); services expose a QPS capacity and a
/// latency-vs-load curve.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfModel {
    /// A run-to-completion analytics or single-node job.
    Batch(BatchModel),
    /// A latency-critical request-serving workload.
    Service(ServiceModel),
}

impl PerfModel {
    /// The workload's interference profile (caused and tolerated pressure).
    pub fn interference(&self) -> &InterferenceProfile {
        match self {
            PerfModel::Batch(m) => m.interference(),
            PerfModel::Service(m) => m.interference(),
        }
    }

    /// The batch model, if this is a batch workload.
    pub fn as_batch(&self) -> Option<&BatchModel> {
        match self {
            PerfModel::Batch(m) => Some(m),
            PerfModel::Service(_) => None,
        }
    }

    /// The service model, if this is a service workload.
    pub fn as_service(&self) -> Option<&ServiceModel> {
        match self {
            PerfModel::Batch(_) => None,
            PerfModel::Service(m) => Some(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformCatalog;

    #[test]
    fn affinity_is_bounded() {
        let cat = PlatformCatalog::local();
        let w = [1.0, 0.5, 0.0, 0.2, 0.9, 0.1];
        for p in cat.iter() {
            let a = affinity(&w, p);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn zero_weights_fall_back_to_neutral() {
        let cat = PlatformCatalog::local();
        let w = [0.0; LATENT_DIM];
        assert_eq!(affinity(&w, cat.highest_end()), 0.5);
    }

    #[test]
    fn platform_speed_tracks_core_speed() {
        let cat = PlatformCatalog::local();
        let w = [1.0; LATENT_DIM];
        let slow = cat.by_name("A").unwrap();
        let fast = cat.by_name("J").unwrap();
        assert!(platform_speed(&w, fast) > platform_speed(&w, slow));
    }

    #[test]
    fn node_resources_validation() {
        let r = NodeResources::new(2, 4.0);
        assert_eq!(r.memory_gb, 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        NodeResources::new(0, 4.0);
    }
}
