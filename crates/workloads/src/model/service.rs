//! Ground-truth model for latency-critical services.

use rand::Rng;

use quasar_interference::{InterferenceProfile, PressureVector};

use crate::dataset::Dataset;
use crate::model::{platform_speed, NodeResources};
use crate::platform::{Platform, LATENT_DIM};
use crate::target::QosTarget;

/// Latency multiplier applied when a service is driven past saturation.
const OVERLOAD_LATENCY_FACTOR: f64 = 60.0;

/// Utilization cap used in the latency law to avoid division blow-up.
const MAX_RHO: f64 = 0.995;

/// What a load generator measures from a running service over a window:
/// achieved throughput and the latency distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceObservation {
    /// Load offered by clients during the window, in QPS.
    pub offered_qps: f64,
    /// Load actually served, in QPS (≤ offered).
    pub achieved_qps: f64,
    /// Mean request latency in microseconds.
    pub mean_latency_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_latency_us: f64,
    /// Utilization of the allocated capacity in `[0, 1]`.
    pub utilization: f64,
}

impl ServiceObservation {
    /// An observation of a service with no capacity at all.
    pub fn starved(offered_qps: f64) -> ServiceObservation {
        ServiceObservation {
            offered_qps,
            achieved_qps: 0.0,
            mean_latency_us: f64::INFINITY,
            p99_latency_us: f64::INFINITY,
            utilization: 1.0,
        }
    }

    /// Whether this window met a throughput + tail-latency target.
    ///
    /// Follows the paper's accounting: the fraction of queries meeting QoS
    /// is tracked per window; a window counts as meeting QoS when it
    /// served the offered load (to within measurement tolerance — achieved
    /// throughput is a noisy measurement) within the latency bound.
    pub fn meets(&self, target: &QosTarget) -> bool {
        match *target {
            QosTarget::Throughput { p99_latency_us, .. } => {
                self.achieved_qps >= self.offered_qps * 0.95
                    && self.p99_latency_us <= p99_latency_us
            }
            QosTarget::CompletionTime { .. } | QosTarget::Ips { .. } => false,
        }
    }
}

/// Ground truth for a latency-critical service: per-node QPS capacity as a
/// function of platform, scale-up, memory fit, and interference, plus a
/// queueing-style latency law whose knee moves with capacity — matching
/// the memcached curves of Figure 2 (bottom row).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceModel {
    latent: [f64; LATENT_DIM],
    /// QPS one baseline core can serve in isolation.
    base_qps_per_core: f64,
    /// Core scaling exponent within a node.
    alpha: f64,
    /// Zero-load mean service latency, in microseconds.
    service_time_us: f64,
    /// Tail inflation: p99 = mean × (tail_base + tail_slope × ρ⁴).
    tail_base: f64,
    /// See `tail_base`.
    tail_slope: f64,
    /// Total dataset/state size in GB (0 for stateless tiers).
    state_gb: f64,
    /// Penalty exponent when per-node memory does not hold its shard.
    miss_beta: f64,
    /// Whether capacity is disk-bound (Cassandra) or memory-bound.
    disk_bound: bool,
    dataset: Dataset,
    interference: InterferenceProfile,
}

impl ServiceModel {
    /// Samples a service model.
    ///
    /// `state_gb` is the total stored state (1 TB memcached / 4 TB
    /// Cassandra in the paper's Fig. 9 scenario); `disk_bound` selects
    /// Cassandra-style disk-limited capacity with millisecond latencies
    /// versus memcached-style microsecond latencies.
    pub fn sample<R: Rng + ?Sized>(
        dataset: Dataset,
        state_gb: f64,
        disk_bound: bool,
        rng: &mut R,
    ) -> ServiceModel {
        let mut latent = [0.0; LATENT_DIM];
        for l in &mut latent {
            *l = rng.random_range(0.05..1.0);
        }

        // Services are tail-latency sensitive: higher fragility than
        // batch jobs; disk-bound stores skew toward the storage archetype
        // through their usage intensity.
        let usage = rng.random_range(0.2..0.6);
        let fragility = rng.random_range(0.75..1.0);
        let interference = crate::model::sample_interference(rng, usage, fragility);

        // Calibrated so that the zero-load p99 (service time × complexity
        // effect × tail base) sits well under the class latency bounds
        // (200 µs memcached, 30 ms Cassandra): the knee of Fig. 2 exists
        // at a non-trivial load for every sampled instance.
        let (base_qps_per_core, service_time_us) = if disk_bound {
            (
                rng.random_range(300.0..700.0),
                rng.random_range(2_000.0..6_000.0),
            )
        } else {
            (
                rng.random_range(15_000.0..35_000.0),
                rng.random_range(20.0..50.0),
            )
        };

        ServiceModel {
            latent,
            base_qps_per_core,
            alpha: rng.random_range(0.75..0.95),
            service_time_us,
            tail_base: rng.random_range(1.4..2.2),
            tail_slope: rng.random_range(8.0..20.0),
            state_gb,
            miss_beta: rng.random_range(0.3..0.8),
            disk_bound,
            dataset,
            interference,
        }
    }

    /// The service's interference profile.
    pub fn interference(&self) -> &InterferenceProfile {
        &self.interference
    }

    /// Total stored state in GB.
    pub fn state_gb(&self) -> f64 {
        self.state_gb
    }

    /// Whether the service is disk-bound.
    pub fn disk_bound(&self) -> bool {
        self.disk_bound
    }

    /// The dataset (request mix) this service serves.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// QPS capacity of a single node under the given allocation and
    /// external pressure, assuming the service's state is spread over
    /// `nodes_in_service` nodes.
    pub fn node_capacity(
        &self,
        platform: &Platform,
        res: NodeResources,
        pressure: &PressureVector,
        nodes_in_service: usize,
    ) -> f64 {
        let speed = platform_speed(&self.latent, platform);
        let core_factor = (res.cores as f64).powf(self.alpha);

        // Shard fit: when the per-node shard exceeds allocated memory,
        // misses (memcached) or cache pressure (Cassandra) cut capacity.
        let shard_gb = self.state_gb / nodes_in_service.max(1) as f64;
        let hot_gb = if self.disk_bound {
            // Disk-backed stores only need the hot set resident.
            shard_gb * 0.05
        } else {
            shard_gb
        };
        let mem_factor = if hot_gb <= res.memory_gb || hot_gb == 0.0 {
            1.0
        } else {
            (res.memory_gb / hot_gb).powf(self.miss_beta).max(0.15)
        };

        let penalty = self.interference.penalty(pressure);
        self.base_qps_per_core * speed * core_factor * mem_factor * penalty
            / self.dataset.complexity()
    }

    /// Total capacity of a set of per-node allocations.
    pub fn total_capacity(&self, allocs: &[(&Platform, NodeResources, PressureVector)]) -> f64 {
        let n = allocs.len();
        allocs
            .iter()
            .map(|(p, r, pr)| self.node_capacity(p, *r, pr, n))
            .sum()
    }

    /// Observes the service over a measurement window: clients offer
    /// `offered_qps`, the allocation serves what it can, and latency
    /// follows a utilization law with a knee (mean = service-time /
    /// (1 − ρ); p99 = mean × tail(ρ)).
    pub fn observe(
        &self,
        offered_qps: f64,
        allocs: &[(&Platform, NodeResources, PressureVector)],
    ) -> ServiceObservation {
        let capacity = self.total_capacity(allocs);
        if capacity <= 0.0 {
            return ServiceObservation::starved(offered_qps);
        }
        let rho = (offered_qps / capacity).max(0.0);
        let achieved = offered_qps.min(capacity);

        // Effective base service time rises with interference and slower
        // platforms: use the capacity-weighted average penalty.
        let n = allocs.len();
        let mut weighted_slow = 0.0;
        for (p, r, pr) in allocs {
            let cap = self.node_capacity(p, *r, pr, n);
            let slow = 1.0 / self.interference.penalty(pr).max(0.05);
            weighted_slow += cap * slow;
        }
        let slow_factor = (weighted_slow / capacity).max(1.0);
        let base = self.service_time_us * self.dataset.complexity().sqrt() * slow_factor;

        let (mean, p99) = if rho >= 1.0 {
            let m = base * OVERLOAD_LATENCY_FACTOR;
            (m, m * (self.tail_base + self.tail_slope))
        } else {
            let r = rho.min(MAX_RHO);
            let m = base / (1.0 - r);
            (m, m * (self.tail_base + self.tail_slope * r.powi(4)))
        };

        ServiceObservation {
            offered_qps,
            achieved_qps: achieved,
            mean_latency_us: mean,
            p99_latency_us: p99,
            utilization: rho.min(1.0),
        }
    }

    /// The largest QPS this allocation can serve with p99 at or below
    /// `p99_bound_us` — the knee of the latency-throughput curve.
    pub fn knee_qps(
        &self,
        allocs: &[(&Platform, NodeResources, PressureVector)],
        p99_bound_us: f64,
    ) -> f64 {
        let capacity = self.total_capacity(allocs);
        if capacity <= 0.0 {
            return 0.0;
        }
        // Bisect on offered load.
        let (mut lo, mut hi) = (0.0, capacity);
        for _ in 0..50 {
            let mid = (lo + hi) / 2.0;
            let obs = self.observe(mid, allocs);
            if obs.p99_latency_us <= p99_bound_us {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformCatalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn memcached(seed: u64) -> ServiceModel {
        let mut rng = StdRng::seed_from_u64(seed);
        ServiceModel::sample(Dataset::new("100B-reads", 1.0, 1.0), 64.0, false, &mut rng)
    }

    fn full_alloc(p: &Platform) -> (&Platform, NodeResources, PressureVector) {
        (p, NodeResources::all_of(p), PressureVector::zero())
    }

    #[test]
    fn latency_rises_with_load() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let m = memcached(1);
        let allocs = [full_alloc(p)];
        let cap = m.total_capacity(&allocs);
        let mut last = 0.0;
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let obs = m.observe(cap * frac, &allocs);
            assert!(obs.p99_latency_us > last, "latency must rise with load");
            last = obs.p99_latency_us;
        }
    }

    #[test]
    fn overload_caps_throughput_and_blows_latency() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let m = memcached(2);
        let allocs = [full_alloc(p)];
        let cap = m.total_capacity(&allocs);
        let obs = m.observe(cap * 2.0, &allocs);
        assert!((obs.achieved_qps - cap).abs() < 1e-6);
        assert!(obs.p99_latency_us > m.observe(cap * 0.5, &allocs).p99_latency_us * 10.0);
    }

    #[test]
    fn more_nodes_give_more_capacity() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let m = memcached(3);
        let one = m.total_capacity(&[full_alloc(p)]);
        let four: Vec<_> = (0..4).map(|_| full_alloc(p)).collect();
        assert!(m.total_capacity(&four) > one * 3.0);
    }

    #[test]
    fn shard_that_does_not_fit_cuts_capacity() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end(); // 48 GB
        let mut rng = StdRng::seed_from_u64(4);
        // 1 TB of state on one 48 GB node: shard cannot fit.
        let m = ServiceModel::sample(Dataset::new("d", 1.0, 1.0), 1024.0, false, &mut rng);
        let starved = m.node_capacity(p, NodeResources::all_of(p), &PressureVector::zero(), 1);
        let fitted = m.node_capacity(p, NodeResources::all_of(p), &PressureVector::zero(), 64);
        assert!(starved < fitted * 0.5, "shard miss penalty must apply");
    }

    #[test]
    fn interference_moves_the_knee() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let m = memcached(5);
        let quiet = [full_alloc(p)];
        let noisy = [(p, NodeResources::all_of(p), PressureVector::uniform(90.0))];
        let knee_quiet = m.knee_qps(&quiet, 1000.0);
        let knee_noisy = m.knee_qps(&noisy, 1000.0);
        assert!(
            knee_noisy < knee_quiet * 0.8,
            "interference must shift the knee left: {knee_quiet} -> {knee_noisy}"
        );
    }

    #[test]
    fn knee_respects_latency_bound() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let m = memcached(6);
        let allocs = [full_alloc(p)];
        let knee = m.knee_qps(&allocs, 800.0);
        let obs = m.observe(knee, &allocs);
        assert!(obs.p99_latency_us <= 800.0 * 1.01);
    }

    #[test]
    fn meets_checks_both_throughput_and_latency() {
        let target = QosTarget::throughput(1000.0, 500.0);
        let good = ServiceObservation {
            offered_qps: 1000.0,
            achieved_qps: 1000.0,
            mean_latency_us: 100.0,
            p99_latency_us: 400.0,
            utilization: 0.5,
        };
        assert!(good.meets(&target));
        let slow = ServiceObservation {
            p99_latency_us: 900.0,
            ..good
        };
        assert!(!slow.meets(&target));
        let dropped = ServiceObservation {
            achieved_qps: 500.0,
            ..good
        };
        assert!(!dropped.meets(&target));
        // Small measurement noise on achieved throughput is tolerated.
        let noisy = ServiceObservation {
            achieved_qps: 970.0,
            ..good
        };
        assert!(noisy.meets(&target));
    }

    #[test]
    fn starved_observation_is_infinite_latency() {
        let m = memcached(7);
        let obs = m.observe(100.0, &[]);
        assert_eq!(obs.achieved_qps, 0.0);
        assert!(obs.p99_latency_us.is_infinite());
        assert!(!obs.meets(&QosTarget::throughput(100.0, 1e9)));
    }
}
