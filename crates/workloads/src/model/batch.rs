//! Ground-truth model for run-to-completion (batch) workloads.

use rand::Rng;

use quasar_interference::{InterferenceProfile, PressureVector};

use crate::dataset::Dataset;
use crate::framework::FrameworkParams;
use crate::model::{platform_speed, NodeResources};
use crate::platform::{Platform, LATENT_DIM};

/// Ground truth for a batch job: how many work units per second it
/// completes under any allocation/assignment, including framework
/// parameter effects, memory cliffs, sub/super-linear scale-out, and
/// interference.
///
/// All the knobs are sampled per instance from class-specific priors (see
/// [`crate::generate`]), giving each job its own response surface, as in
/// Figure 2 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchModel {
    latent: [f64; LATENT_DIM],
    /// Core-count scaling exponent within a node (`cores^alpha`).
    alpha: f64,
    /// Cores beyond this limit contribute nothing (serial bottleneck).
    parallel_limit: u32,
    /// Total working set in GB (scales with the dataset).
    working_set_gb: f64,
    /// Fixed per-node memory need in GB (runtime, code, buffers).
    fixed_memory_gb: f64,
    /// Memory-cliff exponent: rate × (mem/need)^beta when short.
    mem_beta: f64,
    /// Scale-out exponent: total rate × n^(gamma - 1).
    gamma: f64,
    /// Rate multiplier when the aggregate memory fits the working set.
    in_memory_bonus: f64,
    /// Fraction of time spent in I/O (compression trade-off).
    io_fraction: f64,
    /// How well mappers tolerate each other on a node, in `[0, 1]`.
    mapper_compat: f64,
    /// Heap each task needs to avoid GC churn, in GB.
    heap_need_gb: f64,
    /// Whether framework parameters apply (Hadoop/Spark/Storm).
    uses_framework: bool,
    dataset: Dataset,
    total_work: f64,
    interference: InterferenceProfile,
}

/// Builder-style constructor parameters for [`BatchModel::sample`].
struct Priors {
    alpha: (f64, f64),
    gamma: (f64, f64),
    ws_fraction: (f64, f64),
    in_memory_bonus: (f64, f64),
    io_fraction: (f64, f64),
}

impl BatchModel {
    /// Samples a batch model from class-appropriate priors.
    ///
    /// `distributed` selects analytics-style priors (wide scale-out range,
    /// I/O fractions that make compression matter) versus single-node
    /// priors.
    pub fn sample<R: Rng + ?Sized>(dataset: Dataset, distributed: bool, rng: &mut R) -> BatchModel {
        let priors = if distributed {
            Priors {
                alpha: (0.55, 0.95),
                gamma: (0.65, 1.0),
                ws_fraction: (0.3, 1.2),
                in_memory_bonus: (1.0, 1.3),
                io_fraction: (0.15, 0.55),
            }
        } else {
            Priors {
                alpha: (0.35, 0.9),
                gamma: (1.0, 1.0),
                ws_fraction: (0.05, 0.4),
                in_memory_bonus: (1.0, 1.0),
                io_fraction: (0.0, 0.2),
            }
        };

        let mut latent = [0.0; LATENT_DIM];
        for l in &mut latent {
            *l = rng.random_range(0.05..1.0);
        }

        let working_set_gb =
            dataset.size_gb() * rng.random_range(priors.ws_fraction.0..=priors.ws_fraction.1);

        // Interference: an archetype mixture (see `sample_interference`),
        // giving the profile matrix the low-rank structure CF exploits.
        let usage = rng.random_range(0.3..0.8);
        let fragility = rng.random_range(0.5..0.95);
        let interference = crate::model::sample_interference(rng, usage, fragility);

        BatchModel {
            latent,
            alpha: rng.random_range(priors.alpha.0..=priors.alpha.1),
            parallel_limit: if distributed {
                rng.random_range(16..=64)
            } else {
                rng.random_range(1..=16)
            },
            working_set_gb,
            fixed_memory_gb: rng.random_range(0.5..2.0),
            mem_beta: rng.random_range(0.25..0.8),
            gamma: rng.random_range(priors.gamma.0..=priors.gamma.1),
            in_memory_bonus: rng.random_range(priors.in_memory_bonus.0..=priors.in_memory_bonus.1),
            io_fraction: rng.random_range(priors.io_fraction.0..=priors.io_fraction.1),
            mapper_compat: rng.random_range(0.2..1.0),
            heap_need_gb: rng.random_range(0.4..1.2),
            uses_framework: distributed,
            dataset,
            total_work: 1.0,
            interference,
        }
    }

    /// Fixes the job size so that running on `nodes` copies of `platform`
    /// at full resources with default framework parameters takes
    /// `duration_s` seconds.
    pub fn calibrate_work(&mut self, platform: &Platform, nodes: usize, duration_s: f64) {
        assert!(duration_s > 0.0, "duration must be positive");
        self.total_work = 1.0;
        let allocs: Vec<(&Platform, NodeResources, PressureVector)> = (0..nodes)
            .map(|_| {
                (
                    platform,
                    NodeResources::all_of(platform),
                    PressureVector::zero(),
                )
            })
            .collect();
        let rate = self.cluster_rate(&allocs, &FrameworkParams::default());
        self.total_work = rate * duration_s;
    }

    /// Total work units of the job.
    pub fn total_work(&self) -> f64 {
        self.total_work
    }

    /// The dataset this job processes.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The job's interference profile.
    pub fn interference(&self) -> &InterferenceProfile {
        &self.interference
    }

    /// Whether framework parameters (mappers, heap, compression) affect
    /// this job.
    pub fn uses_framework(&self) -> bool {
        self.uses_framework
    }

    /// Number of map tasks implied by the dataset and block size.
    pub fn num_tasks(&self, params: &FrameworkParams) -> usize {
        ((self.dataset.size_gb() * 1024.0 / params.block_size_mb as f64).ceil() as usize).max(1)
    }

    /// Work rate (work units/second) of one node, given the job runs on
    /// `nodes_in_job` nodes total (which determines the per-node working
    /// set).
    pub fn node_rate(
        &self,
        platform: &Platform,
        res: NodeResources,
        params: &FrameworkParams,
        pressure: &PressureVector,
        nodes_in_job: usize,
    ) -> f64 {
        let speed = platform_speed(&self.latent, platform);
        // A framework job can run at most `mappers_per_node` tasks, so
        // extra cores beyond the task count sit idle (they never hurt).
        let task_slots = if self.uses_framework {
            params.mappers_per_node.max(1)
        } else {
            res.cores
        };
        let useful_cores = res.cores.min(task_slots).min(self.parallel_limit).max(1) as f64;
        let core_factor = useful_cores.powf(self.alpha);

        let ws_per_node = self.working_set_gb / nodes_in_job.max(1) as f64 + self.fixed_memory_gb;
        let mem_for_work = if self.uses_framework {
            // Framework tasks consume heap; what's left feeds the page
            // cache / working set.
            (res.memory_gb - params.memory_per_node_gb() * 0.25).max(res.memory_gb * 0.25)
        } else {
            res.memory_gb
        };
        let mem_factor = if mem_for_work >= ws_per_node {
            1.0
        } else {
            (mem_for_work / ws_per_node).powf(self.mem_beta).max(0.2)
        };

        let framework_factor = if self.uses_framework {
            self.framework_factor(res.cores, params)
        } else {
            1.0
        };

        let penalty = self.interference.penalty(pressure);
        speed
            * core_factor
            * mem_factor
            * framework_factor
            * penalty
            * self.dataset.complexity().recip()
    }

    /// Effect of the framework parameters on per-node throughput.
    fn framework_factor(&self, cores: u32, params: &FrameworkParams) -> f64 {
        // Undersubscription (fewer mappers than cores) is handled by the
        // effective-parallelism term in `node_rate`; here only
        // oversubscription matters: extra mappers help if tasks tolerate
        // each other (I/O overlap), then degrade.
        let c = cores as f64;
        let m = params.mappers_per_node as f64;
        let mapper_factor = if m <= c {
            1.0
        } else {
            let oversub = (m - c) / c;
            let overlap_gain = 1.0 + 0.25 * self.mapper_compat * oversub.min(1.0);
            let thrash = 1.0 + (1.0 - self.mapper_compat) * oversub;
            (overlap_gain / thrash).min(1.3)
        };

        // Heap: below the per-task need, GC churn; above, no speed gain.
        let heap_factor = (params.heap_gb / self.heap_need_gb).min(1.0).powf(0.6);

        // Compression: shrinks the I/O share, costs CPU on the rest.
        let cpu_time = (1.0 - self.io_fraction) * params.compression.cpu_cost();
        let io_time = self.io_fraction / params.compression.ratio();
        let compression_factor = 1.0 / (cpu_time + io_time);

        mapper_factor * heap_factor * compression_factor
    }

    /// Total work rate of a set of per-node allocations.
    ///
    /// The sum of node rates is scaled by `n^(gamma-1)` (coordination
    /// overhead) and by the in-memory bonus when the aggregate memory
    /// holds the working set — which is how superlinear scale-out arises
    /// (Fig. 2, scale-out panel).
    pub fn cluster_rate(
        &self,
        allocs: &[(&Platform, NodeResources, PressureVector)],
        params: &FrameworkParams,
    ) -> f64 {
        if allocs.is_empty() {
            return 0.0;
        }
        let n = allocs.len();
        let base: f64 = allocs
            .iter()
            .map(|(p, r, pr)| self.node_rate(p, *r, params, pr, n))
            .sum();
        let scaleout = (n as f64).powf(self.gamma - 1.0);
        let total_mem: f64 = allocs.iter().map(|(_, r, _)| r.memory_gb).sum();
        let bonus = if total_mem >= self.working_set_gb * 1.1 {
            self.in_memory_bonus
        } else {
            1.0
        };
        base * scaleout * bonus
    }

    /// Completion time in seconds for `work` remaining work units at the
    /// given allocation; `None` if the rate is zero.
    pub fn completion_time(
        &self,
        work: f64,
        allocs: &[(&Platform, NodeResources, PressureVector)],
        params: &FrameworkParams,
    ) -> Option<f64> {
        let rate = self.cluster_rate(allocs, params);
        if rate <= 0.0 {
            None
        } else {
            Some(work / rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformCatalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> BatchModel {
        let mut rng = StdRng::seed_from_u64(seed);
        BatchModel::sample(Dataset::new("test", 10.0, 1.0), true, &mut rng)
    }

    fn alloc(platform: &Platform) -> (&Platform, NodeResources, PressureVector) {
        (
            platform,
            NodeResources::all_of(platform),
            PressureVector::zero(),
        )
    }

    #[test]
    fn more_cores_never_slower() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let m = model(1);
        let params = FrameworkParams::default();
        let mut last = 0.0;
        for cores in 1..=p.cores {
            let rate = m.node_rate(
                p,
                NodeResources::new(cores, p.memory_gb),
                &params,
                &PressureVector::zero(),
                1,
            );
            assert!(rate >= last, "rate must be monotone in cores");
            last = rate;
        }
    }

    #[test]
    fn memory_cliff_slows_job() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let m = model(2);
        let params = FrameworkParams::default();
        let full = m.node_rate(
            p,
            NodeResources::new(8, 48.0),
            &params,
            &PressureVector::zero(),
            1,
        );
        let starved = m.node_rate(
            p,
            NodeResources::new(8, 1.0),
            &params,
            &PressureVector::zero(),
            1,
        );
        assert!(starved < full, "memory starvation must slow the job");
    }

    #[test]
    fn interference_slows_job() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let m = model(3);
        let params = FrameworkParams::default();
        let quiet = m.node_rate(
            p,
            NodeResources::all_of(p),
            &params,
            &PressureVector::zero(),
            1,
        );
        let noisy = m.node_rate(
            p,
            NodeResources::all_of(p),
            &params,
            &PressureVector::uniform(95.0),
            1,
        );
        assert!(noisy < quiet);
    }

    #[test]
    fn calibrated_work_hits_duration() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let mut m = model(4);
        m.calibrate_work(p, 4, 3600.0);
        let allocs: Vec<_> = (0..4).map(|_| alloc(p)).collect();
        let t = m
            .completion_time(m.total_work(), &allocs, &FrameworkParams::default())
            .unwrap();
        assert!((t - 3600.0).abs() < 1.0, "calibrated completion {t}");
    }

    #[test]
    fn scale_out_increases_rate() {
        let cat = PlatformCatalog::local();
        let p = cat.highest_end();
        let m = model(5);
        let params = FrameworkParams::default();
        let r1 = m.cluster_rate(&[alloc(p)], &params);
        let allocs4: Vec<_> = (0..4).map(|_| alloc(p)).collect();
        let r4 = m.cluster_rate(&allocs4, &params);
        assert!(r4 > r1 * 1.5, "scale-out must help: {r1} -> {r4}");
    }

    #[test]
    fn heterogeneity_spread_is_significant() {
        // Across many sampled jobs, the best platform should be several
        // times faster than the worst at full allocation (Fig. 2: up to 7x).
        let cat = PlatformCatalog::local();
        let params = FrameworkParams::default();
        let mut max_spread: f64 = 0.0;
        for seed in 0..20 {
            let m = model(seed);
            let rates: Vec<f64> = cat
                .iter()
                .map(|p| {
                    m.node_rate(
                        p,
                        NodeResources::all_of(p),
                        &params,
                        &PressureVector::zero(),
                        1,
                    )
                })
                .collect();
            let hi = rates.iter().cloned().fold(f64::MIN, f64::max);
            let lo = rates.iter().cloned().fold(f64::MAX, f64::min);
            max_spread = max_spread.max(hi / lo);
        }
        assert!(
            max_spread > 4.0,
            "expected >4x heterogeneity spread, got {max_spread:.1}x"
        );
    }

    #[test]
    fn num_tasks_scales_with_dataset() {
        let m = model(6);
        let p64 = FrameworkParams::default();
        assert_eq!(m.num_tasks(&p64), (10.0f64 * 1024.0 / 64.0).ceil() as usize);
    }

    #[test]
    fn empty_allocation_has_zero_rate() {
        let m = model(7);
        assert_eq!(m.cluster_rate(&[], &FrameworkParams::default()), 0.0);
        assert_eq!(
            m.completion_time(1.0, &[], &FrameworkParams::default()),
            None
        );
    }
}
