//! Platform catalogs, datasets, and ground-truth workload performance
//! models for the Quasar reproduction.
//!
//! The Quasar paper evaluates on real clusters running Hadoop, Storm,
//! Spark, memcached, Cassandra, a HotCRP web stack, and hundreds of
//! single-node benchmarks. This crate is the simulated substitute: a
//! *parametric performance physics* that reproduces the response surfaces
//! of Figure 2 — up to ~7x spread across server platforms, up to ~10x
//! slowdown under adversarial interference, sub- and super-linear
//! scale-out, memory cliffs on scale-up, and dataset-dependent knees in the
//! QPS/latency curves of latency-critical services.
//!
//! The key contract: the manager under test (Quasar or a baseline) never
//! reads these models directly. It observes performance through the
//! cluster simulator's measurement APIs, exactly like the real system
//! profiles real workloads.
//!
//! Main types:
//!
//! * [`Platform`] / [`PlatformCatalog`] — the 10 local server configs of
//!   Table 1 and a 14-type EC2-like fleet.
//! * [`Dataset`] — input datasets with size and complexity.
//! * [`WorkloadClass`] — Hadoop/Storm/Spark batch, single-node batch,
//!   memcached/Cassandra/webserver services.
//! * [`PerfModel`] — the ground-truth performance surface of one workload.
//! * [`Workload`] / [`WorkloadSpec`] — a schedulable workload: the public
//!   spec (what a user submits: class + QoS target) plus the hidden model.
//! * [`LoadPattern`] — flat/fluctuating/spike/diurnal request loads.
//! * [`generate`] — seeded generators for every evaluation scenario.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod dataset;
mod framework;
pub mod generate;
mod load;
mod model;
mod platform;
mod spec;
mod target;

pub use class::WorkloadClass;
pub use dataset::Dataset;
pub use framework::{hadoop_wave_nodes, Compression, FrameworkParams};
pub use load::LoadPattern;
pub use model::{BatchModel, NodeResources, PerfModel, ServiceModel, ServiceObservation};
pub use platform::{Platform, PlatformCatalog, PlatformId};
pub use spec::{Priority, Workload, WorkloadId, WorkloadSpec};
pub use target::QosTarget;
