//! Input datasets.

use std::fmt;

/// An input dataset for a workload: the paper shows (Fig. 2, rightmost
/// column) that dataset size and complexity shift performance by up to 3x,
/// which is why Quasar classifies every submission with its actual dataset
/// rather than caching per-application results.
///
/// # Examples
///
/// ```
/// use quasar_workloads::Dataset;
///
/// let netflix = Dataset::hadoop_catalog()[0].clone();
/// assert_eq!(netflix.name(), "netflix");
/// assert!(netflix.size_gb() > 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    size_gb: f64,
    complexity: f64,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// `complexity` is a relative per-byte processing cost (1.0 =
    /// baseline); it multiplies the work a batch job must do and the
    /// per-request cost of a service.
    ///
    /// # Panics
    ///
    /// Panics if `size_gb` or `complexity` is not positive and finite.
    pub fn new(name: impl Into<String>, size_gb: f64, complexity: f64) -> Dataset {
        assert!(
            size_gb.is_finite() && size_gb > 0.0,
            "dataset size must be positive"
        );
        assert!(
            complexity.is_finite() && complexity > 0.0,
            "dataset complexity must be positive"
        );
        Dataset {
            name: name.into(),
            size_gb,
            complexity,
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size in GB.
    pub fn size_gb(&self) -> f64 {
        self.size_gb
    }

    /// Relative per-byte processing cost.
    pub fn complexity(&self) -> f64 {
        self.complexity
    }

    /// Total relative work implied by this dataset (size × complexity).
    pub fn work_scale(&self) -> f64 {
        self.size_gb * self.complexity
    }

    /// The three Hadoop datasets of Table 1: Netflix (2.1 GB), Mahout
    /// (10 GB), Wikipedia (55 GB).
    pub fn hadoop_catalog() -> Vec<Dataset> {
        vec![
            Dataset::new("netflix", 2.1, 1.6),
            Dataset::new("mahout", 10.0, 1.0),
            Dataset::new("wikipedia", 55.0, 0.7),
        ]
    }

    /// The three memcached request mixes of Table 1: 100 B reads, 2 KB
    /// reads, 100 B read/write. Size models the per-request payload cost;
    /// complexity the read/write mix overhead.
    pub fn memcached_catalog() -> Vec<Dataset> {
        vec![
            Dataset::new("100B-reads", 1.0, 1.0),
            Dataset::new("2KB-reads", 2.0, 1.4),
            Dataset::new("100B-read-write", 1.0, 1.8),
        ]
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.1}GB)", self.name, self.size_gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_have_three_entries() {
        assert_eq!(Dataset::hadoop_catalog().len(), 3);
        assert_eq!(Dataset::memcached_catalog().len(), 3);
    }

    #[test]
    fn work_scale_multiplies() {
        let d = Dataset::new("x", 4.0, 0.5);
        assert_eq!(d.work_scale(), 2.0);
    }

    #[test]
    #[should_panic(expected = "dataset size must be positive")]
    fn zero_size_panics() {
        Dataset::new("bad", 0.0, 1.0);
    }

    #[test]
    fn display_contains_name_and_size() {
        let d = Dataset::new("wiki", 55.0, 1.0);
        assert_eq!(d.to_string(), "wiki (55.0GB)");
    }
}
