//! User-facing performance targets.

use std::fmt;

/// The performance constraint a user attaches to a workload at submission
/// time — Quasar's replacement for resource reservations (paper §3.1).
///
/// * Latency-critical services: a QPS target plus a tail-latency bound.
/// * Distributed analytics: an execution-time bound.
/// * Single-node workloads: an instructions-per-second (IPS) floor.
///
/// # Examples
///
/// ```
/// use quasar_workloads::QosTarget;
///
/// let t = QosTarget::throughput(100_000.0, 10_000.0);
/// assert!(t.is_latency_target());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QosTarget {
    /// Finish within `seconds` of wall-clock execution time.
    CompletionTime {
        /// Execution-time bound in seconds.
        seconds: f64,
    },
    /// Serve `qps` queries per second with 99th-percentile latency at or
    /// below `p99_latency_us` microseconds.
    Throughput {
        /// Queries-per-second target.
        qps: f64,
        /// 99th-percentile latency bound in microseconds.
        p99_latency_us: f64,
    },
    /// Sustain at least `ips` instructions per second (relative units).
    Ips {
        /// Instruction-rate floor.
        ips: f64,
    },
}

impl QosTarget {
    /// A completion-time target.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive and finite.
    pub fn completion(seconds: f64) -> QosTarget {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "completion target must be positive"
        );
        QosTarget::CompletionTime { seconds }
    }

    /// A throughput + tail-latency target.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive and finite.
    pub fn throughput(qps: f64, p99_latency_us: f64) -> QosTarget {
        assert!(qps.is_finite() && qps > 0.0, "qps target must be positive");
        assert!(
            p99_latency_us.is_finite() && p99_latency_us > 0.0,
            "latency target must be positive"
        );
        QosTarget::Throughput {
            qps,
            p99_latency_us,
        }
    }

    /// An instruction-rate target.
    ///
    /// # Panics
    ///
    /// Panics if `ips` is not positive and finite.
    pub fn ips(ips: f64) -> QosTarget {
        assert!(ips.is_finite() && ips > 0.0, "ips target must be positive");
        QosTarget::Ips { ips }
    }

    /// Whether this target includes a latency constraint.
    pub fn is_latency_target(&self) -> bool {
        matches!(self, QosTarget::Throughput { .. })
    }

    /// The throughput component of the target, interpreted uniformly:
    /// QPS for services, work-rate implied by the deadline for batch
    /// (reported as `1/seconds`), and IPS for single-node jobs.
    pub fn rate(&self) -> f64 {
        match *self {
            QosTarget::CompletionTime { seconds } => 1.0 / seconds,
            QosTarget::Throughput { qps, .. } => qps,
            QosTarget::Ips { ips } => ips,
        }
    }
}

impl fmt::Display for QosTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QosTarget::CompletionTime { seconds } => write!(f, "complete in {seconds:.0}s"),
            QosTarget::Throughput {
                qps,
                p99_latency_us,
            } => {
                write!(f, "{qps:.0} QPS @ p99 <= {p99_latency_us:.0}us")
            }
            QosTarget::Ips { ips } => write!(f, "{ips:.2e} IPS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        let t = QosTarget::completion(3600.0);
        assert_eq!(t, QosTarget::CompletionTime { seconds: 3600.0 });
    }

    #[test]
    #[should_panic(expected = "qps target must be positive")]
    fn negative_qps_panics() {
        QosTarget::throughput(-1.0, 100.0);
    }

    #[test]
    fn rate_inverts_completion_time() {
        assert_eq!(QosTarget::completion(100.0).rate(), 0.01);
    }

    #[test]
    fn display_variants() {
        assert_eq!(QosTarget::completion(60.0).to_string(), "complete in 60s");
        assert!(QosTarget::throughput(1000.0, 200.0)
            .to_string()
            .contains("QPS"));
        assert!(QosTarget::ips(1e9).to_string().contains("IPS"));
    }
}
