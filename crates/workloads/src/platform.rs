//! Server platform catalogs.
//!
//! Table 1 of the paper lists the ten platforms (A–J) of the local
//! cluster, from dual-core Atom boards to dual-socket 24-core Xeons; the
//! EC2 cluster has 14 dedicated instance types from small to x-large. The
//! catalogs here mirror those shapes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dimension of the latent affinity space shared by platforms and
/// workloads (see [`crate::PerfModel`]).
pub const LATENT_DIM: usize = 6;

/// Identifier of a platform within its catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlatformId(pub usize);

impl std::fmt::Display for PlatformId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A server configuration: capacities plus a latent performance signature.
///
/// `core_speed` is a relative per-core throughput scalar (1.0 = mid-range
/// core). The `latent` vector encodes microarchitectural character (cache
/// sizes, memory bandwidth, storage, ...); a workload's platform affinity
/// is a function of the dot product of the two latent vectors, which gives
/// the performance matrix the approximately low-rank structure that
/// collaborative filtering exploits.
///
/// # Examples
///
/// ```
/// use quasar_workloads::PlatformCatalog;
///
/// let local = PlatformCatalog::local();
/// assert_eq!(local.len(), 10);
/// let best = local.highest_end();
/// assert_eq!(best.cores, 24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Identifier within the owning catalog.
    pub id: PlatformId,
    /// Human-readable name ("A".."J" locally, instance names on EC2).
    pub name: String,
    /// Physical cores.
    pub cores: u32,
    /// Memory capacity in GB.
    pub memory_gb: f64,
    /// Local storage capacity in GB.
    pub disk_gb: f64,
    /// Relative per-core speed (1.0 = baseline core).
    pub core_speed: f64,
    /// Latent microarchitectural signature, components in `[0, 1]`.
    pub latent: [f64; LATENT_DIM],
}

impl Platform {
    /// A crude scalar "size" used for ranking and for the scale-up
    /// headroom a platform offers: total core-seconds of compute.
    pub fn compute_capacity(&self) -> f64 {
        self.cores as f64 * self.core_speed
    }

    /// Hourly price of the whole server in dollars, EC2-style: compute
    /// plus memory, so bigger and faster machines cost more. Used by the
    /// cost-aware allocation extension (paper §4.4).
    pub fn price_per_hour(&self) -> f64 {
        0.02 * self.compute_capacity() + 0.005 * self.memory_gb
    }
}

/// An ordered set of platforms making up a cluster's hardware mix.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformCatalog {
    platforms: Vec<Platform>,
}

impl PlatformCatalog {
    /// Builds a catalog from explicit `(name, cores, memory_gb, disk_gb,
    /// core_speed)` tuples; latent vectors are derived deterministically
    /// from `seed`.
    pub fn from_specs(specs: &[(&str, u32, f64, f64, f64)], seed: u64) -> PlatformCatalog {
        let mut rng = StdRng::seed_from_u64(seed);
        let platforms = specs
            .iter()
            .enumerate()
            .map(|(i, &(name, cores, memory_gb, disk_gb, core_speed))| {
                let mut latent = [0.0; LATENT_DIM];
                for l in &mut latent {
                    *l = rng.random_range(0.0..1.0);
                }
                // Tie part of the signature to the visible specs so that
                // similar hardware has similar signatures.
                latent[0] = (core_speed / 1.6).clamp(0.0, 1.0);
                latent[1] = (memory_gb / 64.0).clamp(0.0, 1.0);
                latent[2] = (cores as f64 / 24.0).clamp(0.0, 1.0);
                Platform {
                    id: PlatformId(i),
                    name: name.to_string(),
                    cores,
                    memory_gb,
                    disk_gb,
                    core_speed,
                    latent,
                }
            })
            .collect();
        PlatformCatalog { platforms }
    }

    /// The ten-platform local cluster of Table 1 (A–J): cores 2..24,
    /// memory 4..48 GB, from low-power Atom-class to dual-socket Xeons.
    pub fn local() -> PlatformCatalog {
        PlatformCatalog::from_specs(
            &[
                ("A", 2, 4.0, 120.0, 0.45),
                ("B", 4, 8.0, 240.0, 0.70),
                ("C", 8, 12.0, 480.0, 0.85),
                ("D", 8, 16.0, 480.0, 0.95),
                ("E", 8, 20.0, 480.0, 1.00),
                ("F", 8, 24.0, 960.0, 1.05),
                ("G", 12, 16.0, 960.0, 1.05),
                ("H", 12, 24.0, 960.0, 1.15),
                ("I", 16, 48.0, 1920.0, 1.25),
                ("J", 24, 48.0, 1920.0, 1.30),
            ],
            0x0A_110C,
        )
    }

    /// A 14-type dedicated EC2-like fleet, small through x-large.
    pub fn ec2() -> PlatformCatalog {
        PlatformCatalog::from_specs(
            &[
                ("m1.small", 1, 1.7, 160.0, 0.40),
                ("m1.medium", 1, 3.75, 410.0, 0.55),
                ("m1.large", 2, 7.5, 840.0, 0.60),
                ("m1.xlarge", 4, 15.0, 1680.0, 0.65),
                ("m3.medium", 1, 3.75, 40.0, 0.75),
                ("m3.large", 2, 7.5, 80.0, 0.85),
                ("m3.xlarge", 4, 15.0, 160.0, 0.95),
                ("m3.2xlarge", 8, 30.0, 320.0, 1.00),
                ("c3.large", 2, 3.75, 64.0, 1.05),
                ("c3.xlarge", 4, 7.5, 128.0, 1.10),
                ("c3.2xlarge", 8, 15.0, 320.0, 1.15),
                ("r3.large", 2, 15.0, 64.0, 1.00),
                ("r3.xlarge", 4, 30.5, 160.0, 1.05),
                ("r3.2xlarge", 8, 61.0, 320.0, 1.10),
            ],
            0xEC2,
        )
    }

    /// Number of platforms.
    pub fn len(&self) -> usize {
        self.platforms.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.platforms.is_empty()
    }

    /// The platform with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: PlatformId) -> &Platform {
        &self.platforms[id.0]
    }

    /// Iterates over all platforms in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Platform> {
        self.platforms.iter()
    }

    /// The platform with the largest compute capacity — the paper profiles
    /// scale-up on "the highest-end platform, which offers the largest
    /// number of scale-up options".
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty.
    pub fn highest_end(&self) -> &Platform {
        self.platforms
            .iter()
            .max_by(|a, b| a.compute_capacity().total_cmp(&b.compute_capacity()))
            .expect("catalog must be non-empty")
    }

    /// Looks a platform up by name.
    pub fn by_name(&self, name: &str) -> Option<&Platform> {
        self.platforms.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_catalog_matches_table1_shape() {
        let cat = PlatformCatalog::local();
        assert_eq!(cat.len(), 10);
        let a = cat.by_name("A").unwrap();
        assert_eq!((a.cores, a.memory_gb), (2, 4.0));
        let j = cat.by_name("J").unwrap();
        assert_eq!((j.cores, j.memory_gb), (24, 48.0));
    }

    #[test]
    fn ec2_catalog_has_14_types() {
        assert_eq!(PlatformCatalog::ec2().len(), 14);
    }

    #[test]
    fn highest_end_is_the_biggest_box() {
        let cat = PlatformCatalog::local();
        assert_eq!(cat.highest_end().name, "J");
    }

    #[test]
    fn latent_vectors_are_deterministic_and_bounded() {
        let a = PlatformCatalog::local();
        let b = PlatformCatalog::local();
        for (pa, pb) in a.iter().zip(b.iter()) {
            assert_eq!(pa.latent, pb.latent);
            for l in pa.latent {
                assert!((0.0..=1.0).contains(&l));
            }
        }
    }

    #[test]
    fn bigger_servers_cost_more() {
        let cat = PlatformCatalog::local();
        let a = cat.by_name("A").unwrap().price_per_hour();
        let j = cat.by_name("J").unwrap().price_per_hour();
        assert!(j > a * 3.0, "J {j:.3} vs A {a:.3}");
    }

    #[test]
    fn ids_match_positions() {
        let cat = PlatformCatalog::ec2();
        for (i, p) in cat.iter().enumerate() {
            assert_eq!(p.id, PlatformId(i));
            assert_eq!(cat.get(p.id), p);
        }
    }
}
