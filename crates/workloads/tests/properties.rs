//! Property-based tests on the ground-truth performance physics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use quasar_interference::PressureVector;
use quasar_workloads::{
    BatchModel, Dataset, FrameworkParams, LoadPattern, NodeResources, PlatformCatalog, ServiceModel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch rate is monotone in cores and memory, and positive.
    #[test]
    fn batch_rate_monotone_in_resources(seed in 0u64..500, size in 1.0..80.0f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = BatchModel::sample(Dataset::new("p", size, 1.0), true, &mut rng);
        let catalog = PlatformCatalog::local();
        let p = catalog.highest_end();
        let params = FrameworkParams::default();
        let rate = |cores: u32, mem: f64| {
            model.node_rate(p, NodeResources::new(cores, mem), &params, &PressureVector::zero(), 1)
        };
        let mut last = 0.0;
        for cores in [1u32, 2, 4, 8, 16, 24] {
            let r = rate(cores, 16.0);
            prop_assert!(r > 0.0);
            prop_assert!(r >= last - 1e-12, "cores monotonicity");
            last = r;
        }
        let mut last = 0.0;
        for mem in [1.0, 4.0, 16.0, 48.0] {
            let r = rate(8, mem);
            prop_assert!(r >= last - 1e-12, "memory monotonicity");
            last = r;
        }
    }

    /// Interference can only slow a batch job down.
    #[test]
    fn pressure_never_speeds_up_batch(seed in 0u64..500, pressure in 0.0..100.0f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = BatchModel::sample(Dataset::new("p", 10.0, 1.0), true, &mut rng);
        let catalog = PlatformCatalog::local();
        let p = catalog.highest_end();
        let params = FrameworkParams::default();
        let quiet = model.node_rate(p, NodeResources::all_of(p), &params, &PressureVector::zero(), 1);
        let noisy = model.node_rate(
            p,
            NodeResources::all_of(p),
            &params,
            &PressureVector::uniform(pressure),
            1,
        );
        prop_assert!(noisy <= quiet + 1e-12);
    }

    /// Calibration makes the calibrated configuration hit the requested
    /// duration exactly.
    #[test]
    fn calibration_round_trips(seed in 0u64..500, duration in 60.0..20_000.0f64, nodes in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = BatchModel::sample(Dataset::new("p", 10.0, 1.0), true, &mut rng);
        let catalog = PlatformCatalog::local();
        let p = catalog.highest_end();
        model.calibrate_work(p, nodes, duration);
        let allocs: Vec<_> = (0..nodes)
            .map(|_| (p, NodeResources::all_of(p), PressureVector::zero()))
            .collect();
        let t = model
            .completion_time(model.total_work(), &allocs, &FrameworkParams::default())
            .unwrap();
        prop_assert!((t - duration).abs() / duration < 1e-9);
    }

    /// A service never serves more than offered or more than capacity,
    /// and p99 dominates the mean.
    #[test]
    fn service_observation_invariants(
        seed in 0u64..500,
        state in 1.0..200.0f64,
        frac in 0.01..3.0f64,
        nodes in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = ServiceModel::sample(Dataset::new("p", 1.0, 1.0), state, seed % 2 == 0, &mut rng);
        let catalog = PlatformCatalog::local();
        let p = catalog.highest_end();
        let allocs: Vec<_> = (0..nodes)
            .map(|_| (p, NodeResources::all_of(p), PressureVector::zero()))
            .collect();
        let capacity = model.total_capacity(&allocs);
        prop_assert!(capacity > 0.0);
        let offered = capacity * frac;
        let obs = model.observe(offered, &allocs);
        prop_assert!(obs.achieved_qps <= offered + 1e-9);
        prop_assert!(obs.achieved_qps <= capacity + 1e-9);
        prop_assert!(obs.p99_latency_us >= obs.mean_latency_us);
        prop_assert!(obs.mean_latency_us > 0.0);
    }

    /// The knee never exceeds capacity and respects the latency bound.
    #[test]
    fn knee_is_feasible(seed in 0u64..300, bound_us in 100.0..50_000.0f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = ServiceModel::sample(Dataset::new("p", 1.0, 1.0), 16.0, false, &mut rng);
        let catalog = PlatformCatalog::local();
        let p = catalog.highest_end();
        let allocs = [(p, NodeResources::all_of(p), PressureVector::zero())];
        let capacity = model.total_capacity(&allocs);
        let knee = model.knee_qps(&allocs, bound_us);
        prop_assert!(knee >= 0.0 && knee <= capacity + 1e-9);
        if knee > 1.0 {
            let obs = model.observe(knee * 0.999, &allocs);
            prop_assert!(obs.p99_latency_us <= bound_us * 1.01, "p99 {} at knee", obs.p99_latency_us);
        }
    }

    /// Load patterns are non-negative everywhere and never exceed their
    /// declared peak.
    #[test]
    fn load_patterns_respect_peak(base in 1.0..1e6f64, amp_frac in 0.0..1.0f64, t in 0.0..1e6f64) {
        let patterns = [
            LoadPattern::Flat { qps: base },
            LoadPattern::Fluctuating { base_qps: base, amplitude_qps: base * amp_frac, period_s: 600.0 },
            LoadPattern::Spike { base_qps: base, spike_qps: base * 4.0, start_s: 100.0, duration_s: 200.0 },
            LoadPattern::Diurnal { trough_qps: base * 0.2, peak_qps: base },
        ];
        for p in patterns {
            let q = p.qps_at(t);
            prop_assert!(q >= 0.0);
            prop_assert!(q <= p.peak_qps() + 1e-9);
        }
    }
}
