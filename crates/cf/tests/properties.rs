//! Property-based tests for the collaborative-filtering engine.

use proptest::prelude::*;

use quasar_cf::kernel::{rotate_cols, rotate_cols_scalar};
use quasar_cf::reference::{svd_reference, train_reference};
use quasar_cf::{
    svd, svd_in, CfScratch, DenseMatrix, PqModel, Reconstructor, SgdConfig, SparseMatrix,
};

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Strategy: a small dense matrix with bounded entries.
fn dense_matrix(max_dim: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| DenseMatrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SVD must reconstruct any matrix to numerical precision, and the
    /// singular values must be sorted and non-negative.
    #[test]
    fn svd_reconstructs_any_matrix(a in dense_matrix(8)) {
        let d = svd(&a);
        let err = d.reconstruct().max_abs_diff(&a);
        prop_assert!(err < 1e-6, "reconstruction error {err}");
        for w in d.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        for s in &d.singular_values {
            prop_assert!(*s >= 0.0);
        }
    }

    /// The energy-rank is monotone in the requested energy and within the
    /// matrix dimensions.
    #[test]
    fn rank_for_energy_is_monotone_and_bounded(a in dense_matrix(8), e1 in 0.0..1.0f64, e2 in 0.0..1.0f64) {
        let d = svd(&a);
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(d.rank_for_energy(lo) <= d.rank_for_energy(hi));
        prop_assert!(d.rank_for_energy(hi) <= d.singular_values.len().max(1));
        prop_assert!(d.rank_for_energy(lo) >= 1);
    }

    /// A rank-1 matrix observed at high density is recovered usefully
    /// everywhere by the full reconstruction pipeline. (Columns with no
    /// coverage at all are unrecoverable in principle, so the mask keeps
    /// every row and column well observed.)
    #[test]
    fn reconstructor_recovers_rank_one(
        row_f in proptest::collection::vec(0.5..3.0f64, 6),
        col_f in proptest::collection::vec(0.5..3.0f64, 6),
        mask in proptest::collection::vec(0u8..100, 36),
    ) {
        let truth = DenseMatrix::from_fn(6, 6, |r, c| row_f[r] * col_f[c]);
        let mut sparse = SparseMatrix::new(6, 6);
        let mut per_row = [0usize; 6];
        let mut per_col = [0usize; 6];
        for r in 0..6 {
            for c in 0..6 {
                // ~70% density plus the two diagonals for coverage.
                if mask[r * 6 + c] < 70 || c == r || (c + 1) % 6 == r {
                    sparse.insert(r, c, truth.get(r, c));
                    per_row[r] += 1;
                    per_col[c] += 1;
                }
            }
        }
        prop_assume!(per_row.iter().all(|&n| n >= 3));
        prop_assume!(per_col.iter().all(|&n| n >= 3));
        let dense = Reconstructor::new().reconstruct(&sparse);
        // Two robust properties: the typical relative error is bounded,
        // and collaborative filtering is never much worse than the naive
        // column-mean predictor (and usually far better) — the value
        // proposition the classification engine rests on.
        let rms = |pred: &dyn Fn(usize, usize) -> f64| -> f64 {
            let mut sum_sq = 0.0;
            for r in 0..6 {
                for c in 0..6 {
                    let rel = (pred(r, c) - truth.get(r, c)).abs() / truth.get(r, c);
                    sum_sq += rel * rel;
                }
            }
            (sum_sq / 36.0).sqrt()
        };
        let cf_rms = rms(&|r, c| dense.get(r, c));
        let col_means = sparse.col_means();
        let global = sparse.mean().unwrap_or(0.0);
        let mean_rms = rms(&|_, c| col_means[c].unwrap_or(global));
        prop_assert!(cf_rms < 1.5, "cf rms {cf_rms}");
        prop_assert!(
            cf_rms <= mean_rms * 1.10 + 1e-9,
            "cf rms {cf_rms} vs column-mean rms {mean_rms}"
        );
    }

    /// PQ training never produces non-finite predictions on bounded data.
    #[test]
    fn pq_predictions_are_finite(
        entries in proptest::collection::vec((0usize..5, 0usize..7, -5.0..5.0f64), 6..30)
    ) {
        let mut a = SparseMatrix::new(5, 7);
        for (r, c, v) in entries {
            a.insert(r, c, v);
        }
        prop_assume!(!a.is_empty());
        let model = PqModel::train(&a, &SgdConfig::default());
        for r in 0..5 {
            for c in 0..7 {
                prop_assert!(model.predict(r, c).is_finite());
            }
        }
    }

    /// Observed entries always survive reconstruction verbatim.
    #[test]
    fn observed_entries_are_authoritative(
        entries in proptest::collection::vec((0usize..4, 0usize..4, -3.0..3.0f64), 4..16)
    ) {
        let mut a = SparseMatrix::new(4, 4);
        for (r, c, v) in &entries {
            a.insert(*r, *c, *v);
        }
        let dense = Reconstructor::new().reconstruct(&a);
        for (r, c, v) in a.iter() {
            prop_assert_eq!(dense.get(r, c), v);
        }
    }

    /// The flat-slice Jacobi kernel must match the frozen scalar-loop
    /// reference **bit-for-bit** on every shape — tall, wide, square —
    /// including `U`, `Σ`, and `V`, not just the reconstruction. This is
    /// the contract that keeps every tracked figure CSV byte-identical.
    #[test]
    fn svd_is_bit_identical_to_reference(a in dense_matrix(10)) {
        let fast = svd(&a);
        let slow = svd_reference(&a);
        prop_assert_eq!(bits(&fast.singular_values), bits(&slow.singular_values));
        prop_assert_eq!(bits(fast.u.as_slice()), bits(slow.u.as_slice()));
        prop_assert_eq!(bits(fast.v.as_slice()), bits(slow.v.as_slice()));
        prop_assert_eq!(
            bits(fast.reconstruct().as_slice()),
            bits(slow.reconstruct().as_slice())
        );
    }

    /// The fused SGD kernel must train to a bit-identical model across
    /// densities: same rank, same epoch count, same residual bits, and
    /// bit-identical predictions everywhere.
    #[test]
    fn sgd_training_is_bit_identical_to_reference(
        entries in proptest::collection::vec((0usize..7, 0usize..9, -5.0..5.0f64), 5..63),
        max_rank in 1usize..6,
    ) {
        let mut a = SparseMatrix::new(7, 9);
        for (r, c, v) in entries {
            a.insert(r, c, v);
        }
        prop_assume!(!a.is_empty());
        // Cap epochs to keep 64 proptest cases fast; op order per epoch
        // is what the contract is about.
        let config = SgdConfig { max_epochs: 60, max_rank, ..SgdConfig::default() };
        let fast = PqModel::train(&a, &config);
        let slow = train_reference(&a, &config);
        prop_assert_eq!(fast.rank(), slow.rank());
        prop_assert_eq!(fast.epochs_run(), slow.epochs_run());
        prop_assert_eq!(fast.final_residual().to_bits(), slow.final_residual().to_bits());
        prop_assert_eq!(
            bits(fast.predict_all().as_slice()),
            bits(slow.predict_all().as_slice())
        );
    }

    /// Bulk construction from dense rows is exactly per-cell insertion.
    #[test]
    fn from_dense_rows_matches_per_cell_insertion(a in dense_matrix(8)) {
        let bulk = SparseMatrix::from_dense_rows(&a);
        let mut cellwise = SparseMatrix::new(a.rows(), a.cols());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                cellwise.insert(r, c, a.get(r, c));
            }
        }
        prop_assert_eq!(&bulk, &cellwise);
        prop_assert_eq!(bulk.len(), a.rows() * a.cols());
        prop_assert_eq!(
            bits(bulk.to_dense_filled().as_slice()),
            bits(cellwise.to_dense_filled().as_slice())
        );
    }

    /// The 4-lane blocked rotation must match the scalar loop bitwise on
    /// every column length in `0..64` — covering every `chunks_exact`
    /// remainder class many times over. Rotations are elementwise
    /// (order-free per DESIGN.md §4f), so blocking them must not move a
    /// single bit.
    #[test]
    fn blocked_rotation_is_bit_identical_to_scalar(
        len in 0usize..64,
        p_seed in proptest::collection::vec(-10.0..10.0f64, 64),
        q_seed in proptest::collection::vec(-10.0..10.0f64, 64),
        theta in -3.2..3.2f64,
    ) {
        let (c, s) = (theta.cos(), theta.sin());
        let mut p_blocked = p_seed[..len].to_vec();
        let mut q_blocked = q_seed[..len].to_vec();
        let mut p_scalar = p_blocked.clone();
        let mut q_scalar = q_blocked.clone();
        rotate_cols(&mut p_blocked, &mut q_blocked, c, s);
        rotate_cols_scalar(&mut p_scalar, &mut q_scalar, c, s);
        prop_assert_eq!(bits(&p_blocked), bits(&p_scalar));
        prop_assert_eq!(bits(&q_blocked), bits(&q_scalar));
    }

    /// An arena warmed (and dirtied) by a decomposition of one matrix
    /// must decompose the next matrix to exactly the bits a fresh arena
    /// produces: scratch contents can never leak into results.
    #[test]
    fn scratch_reuse_never_changes_svd_bits(warm in dense_matrix(8), a in dense_matrix(8)) {
        let mut warmed = CfScratch::new();
        let first = svd_in(&warm, &mut warmed);
        warmed.recycle_svd(first);
        let reused = svd_in(&a, &mut warmed);
        let fresh = svd_in(&a, &mut CfScratch::new());
        prop_assert_eq!(bits(&reused.singular_values), bits(&fresh.singular_values));
        prop_assert_eq!(bits(reused.u.as_slice()), bits(fresh.u.as_slice()));
        prop_assert_eq!(bits(reused.v.as_slice()), bits(fresh.v.as_slice()));
    }

    /// Same contract for full training: a recycled arena (model and SVD
    /// buffers included) trains a bit-identical model.
    #[test]
    fn scratch_reuse_never_changes_training_bits(
        warm_entries in proptest::collection::vec((0usize..6, 0usize..5, -5.0..5.0f64), 4..20),
        entries in proptest::collection::vec((0usize..7, 0usize..6, -5.0..5.0f64), 5..30),
        max_rank in 1usize..6,
    ) {
        let mut warm = SparseMatrix::new(6, 5);
        for (r, c, v) in warm_entries {
            warm.insert(r, c, v);
        }
        let mut a = SparseMatrix::new(7, 6);
        for (r, c, v) in entries {
            a.insert(r, c, v);
        }
        prop_assume!(!warm.is_empty() && !a.is_empty());
        let config = SgdConfig { max_epochs: 40, max_rank, ..SgdConfig::default() };
        let mut warmed = CfScratch::new();
        let first = PqModel::train_in(&warm, &config, &mut warmed);
        warmed.recycle_model(first);
        let reused = PqModel::train_in(&a, &config, &mut warmed);
        let fresh = PqModel::train_in(&a, &config, &mut CfScratch::new());
        prop_assert_eq!(reused.rank(), fresh.rank());
        prop_assert_eq!(reused.epochs_run(), fresh.epochs_run());
        prop_assert_eq!(
            reused.final_residual().to_bits(),
            fresh.final_residual().to_bits()
        );
        prop_assert_eq!(
            bits(reused.predict_all().as_slice()),
            bits(fresh.predict_all().as_slice())
        );
    }

    /// End-to-end: a `reconstruct_row` on a thread whose default arena
    /// has already served unrelated reconstructions returns exactly the
    /// bits a pristine thread (fresh arena, fresh memo) returns.
    #[test]
    fn reconstruct_row_bits_do_not_depend_on_arena_state(
        warm_h in dense_matrix(6),
        h in dense_matrix(6),
        t0 in -5.0..5.0f64,
        t1 in -5.0..5.0f64,
    ) {
        let config = SgdConfig { max_epochs: 30, ..SgdConfig::default() };
        let target = [(0usize, t0), (h.cols() - 1, t1)];
        // Dirty this thread's arena at an unrelated shape.
        let _ = Reconstructor::new()
            .with_config(config)
            .reconstruct_row(&warm_h, &[(0, 1.25)]);
        let on_warm_arena = Reconstructor::new()
            .with_config(config)
            .reconstruct_row(&h, &target)
            .unwrap();
        let on_fresh_thread = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    Reconstructor::new()
                        .with_config(config)
                        .reconstruct_row(&h, &target)
                        .unwrap()
                })
                .join()
                .unwrap()
        });
        prop_assert_eq!(bits(&on_warm_arena), bits(&on_fresh_thread));
    }

    /// Sparse-matrix bookkeeping: density matches unique cells.
    #[test]
    fn sparse_density_counts_unique_cells(
        entries in proptest::collection::vec((0usize..5, 0usize..5, 0.0..1.0f64), 0..40)
    ) {
        let mut a = SparseMatrix::new(5, 5);
        let mut unique = std::collections::BTreeSet::new();
        for (r, c, v) in &entries {
            a.insert(*r, *c, *v);
            unique.insert((*r, *c));
        }
        prop_assert_eq!(a.len(), unique.len());
        prop_assert!((a.density() - unique.len() as f64 / 25.0).abs() < 1e-12);
    }
}
