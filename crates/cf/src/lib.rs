//! Collaborative-filtering engine for the Quasar reproduction.
//!
//! Quasar (ASPLOS'14, §3.2) classifies workloads with the same machinery
//! popularized by the Netflix Challenge: a sparse matrix `A` with workloads
//! as rows and configurations as columns is decomposed with Singular Value
//! Decomposition (`A = U·Σ·Vᵀ`) and the missing entries are recovered with
//! PQ-reconstruction driven by Stochastic Gradient Descent, including a
//! global mean `μ` and per-row bias `b_u` exactly as in the paper's update
//! equations:
//!
//! ```text
//! ε_ui = r_ui − μ − b_u − q_i·p_uᵀ
//! q_i ← q_i + η (ε_ui p_u − λ q_i)
//! p_u ← p_u + η (ε_ui q_i − λ p_u)
//! ```
//!
//! This crate implements every piece from scratch:
//!
//! * [`DenseMatrix`] — row-major dense matrix with the operations the
//!   pipeline needs.
//! * [`SparseMatrix`] — observed entries of the ratings/performance matrix.
//! * [`svd`] — one-sided Jacobi SVD (no external linear-algebra crates).
//! * [`PqModel`] — latent-factor model trained with SGD.
//! * [`Reconstructor`] — the end-to-end pipeline (mean-fill → SVD →
//!   PQ-init → SGD → predict) used by Quasar's four classifications.
//!
//! The SVD and SGD kernels are flat-slice implementations with a strict
//! **bit-identical-output contract** against the frozen pre-refactor
//! scalar loops in [`reference`]; property tests enforce the contract
//! and `quasar-experiments bench-kernels` measures the speedup.
//!
//! # Examples
//!
//! ```
//! use quasar_cf::{Reconstructor, SparseMatrix};
//!
//! // A rank-1 matrix with a missing entry: row i is i+1 times [1 2 3].
//! let mut a = SparseMatrix::new(3, 3);
//! for r in 0..3 {
//!     for c in 0..3 {
//!         if (r, c) != (1, 2) {
//!             a.insert(r, c, (r as f64 + 1.0) * (c as f64 + 1.0));
//!         }
//!     }
//! }
//! let dense = Reconstructor::new().reconstruct(&a);
//! assert!((dense.get(1, 2) - 6.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod fingerprint;
mod pq;
mod reconstruct;
pub mod scratch;
mod sparse;
mod svd;

pub use dense::DenseMatrix;
pub use pq::{PqModel, SgdConfig};
pub use reconstruct::{ReconstructError, Reconstructor};
pub use scratch::CfScratch;
pub use sparse::SparseMatrix;
pub use svd::{svd, svd_in, Svd};

/// The order-free elementwise loop kernels of the SVD (see DESIGN.md
/// §4f for the loop taxonomy that makes them safe to re-block).
///
/// Exposed so the micro-benchmarks and the `bench-kernels` emitter can
/// measure the blocked rotation against its scalar form directly; the
/// classification fast path always uses the blocked [`kernel::rotate_cols`].
pub mod kernel {
    pub use crate::svd::{rotate_cols, rotate_cols_scalar};
}

/// Frozen pre-refactor scalar-loop kernels, kept as correctness oracles.
///
/// The slice kernels ([`svd`], [`PqModel::train`]) must produce
/// bit-identical output to these; property tests assert it and the
/// `bench-kernels` emitter measures the before/after speedup. These are
/// reference implementations only — nothing on the classification fast
/// path calls them.
pub mod reference {
    pub use crate::svd::svd_reference;

    use crate::pq::{PqModel, SgdConfig};
    use crate::sparse::SparseMatrix;

    /// The pre-refactor SGD training loop; see [`PqModel::train_reference`].
    pub fn train_reference(a: &SparseMatrix, config: &SgdConfig) -> PqModel {
        PqModel::train_reference(a, config)
    }
}
