//! Reusable workspace arenas for the CF hot path.
//!
//! Every [`svd`](crate::svd()) / [`PqModel::train`](crate::PqModel::train)
//! call used to heap-allocate its entire working set — the column-major
//! working copy, the `V` accumulator, norms, sort order, residuals, the
//! mean-filled dense matrix, the factor and bias buffers — from scratch,
//! on a path the classifier executes on every cold or warm-miss arrival.
//! [`CfScratch`] pools all of it: a grow-only arena that call sites
//! thread through the `*_in` kernel variants, with a thread-local
//! default ([`with`]) behind the public entry points so existing callers
//! adopt it without any signature change.
//!
//! # Lifetime and growth rules
//!
//! * **Grow-only.** Buffers are checked out with `clear()` +
//!   `resize`/`reserve`; capacity is never released. After the first
//!   call at the largest shape a thread ever sees, later calls at that
//!   shape (or smaller) perform **zero** heap allocations inside `svd`
//!   and `train`.
//! * **Outputs are recycled, not retained.** `svd_in`/`train_in` return
//!   owned values whose buffers are *taken from* the arena's recycle
//!   slots; callers that drop the result hand the buffers back with
//!   [`CfScratch::recycle_svd`] / [`CfScratch::recycle_model`]. Callers
//!   that let the result escape simply skip the recycle — the next
//!   checkout of that slot allocates fresh (counted as a grow).
//! * **Contents never affect results.** Checkouts fully overwrite the
//!   checked-out range, so a reused buffer is observably identical to a
//!   fresh `vec![]` — the bit-identity proptests in
//!   `tests/properties.rs` pin scratch-path outputs to fresh-path runs.
//!
//! # Metrics
//!
//! `quasar.cf.scratch.reuses` / `.grows` count buffer checkouts served
//! from pooled capacity vs. ones that had to (re)allocate;
//! `quasar.cf.scratch.peak_bytes` is a high-water gauge over the flat
//! arena buffers (sparse entry lists are counted as checkout events but
//! not byte-tracked). All three depend on how work lands on threads —
//! every thread owns its own default arena — so they are listed under
//! the registry's live prefixes and stripped from deterministic
//! snapshots.

use std::cell::RefCell;
use std::mem::size_of;
use std::sync::OnceLock;

use quasar_obs::registry::{Counter, Gauge, Registry};

use crate::pq::PqModel;
use crate::sparse::SparseMatrix;
use crate::svd::Svd;

/// Registry handles for `quasar.cf.scratch.{reuses,grows,peak_bytes}`.
fn scratch_metrics() -> &'static (Counter, Counter, Gauge) {
    static METRICS: OnceLock<(Counter, Counter, Gauge)> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        (
            reg.counter("quasar.cf.scratch.reuses"),
            reg.counter("quasar.cf.scratch.grows"),
            reg.gauge("quasar.cf.scratch.peak_bytes"),
        )
    })
}

/// Checkout accounting for one arena (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct ScratchStats {
    reuses: u64,
    grows: u64,
    /// Bytes of flat buffer capacity currently held (grow-only, so the
    /// current total is also the peak).
    bytes: u64,
    flushed_reuses: u64,
    flushed_grows: u64,
}

impl ScratchStats {
    /// Checks `buf` out as a `len`-element buffer of `T::default()`
    /// values — observably identical to `vec![T::default(); len]`.
    pub(crate) fn checkout<T: Clone + Default>(&mut self, buf: &mut Vec<T>, len: usize) {
        let before = buf.capacity();
        buf.clear();
        buf.resize(len, T::default());
        self.note::<T>(before, buf.capacity());
    }

    /// Checks `buf` out empty with room for `len` elements, for callers
    /// that fill it with `extend`/`push` — observably identical to
    /// `Vec::with_capacity(len)`.
    pub(crate) fn reserve<T>(&mut self, buf: &mut Vec<T>, len: usize) {
        let before = buf.capacity();
        buf.clear();
        buf.reserve(len);
        self.note::<T>(before, buf.capacity());
    }

    /// Records a checkout of a structured slot (e.g. a pooled
    /// [`SparseMatrix`]); `hit` says whether the slot was populated.
    /// Structured slots are event-counted but not byte-tracked.
    pub(crate) fn slot(&mut self, hit: bool) {
        if hit {
            self.reuses += 1;
        } else {
            self.grows += 1;
        }
    }

    fn note<T>(&mut self, before: usize, after: usize) {
        if after > before {
            self.grows += 1;
            self.bytes += ((after - before) * size_of::<T>()) as u64;
        } else {
            self.reuses += 1;
        }
    }
}

/// A reusable, grow-only workspace arena for the CF kernels.
///
/// Thread one through [`crate::svd_in`], [`PqModel::train_in`],
/// [`PqModel::train_warm_in`] and the [`crate::Reconstructor`] internals
/// to make their steady state allocation-free; or just call the plain
/// public entry points, which borrow the calling thread's default arena
/// via [`with`]. See the module docs for the lifetime rules.
#[derive(Debug, Default)]
pub struct CfScratch {
    /// Column-major SVD working copy (`m·n`).
    pub(crate) svd_work: Vec<f64>,
    /// Column-major rotation accumulator `V` (`n·n`).
    pub(crate) svd_v: Vec<f64>,
    /// Column norms of the converged working set (`n`).
    pub(crate) svd_norms: Vec<f64>,
    /// Descending-norm column order (`n`).
    pub(crate) svd_order: Vec<usize>,
    /// Recycled SVD output buffers: `(u_data, v_data, singular_values)`.
    pub(crate) svd_out: Option<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    /// SGD visit order, one entry per observation.
    pub(crate) sgd_order: Vec<(usize, usize, f64)>,
    /// Residual matrix for the SVD warm start.
    pub(crate) residuals: Option<SparseMatrix>,
    /// Mean-filled dense buffer the warm-start SVD decomposes.
    pub(crate) filled: Option<Vec<f64>>,
    /// Per-column residual sums (reused as the column means).
    pub(crate) col_sums: Vec<f64>,
    /// Per-column residual observation counts.
    pub(crate) col_counts: Vec<usize>,
    /// Recycled model buffers: `(row_bias, row_factors, col_factors)`.
    pub(crate) model_out: Option<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    /// Pooled history+target matrix for row reconstruction.
    pub(crate) row_sparse: Option<SparseMatrix>,
    /// Recycled dense prediction buffer (`rows·cols`).
    pub(crate) predict: Option<Vec<f64>>,
    /// Checkout accounting.
    pub(crate) stats: ScratchStats,
}

impl CfScratch {
    /// Creates an empty arena; buffers are allocated lazily on first
    /// checkout and retained (grow-only) afterwards.
    pub fn new() -> CfScratch {
        CfScratch::default()
    }

    /// Returns a dropped [`Svd`]'s buffers to the arena so the next
    /// [`crate::svd_in`] call can reuse them instead of allocating.
    pub fn recycle_svd(&mut self, svd: Svd) {
        let Svd {
            u,
            singular_values,
            v,
        } = svd;
        self.svd_out = Some((u.into_vec(), v.into_vec(), singular_values));
    }

    /// Returns a dropped [`PqModel`]'s buffers to the arena so the next
    /// [`PqModel::train_in`] call can reuse them instead of allocating.
    pub fn recycle_model(&mut self, model: PqModel) {
        self.model_out = Some(model.into_buffers());
    }

    /// Returns a dropped prediction buffer (see
    /// [`PqModel::predict_all_in`](crate::PqModel)) to the arena.
    pub(crate) fn recycle_predict(&mut self, buf: Vec<f64>) {
        self.predict = Some(buf);
    }

    /// Flushes checkout counts to the registry as deltas and raises the
    /// peak-bytes gauge; called once per top-level [`with`] entry.
    fn flush_metrics(&mut self) {
        let (reuses, grows, peak) = scratch_metrics();
        let s = &mut self.stats;
        reuses.add(s.reuses - s.flushed_reuses);
        grows.add(s.grows - s.flushed_grows);
        s.flushed_reuses = s.reuses;
        s.flushed_grows = s.grows;
        peak.set_max(s.bytes);
    }
}

thread_local! {
    /// The calling thread's default arena (see [`with`]).
    static SCRATCH: RefCell<CfScratch> = RefCell::new(CfScratch::new());
}

/// Runs `f` with the calling thread's default [`CfScratch`].
///
/// Top-level entry points (`svd`, `PqModel::train`,
/// `Reconstructor::reconstruct_row`, …) wrap exactly one `with` call and
/// pass the borrowed arena down through the `*_in` variants, so the
/// borrow is never re-entered on the normal path. If it ever is (or the
/// thread-local is gone because the thread is shutting down), `f` runs
/// against a fresh throwaway arena — semantically identical, just
/// without reuse.
pub fn with<R>(f: impl FnOnce(&mut CfScratch) -> R) -> R {
    let mut f = Some(f);
    let ran = SCRATCH.try_with(|cell| {
        cell.try_borrow_mut().ok().map(|mut scratch| {
            let r = (f.take().expect("closure runs once"))(&mut scratch);
            scratch.flush_metrics();
            r
        })
    });
    match ran {
        Ok(Some(r)) => r,
        // Re-entered or thread teardown: a throwaway arena (no reuse,
        // identical semantics).
        _ => (f.take().expect("closure not yet run"))(&mut CfScratch::new()),
    }
}

/// Checkout totals of the calling thread's default arena:
/// `(reuses, grows, held_bytes)`. Grow-only, so `held_bytes` is the
/// thread's peak. Zeros if the arena is inaccessible (thread teardown or
/// an active borrow).
pub fn thread_stats() -> (u64, u64, u64) {
    SCRATCH
        .try_with(|cell| {
            cell.try_borrow()
                .map(|s| (s.stats.reuses, s.stats.grows, s.stats.bytes))
                .unwrap_or((0, 0, 0))
        })
        .unwrap_or((0, 0, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_equivalent_to_fresh_allocation() {
        let mut stats = ScratchStats::default();
        let mut buf: Vec<f64> = Vec::new();
        stats.checkout(&mut buf, 8);
        assert_eq!(buf, vec![0.0; 8]);
        buf.iter_mut().for_each(|v| *v = 7.0);
        // Reuse at a smaller size must still look freshly zeroed.
        stats.checkout(&mut buf, 5);
        assert_eq!(buf, vec![0.0; 5]);
        assert_eq!(stats.grows, 1, "only the first checkout allocates");
        assert_eq!(stats.reuses, 1);
        assert!(stats.bytes >= 8 * size_of::<f64>() as u64);
    }

    #[test]
    fn reserve_leaves_buffer_empty_with_capacity() {
        let mut stats = ScratchStats::default();
        let mut buf: Vec<usize> = vec![1, 2, 3];
        stats.reserve(&mut buf, 16);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 16);
    }

    #[test]
    fn with_reuses_the_thread_local_arena() {
        // Warm the thread's arena at one shape, then re-enter: the
        // second checkout must be served from pooled capacity.
        with(|s| s.stats.checkout(&mut s.svd_work, 64));
        let (_, grows_warm, bytes_warm) = thread_stats();
        with(|s| s.stats.checkout(&mut s.svd_work, 64));
        let (reuses, grows_again, bytes_again) = thread_stats();
        assert_eq!(grows_again, grows_warm, "warm checkout must not grow");
        assert_eq!(bytes_again, bytes_warm, "held bytes are grow-only");
        assert!(reuses >= 1);
    }
}
