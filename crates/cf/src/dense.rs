//! Row-major dense matrices.

use std::fmt;
use std::sync::OnceLock;

use crate::fingerprint::Fingerprint;

/// A row-major dense matrix of `f64`.
///
/// Provides exactly the operations the collaborative-filtering pipeline
/// needs: element access, transpose, multiplication, column statistics, and
/// norms. Dimensions are fixed at construction.
///
/// # Examples
///
/// ```
/// use quasar_cf::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m.set(0, 1, 5.0);
/// assert_eq!(m.get(0, 1), 5.0);
/// assert_eq!(m.transpose().get(1, 0), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    /// Lazily-computed content fingerprint (see [`DenseMatrix::fingerprint`]),
    /// reset by every mutation so it can never go stale.
    fp: OnceLock<(u64, u64)>,
}

// Manual impl: the cached fingerprint is derived state and must not
// participate in equality (a hashed and an unhashed copy are equal).
impl PartialEq for DenseMatrix {
    fn eq(&self, other: &DenseMatrix) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> DenseMatrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            fp: OnceLock::new(),
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> DenseMatrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        DenseMatrix {
            rows,
            cols,
            data,
            fp: OnceLock::new(),
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` in row-major order.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> DenseMatrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix::from_vec(rows, cols, data)
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
        self.fp = OnceLock::new();
    }

    /// The matrix's cached 128-bit content fingerprint, as two 64-bit
    /// digests over `(rows, cols, data)`.
    ///
    /// Computed on first call (O(rows × cols)) and memoized; any
    /// mutation resets the memo, so repeated lookups against an
    /// unchanged matrix — the row-reconstruction cache's access pattern
    /// — cost an atomic load instead of a full rehash.
    pub fn fingerprint(&self) -> (u64, u64) {
        *self.fp.get_or_init(|| {
            let mut fp = Fingerprint::new();
            fp.word(self.rows as u64);
            fp.word(self.cols as u64);
            for &v in &self.data {
                fp.float(v);
            }
            fp.digests()
        })
    }

    /// A view of row `row` as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// A mutable view of row `row` as a slice.
    ///
    /// Invalidates the cached [`DenseMatrix::fingerprint`], like any
    /// other mutation.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row out of bounds");
        self.fp = OnceLock::new();
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The underlying row-major data, mutably. Invalidates the cached
    /// [`DenseMatrix::fingerprint`].
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.fp = OnceLock::new();
        &mut self.data
    }

    /// Copies column `col` into a new vector.
    pub fn col_vec(&self, col: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// The transpose of this matrix.
    ///
    /// Reads each row as a contiguous slice and scatters it into the
    /// output column — one pass, no per-element bounds checks.
    pub fn transpose(&self) -> DenseMatrix {
        let mut data = vec![0.0; self.rows * self.cols];
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                data[c * self.rows + r] = v;
            }
        }
        DenseMatrix::from_vec(self.cols, self.rows, data)
    }

    /// Matrix product `self × rhs`.
    ///
    /// Accumulates `a_ik · rhs[k, ·]` into the output row slice (the
    /// classic ikj loop order on contiguous rows).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must match");
        let mut data = vec![0.0; self.rows * rhs.cols];
        for (i, out_row) in data.chunks_exact_mut(rhs.cols).enumerate() {
            for (k, &a) in self.row(i).iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(rhs.row(k)) {
                    *o += a * b;
                }
            }
        }
        DenseMatrix::from_vec(self.rows, rhs.cols, data)
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning its row-major buffer without
    /// copying — how dropped results hand their allocations back to a
    /// [`crate::scratch::CfScratch`] recycle slot.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = DenseMatrix::from_fn(3, 2, |r, c| (r + 10 * c) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = DenseMatrix::from_fn(3, 3, |r, c| (r * c) as f64 + 1.0);
        let i = DenseMatrix::identity(3);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let p = a.matmul(&b);
        assert_eq!(p.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn col_means_are_correct() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 10.0, 3.0, 20.0]);
        assert_eq!(m.col_means(), vec![2.0, 15.0]);
    }

    #[test]
    fn fingerprint_is_stable_and_invalidated_by_mutation() {
        let mut m = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let before = m.fingerprint();
        assert_eq!(m.fingerprint(), before, "repeated reads are memoized");
        assert_eq!(m.clone().fingerprint(), before, "clones hash identically");
        m.set(2, 1, 99.0);
        assert_ne!(m.fingerprint(), before, "mutation must reset the memo");
        // Shape participates: same data length, different shape.
        let a = DenseMatrix::from_vec(2, 3, vec![1.0; 6]);
        let b = DenseMatrix::from_vec(3, 2, vec![1.0; 6]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        DenseMatrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions must match")]
    fn matmul_shape_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
