//! Singular Value Decomposition via one-sided Jacobi rotations.
//!
//! The [`svd`] kernel works on a contiguous **column-major** copy of the
//! input: one-sided Jacobi touches whole columns (Gram accumulation and
//! plane rotations), so laying each column out as a flat slice turns
//! every inner loop into a bounds-check-free `zip` over contiguous
//! memory. The floating-point accumulation order of the original
//! per-element loops is preserved exactly, so the output is
//! **bit-identical** to the naive implementation (kept as
//! [`svd_reference`] for property tests and the kernel benchmarks).

use std::sync::OnceLock;

use quasar_obs::registry::{Counter, Registry};

use crate::dense::DenseMatrix;
use crate::scratch::{self, CfScratch};

/// Convergence threshold for column orthogonality, relative to column norms.
const JACOBI_TOL: f64 = 1e-12;

/// Maximum number of Jacobi sweeps; in practice a handful suffice.
const MAX_SWEEPS: usize = 60;

/// Registry handles for the Jacobi kernel counters
/// (`quasar.cf.svd.*`). Both count logical work — a pure function of
/// the decomposed matrices — so they stay in deterministic snapshots.
fn svd_metrics() -> &'static (Counter, Counter) {
    static METRICS: OnceLock<(Counter, Counter)> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        (
            reg.counter("quasar.cf.svd.sweeps"),
            reg.counter("quasar.cf.svd.rotations"),
        )
    })
}

/// The result of a singular value decomposition `A = U · diag(σ) · Vᵀ`.
///
/// `U` is `m × r`, `V` is `n × r`, and `singular_values` holds the `r =
/// min(m, n)` singular values in non-increasing order.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors, one per column.
    pub u: DenseMatrix,
    /// Singular values in non-increasing order.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, one per column.
    pub v: DenseMatrix,
}

impl Svd {
    /// Reconstructs `U · diag(σ) · Vᵀ`.
    ///
    /// Evaluates each cell as a dot product of the `U` row and `V` row
    /// slices (this sits inside the fig3 exhaustive-baseline loop); the
    /// `k`-order summation matches the original `from_fn` closure
    /// bit-for-bit.
    pub fn reconstruct(&self) -> DenseMatrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let r = self.singular_values.len();
        let sigma = &self.singular_values[..];
        let mut data = Vec::with_capacity(m * n);
        // The scaled products `u_ik · σ_k` are hoisted out of the inner
        // `j` loop: `m·n·r` multiplies become `m·r` scales plus a plain
        // inner product. `u * s * v` parses as `(u * s) * v`, so reusing
        // the `u * s` product changes no operation and no bit.
        let mut us = vec![0.0; r];
        for i in 0..m {
            let urow = &self.u.row(i)[..r];
            for (dst, (&u, &s)) in us.iter_mut().zip(urow.iter().zip(sigma)) {
                *dst = u * s;
            }
            for j in 0..n {
                let vrow = &self.v.row(j)[..r];
                let mut sum = 0.0;
                for (&us_k, &v) in us.iter().zip(vrow) {
                    sum += us_k * v;
                }
                data.push(sum);
            }
        }
        DenseMatrix::from_vec(m, n, data)
    }

    /// The smallest rank whose singular values capture at least `energy`
    /// (a fraction in `(0, 1]`) of the total squared spectrum.
    ///
    /// Always returns at least 1.
    pub fn rank_for_energy(&self, energy: f64) -> usize {
        let total: f64 = self.singular_values.iter().map(|s| s * s).sum();
        // A non-finite spectrum (NaN singular values from degenerate
        // inputs) must be guarded explicitly: a NaN total fails
        // `<= 0.0`, and downstream `acc >= NaN-target` never fires, so
        // the old code silently returned full rank.
        if !total.is_finite() || total <= 0.0 {
            return 1;
        }
        let target = energy.clamp(0.0, 1.0) * total;
        let mut acc = 0.0;
        for (k, s) in self.singular_values.iter().enumerate() {
            acc += s * s;
            if acc >= target {
                return k + 1;
            }
        }
        self.singular_values.len().max(1)
    }
}

/// Two disjoint column slices (`p < q`) of a column-major buffer whose
/// columns are `len` elements long.
#[inline]
fn col_pair_mut(data: &mut [f64], len: usize, p: usize, q: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(p < q, "column pair must be ordered");
    let (left, right) = data.split_at_mut(q * len);
    (&mut left[p * len..p * len + len], &mut right[..len])
}

/// Lanes per block of the width-blocked rotation kernel: one 4-wide
/// `f64` vector (AVX2) or two 2-wide ones (SSE2/NEON).
const ROTATE_LANES: usize = 4;

/// The straight-line rotation loop, kept both as the remainder handler
/// of [`rotate_cols`] and as the comparison baseline for the
/// blocked-vs-scalar benches and proptests.
#[inline]
pub fn rotate_cols_scalar(colp: &mut [f64], colq: &mut [f64], c: f64, s: f64) {
    for (x, y) in colp.iter_mut().zip(colq.iter_mut()) {
        let (ap, aq) = (*x, *y);
        *x = c * ap - s * aq;
        *y = s * ap + c * aq;
    }
}

/// Applies the plane rotation `(x, y) ← (c·x − s·y, s·x + c·y)` to a
/// column pair, blocked into [`ROTATE_LANES`]-wide bodies over fixed-size
/// array chunks (so every lane is bounds-check-free and the block maps
/// onto one SIMD register) with a scalar remainder. Each element is
/// rotated independently — there is no cross-element accumulation to
/// reassociate — so blocking stays inside the §4f bit-identity contract:
/// the output is identical to [`rotate_cols_scalar`] bit for bit.
#[inline]
pub fn rotate_cols(colp: &mut [f64], colq: &mut [f64], c: f64, s: f64) {
    debug_assert_eq!(colp.len(), colq.len(), "column pair lengths match");
    let mut ps = colp.chunks_exact_mut(ROTATE_LANES);
    let mut qs = colq.chunks_exact_mut(ROTATE_LANES);
    for (p, q) in ps.by_ref().zip(qs.by_ref()) {
        let p: &mut [f64; ROTATE_LANES] = p.try_into().expect("chunk is ROTATE_LANES wide");
        let q: &mut [f64; ROTATE_LANES] = q.try_into().expect("chunk is ROTATE_LANES wide");
        for k in 0..ROTATE_LANES {
            let (ap, aq) = (p[k], q[k]);
            p[k] = c * ap - s * aq;
            q[k] = s * ap + c * aq;
        }
    }
    rotate_cols_scalar(ps.into_remainder(), qs.into_remainder(), c, s);
}

/// Computes the thin SVD of `a` with the one-sided Jacobi method.
///
/// One-sided Jacobi applies plane rotations to the columns of a working
/// copy of `A` until all column pairs are mutually orthogonal; the column
/// norms are then the singular values, the normalized columns form `U`, and
/// the accumulated rotations form `V`. For matrices with more columns than
/// rows the decomposition is computed on `Aᵀ` and the factors swapped.
///
/// The working copy (and the rotation accumulator `V`) live in flat
/// column-major buffers, so the Gram accumulation, the rotations, and
/// the final norm pass all run over contiguous slices. Output is
/// bit-identical to [`svd_reference`].
///
/// # Examples
///
/// ```
/// use quasar_cf::{svd, DenseMatrix};
///
/// let a = DenseMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
/// let d = svd(&a);
/// assert!((d.singular_values[0] - 4.0).abs() < 1e-9);
/// assert!((d.singular_values[1] - 3.0).abs() < 1e-9);
/// assert!(d.reconstruct().max_abs_diff(&a) < 1e-9);
/// ```
pub fn svd(a: &DenseMatrix) -> Svd {
    scratch::with(|s| svd_in(a, s))
}

/// [`svd`] against an explicit workspace arena.
///
/// Identical output, but every working buffer (and the output buffers,
/// when `scratch` holds recycled ones — see [`CfScratch::recycle_svd`])
/// comes from `scratch`, so a warmed arena makes the whole decomposition
/// allocation-free. [`svd`] itself is this function against the calling
/// thread's default arena.
pub fn svd_in(a: &DenseMatrix, scratch: &mut CfScratch) -> Svd {
    // The decomposition runs on the tall orientation: M = Aᵀ when A is
    // wide. The column-major layout of Aᵀ is exactly A's row-major
    // buffer, so the wide case needs no transpose pass at all — just a
    // copy of the data and a swap of the factors on the way out.
    let wide = a.rows() < a.cols();
    let (m, n) = if wide {
        (a.cols(), a.rows())
    } else {
        (a.rows(), a.cols())
    };
    let CfScratch {
        svd_work: work,
        svd_v: v,
        svd_norms: norms,
        svd_order: order,
        svd_out,
        stats,
        ..
    } = scratch;
    // Column-major working set: column c occupies work[c·m .. (c+1)·m].
    // Laying the working set out by column is what makes every sweep
    // below contiguous.
    if wide {
        stats.reserve(work, m * n);
        work.extend_from_slice(a.as_slice());
    } else {
        stats.checkout(work, m * n);
        for r in 0..m {
            for (c, &value) in a.row(r).iter().enumerate() {
                work[c * m + r] = value;
            }
        }
    }
    stats.checkout(v, n * n);
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let (mut sweep_count, mut rotation_count) = (0u64, 0u64);
    for _ in 0..MAX_SWEEPS {
        sweep_count += 1;
        let mut off_diagonal = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (wp, wq) = col_pair_mut(work, m, p, q);
                // Fused Gram accumulation: α = ‖a_p‖², β = ‖a_q‖²,
                // γ = a_p·a_q in one pass, each sum in ascending row
                // order exactly as the reference loops.
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for (&ap, &aq) in wp.iter().zip(wq.iter()) {
                    alpha += ap * ap;
                    beta += aq * aq;
                    gamma += ap * aq;
                }
                if gamma.abs() <= JACOBI_TOL * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                off_diagonal = true;
                rotation_count += 1;
                // Jacobi rotation that zeroes the (p, q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_cols(wp, wq, c, s);
                let (vp, vq) = col_pair_mut(v, n, p, q);
                rotate_cols(vp, vq, c, s);
            }
        }
        if !off_diagonal {
            break;
        }
    }
    // One batched registry update per decomposition, not one atomic RMW
    // per rotation inside the hot loop.
    let (sweeps, rotations) = svd_metrics();
    sweeps.add(sweep_count);
    rotations.add(rotation_count);

    // Column norms are the singular values; sort them descending.
    stats.reserve(norms, n);
    norms.extend(
        work.chunks_exact(m)
            .map(|col| col.iter().map(|x| x.powi(2)).sum::<f64>().sqrt()),
    );
    stats.reserve(order, n);
    order.extend(0..n);
    sort_desc_by_norm(order, norms);

    let (mut u_data, mut v_data, mut singular_values) = svd_out.take().unwrap_or_default();
    // The wide case returns the factors swapped, so a recycled pair
    // comes back with the big (m·n) buffer in the small (n·n) slot and
    // vice versa. Route the larger capacity to the larger target (m ≥ n
    // here) — contents don't matter, checkout overwrites them.
    if u_data.capacity() < v_data.capacity() {
        std::mem::swap(&mut u_data, &mut v_data);
    }
    stats.checkout(&mut u_data, m * n);
    stats.checkout(&mut v_data, n * n);
    stats.reserve(&mut singular_values, n);
    for (k, &c) in order.iter().enumerate() {
        let norm = norms[c];
        singular_values.push(norm);
        if norm > 0.0 {
            for (i, &w) in work[c * m..(c + 1) * m].iter().enumerate() {
                u_data[i * n + k] = w / norm;
            }
        }
        for (i, &x) in v[c * n..(c + 1) * n].iter().enumerate() {
            v_data[i * n + k] = x;
        }
    }

    let u = DenseMatrix::from_vec(m, n, u_data);
    let v = DenseMatrix::from_vec(n, n, v_data);
    if wide {
        Svd {
            u: v,
            singular_values,
            v: u,
        }
    } else {
        Svd {
            u,
            singular_values,
            v,
        }
    }
}

/// Stable insertion sort of `order` by descending `norms` value.
///
/// Replaces the standard library's stable `sort_by` in [`svd_in`]'s norm
/// ordering: any stable sort yields the identical permutation (ties keep
/// their index order), and — unlike the standard sort, which heap-buffers
/// merge runs — this one allocates nothing. `n ≤ 81` here, so the O(n²)
/// worst case is noise next to the Jacobi sweeps.
fn sort_desc_by_norm(order: &mut [usize], norms: &[f64]) {
    for i in 1..order.len() {
        let mut j = i;
        while j > 0
            && norms[order[j]].total_cmp(&norms[order[j - 1]]) == std::cmp::Ordering::Greater
        {
            order.swap(j, j - 1);
            j -= 1;
        }
    }
}

/// The pre-refactor scalar-loop Jacobi SVD, frozen verbatim as the
/// correctness oracle: property tests assert [`svd`] matches it
/// bit-for-bit, and `quasar-experiments bench-kernels` measures the
/// slice kernel's speedup against it. Every element access goes through
/// bounds-checked `get`/`set` with column-strided reads over the
/// row-major buffer — exactly the cache-hostile shape the flat-slice
/// kernel replaces.
pub fn svd_reference(a: &DenseMatrix) -> Svd {
    if a.rows() < a.cols() {
        let t = svd_reference(&a.transpose());
        return Svd {
            u: t.v,
            singular_values: t.singular_values,
            v: t.u,
        };
    }

    let m = a.rows();
    let n = a.cols();
    let mut work = a.clone();
    let mut v = DenseMatrix::identity(n);

    for _ in 0..MAX_SWEEPS {
        let mut off_diagonal = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    let ap = work.get(i, p);
                    let aq = work.get(i, q);
                    alpha += ap * ap;
                    beta += aq * aq;
                    gamma += ap * aq;
                }
                if gamma.abs() <= JACOBI_TOL * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                off_diagonal = true;
                // Jacobi rotation that zeroes the (p, q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let ap = work.get(i, p);
                    let aq = work.get(i, q);
                    work.set(i, p, c * ap - s * aq);
                    work.set(i, q, s * ap + c * aq);
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
            }
        }
        if !off_diagonal {
            break;
        }
    }

    // Column norms are the singular values; sort them descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|c| (0..m).map(|i| work.get(i, c).powi(2)).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&x, &y| norms[y].total_cmp(&norms[x]));

    let mut u = DenseMatrix::zeros(m, n);
    let mut v_sorted = DenseMatrix::zeros(n, n);
    let mut singular_values = Vec::with_capacity(n);
    for (k, &c) in order.iter().enumerate() {
        let norm = norms[c];
        singular_values.push(norm);
        for i in 0..m {
            let val = if norm > 0.0 {
                work.get(i, c) / norm
            } else {
                0.0
            };
            u.set(i, k, val);
        }
        for i in 0..n {
            v_sorted.set(i, k, v.get(i, c));
        }
    }

    Svd {
        u,
        singular_values,
        v: v_sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_reconstructs(a: &DenseMatrix, tol: f64) {
        let d = svd(a);
        assert!(
            d.reconstruct().max_abs_diff(a) < tol,
            "SVD must reconstruct the input"
        );
        for w in d.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values must be sorted");
        }
        for s in &d.singular_values {
            assert!(*s >= 0.0, "singular values must be non-negative");
        }
    }

    fn assert_bit_identical(a: &DenseMatrix) {
        let fast = svd(a);
        let slow = svd_reference(a);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&fast.singular_values),
            bits(&slow.singular_values),
            "singular values must match the reference bit-for-bit"
        );
        assert_eq!(bits(fast.u.as_slice()), bits(slow.u.as_slice()));
        assert_eq!(bits(fast.v.as_slice()), bits(slow.v.as_slice()));
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 1.0]);
        let d = svd(&a);
        assert!((d.singular_values[0] - 5.0).abs() < 1e-9);
        assert!((d.singular_values[1] - 2.0).abs() < 1e-9);
        assert!((d.singular_values[2] - 1.0).abs() < 1e-9);
        assert_reconstructs(&a, 1e-9);
    }

    #[test]
    fn tall_matrix() {
        let a = DenseMatrix::from_fn(5, 3, |r, c| ((r + 1) * (c + 2)) as f64 + (r as f64) * 0.3);
        assert_reconstructs(&a, 1e-8);
        assert_bit_identical(&a);
    }

    #[test]
    fn wide_matrix() {
        let a = DenseMatrix::from_fn(3, 6, |r, c| (r as f64 - 1.0) * (c as f64 + 0.5) + 2.0);
        assert_reconstructs(&a, 1e-8);
        assert_bit_identical(&a);
    }

    #[test]
    fn history_shaped_matrix_is_bit_identical_to_reference() {
        // The shape the classifier decomposes on every arrival.
        let a = DenseMatrix::from_fn(25, 81, |r, c| {
            ((r * 13 + c * 7) % 17) as f64 * 0.25 + (r as f64) * 0.1
        });
        assert_bit_identical(&a);
    }

    #[test]
    fn rank_one_matrix_has_one_singular_value() {
        let a = DenseMatrix::from_fn(4, 4, |r, c| ((r + 1) * (c + 1)) as f64);
        let d = svd(&a);
        assert!(d.singular_values[0] > 1.0);
        for s in &d.singular_values[1..] {
            assert!(*s < 1e-8, "rank-1 matrix has a single non-zero σ");
        }
        assert_eq!(d.rank_for_energy(0.99), 1);
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(3, 2);
        let d = svd(&a);
        assert!(d.singular_values.iter().all(|&s| s == 0.0));
        assert!(d.reconstruct().max_abs_diff(&a) < 1e-12);
        assert_bit_identical(&a);
    }

    #[test]
    fn u_columns_are_orthonormal() {
        let a = DenseMatrix::from_fn(6, 4, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0);
        let d = svd(&a);
        for p in 0..d.u.cols() {
            for q in p..d.u.cols() {
                let dot: f64 = (0..d.u.rows()).map(|i| d.u.get(i, p) * d.u.get(i, q)).sum();
                let expect = if p == q { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8, "u columns {p},{q}: dot={dot}");
            }
        }
    }

    #[test]
    fn rank_for_energy_is_monotone() {
        let a = DenseMatrix::from_fn(5, 5, |r, c| 1.0 / (1.0 + r as f64 + c as f64));
        let d = svd(&a);
        assert!(d.rank_for_energy(0.5) <= d.rank_for_energy(0.9));
        assert!(d.rank_for_energy(0.9) <= d.rank_for_energy(1.0));
        assert!(d.rank_for_energy(0.0) >= 1);
    }

    #[test]
    fn rank_for_energy_guards_non_finite_spectrum() {
        // Regression: a NaN total used to slip past `total <= 0.0`, and
        // `acc >= NaN` never fires, so the old code returned full rank.
        let nan = Svd {
            u: DenseMatrix::identity(3),
            singular_values: vec![f64::NAN, 1.0, 0.5],
            v: DenseMatrix::identity(3),
        };
        assert_eq!(nan.rank_for_energy(0.95), 1);
        let inf = Svd {
            u: DenseMatrix::identity(2),
            singular_values: vec![f64::INFINITY, 1.0],
            v: DenseMatrix::identity(2),
        };
        assert_eq!(inf.rank_for_energy(0.95), 1);
    }

    #[test]
    fn blocked_rotation_matches_scalar_across_remainder_classes() {
        let (c, s) = (0.8, 0.6);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 81] {
            let base_p: Vec<f64> = (0..len).map(|i| i as f64 * 0.37 - 4.0).collect();
            let base_q: Vec<f64> = (0..len).map(|i| 2.5 - i as f64 * 0.11).collect();
            let (mut bp, mut bq) = (base_p.clone(), base_q.clone());
            let (mut sp, mut sq) = (base_p, base_q);
            rotate_cols(&mut bp, &mut bq, c, s);
            rotate_cols_scalar(&mut sp, &mut sq, c, s);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&bp), bits(&sp), "len {len}");
            assert_eq!(bits(&bq), bits(&sq), "len {len}");
        }
    }

    #[test]
    fn svd_in_with_recycled_buffers_is_bit_identical() {
        let a = DenseMatrix::from_fn(9, 6, |r, c| ((r * 5 + c * 3) % 13) as f64 * 0.5 - 3.0);
        let baseline = svd_reference(&a);
        let mut s = CfScratch::new();
        let first = svd_in(&a, &mut s);
        s.recycle_svd(first);
        // Second run through the warmed arena with recycled outputs.
        let again = svd_in(&a, &mut s);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&again.singular_values),
            bits(&baseline.singular_values)
        );
        assert_eq!(bits(again.u.as_slice()), bits(baseline.u.as_slice()));
        assert_eq!(bits(again.v.as_slice()), bits(baseline.v.as_slice()));
    }

    #[test]
    fn sweep_and_rotation_counters_advance() {
        let (sweeps, rotations) = svd_metrics();
        let (s0, r0) = (sweeps.get(), rotations.get());
        let a = DenseMatrix::from_fn(6, 4, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0);
        let _ = svd(&a);
        assert!(sweeps.get() > s0, "a non-trivial SVD must record sweeps");
        assert!(rotations.get() > r0, "a non-trivial SVD must rotate");
    }
}
