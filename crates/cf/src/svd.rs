//! Singular Value Decomposition via one-sided Jacobi rotations.

use crate::dense::DenseMatrix;

/// Convergence threshold for column orthogonality, relative to column norms.
const JACOBI_TOL: f64 = 1e-12;

/// Maximum number of Jacobi sweeps; in practice a handful suffice.
const MAX_SWEEPS: usize = 60;

/// The result of a singular value decomposition `A = U · diag(σ) · Vᵀ`.
///
/// `U` is `m × r`, `V` is `n × r`, and `singular_values` holds the `r =
/// min(m, n)` singular values in non-increasing order.
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    /// Left singular vectors, one per column.
    pub u: DenseMatrix,
    /// Singular values in non-increasing order.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, one per column.
    pub v: DenseMatrix,
}

impl Svd {
    /// Reconstructs `U · diag(σ) · Vᵀ`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let r = self.singular_values.len();
        DenseMatrix::from_fn(m, n, |i, j| {
            (0..r)
                .map(|k| self.u.get(i, k) * self.singular_values[k] * self.v.get(j, k))
                .sum()
        })
    }

    /// The smallest rank whose singular values capture at least `energy`
    /// (a fraction in `(0, 1]`) of the total squared spectrum.
    ///
    /// Always returns at least 1.
    pub fn rank_for_energy(&self, energy: f64) -> usize {
        let total: f64 = self.singular_values.iter().map(|s| s * s).sum();
        if total <= 0.0 {
            return 1;
        }
        let target = energy.clamp(0.0, 1.0) * total;
        let mut acc = 0.0;
        for (k, s) in self.singular_values.iter().enumerate() {
            acc += s * s;
            if acc >= target {
                return k + 1;
            }
        }
        self.singular_values.len().max(1)
    }
}

/// Computes the thin SVD of `a` with the one-sided Jacobi method.
///
/// One-sided Jacobi applies plane rotations to the columns of a working
/// copy of `A` until all column pairs are mutually orthogonal; the column
/// norms are then the singular values, the normalized columns form `U`, and
/// the accumulated rotations form `V`. For matrices with more columns than
/// rows the decomposition is computed on `Aᵀ` and the factors swapped.
///
/// # Examples
///
/// ```
/// use quasar_cf::{svd, DenseMatrix};
///
/// let a = DenseMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
/// let d = svd(&a);
/// assert!((d.singular_values[0] - 4.0).abs() < 1e-9);
/// assert!((d.singular_values[1] - 3.0).abs() < 1e-9);
/// assert!(d.reconstruct().max_abs_diff(&a) < 1e-9);
/// ```
pub fn svd(a: &DenseMatrix) -> Svd {
    if a.rows() < a.cols() {
        let t = svd(&a.transpose());
        return Svd {
            u: t.v,
            singular_values: t.singular_values,
            v: t.u,
        };
    }

    let m = a.rows();
    let n = a.cols();
    let mut work = a.clone();
    let mut v = DenseMatrix::identity(n);

    for _ in 0..MAX_SWEEPS {
        let mut off_diagonal = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    let ap = work.get(i, p);
                    let aq = work.get(i, q);
                    alpha += ap * ap;
                    beta += aq * aq;
                    gamma += ap * aq;
                }
                if gamma.abs() <= JACOBI_TOL * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                off_diagonal = true;
                // Jacobi rotation that zeroes the (p, q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let ap = work.get(i, p);
                    let aq = work.get(i, q);
                    work.set(i, p, c * ap - s * aq);
                    work.set(i, q, s * ap + c * aq);
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
            }
        }
        if !off_diagonal {
            break;
        }
    }

    // Column norms are the singular values; sort them descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|c| (0..m).map(|i| work.get(i, c).powi(2)).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&x, &y| norms[y].total_cmp(&norms[x]));

    let mut u = DenseMatrix::zeros(m, n);
    let mut v_sorted = DenseMatrix::zeros(n, n);
    let mut singular_values = Vec::with_capacity(n);
    for (k, &c) in order.iter().enumerate() {
        let norm = norms[c];
        singular_values.push(norm);
        for i in 0..m {
            let val = if norm > 0.0 {
                work.get(i, c) / norm
            } else {
                0.0
            };
            u.set(i, k, val);
        }
        for i in 0..n {
            v_sorted.set(i, k, v.get(i, c));
        }
    }

    Svd {
        u,
        singular_values,
        v: v_sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_reconstructs(a: &DenseMatrix, tol: f64) {
        let d = svd(a);
        assert!(
            d.reconstruct().max_abs_diff(a) < tol,
            "SVD must reconstruct the input"
        );
        for w in d.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values must be sorted");
        }
        for s in &d.singular_values {
            assert!(*s >= 0.0, "singular values must be non-negative");
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 1.0]);
        let d = svd(&a);
        assert!((d.singular_values[0] - 5.0).abs() < 1e-9);
        assert!((d.singular_values[1] - 2.0).abs() < 1e-9);
        assert!((d.singular_values[2] - 1.0).abs() < 1e-9);
        assert_reconstructs(&a, 1e-9);
    }

    #[test]
    fn tall_matrix() {
        let a = DenseMatrix::from_fn(5, 3, |r, c| ((r + 1) * (c + 2)) as f64 + (r as f64) * 0.3);
        assert_reconstructs(&a, 1e-8);
    }

    #[test]
    fn wide_matrix() {
        let a = DenseMatrix::from_fn(3, 6, |r, c| (r as f64 - 1.0) * (c as f64 + 0.5) + 2.0);
        assert_reconstructs(&a, 1e-8);
    }

    #[test]
    fn rank_one_matrix_has_one_singular_value() {
        let a = DenseMatrix::from_fn(4, 4, |r, c| ((r + 1) * (c + 1)) as f64);
        let d = svd(&a);
        assert!(d.singular_values[0] > 1.0);
        for s in &d.singular_values[1..] {
            assert!(*s < 1e-8, "rank-1 matrix has a single non-zero σ");
        }
        assert_eq!(d.rank_for_energy(0.99), 1);
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(3, 2);
        let d = svd(&a);
        assert!(d.singular_values.iter().all(|&s| s == 0.0));
        assert!(d.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn u_columns_are_orthonormal() {
        let a = DenseMatrix::from_fn(6, 4, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0);
        let d = svd(&a);
        for p in 0..d.u.cols() {
            for q in p..d.u.cols() {
                let dot: f64 = (0..d.u.rows()).map(|i| d.u.get(i, p) * d.u.get(i, q)).sum();
                let expect = if p == q { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8, "u columns {p},{q}: dot={dot}");
            }
        }
    }

    #[test]
    fn rank_for_energy_is_monotone() {
        let a = DenseMatrix::from_fn(5, 5, |r, c| 1.0 / (1.0 + r as f64 + c as f64));
        let d = svd(&a);
        assert!(d.rank_for_energy(0.5) <= d.rank_for_energy(0.9));
        assert!(d.rank_for_energy(0.9) <= d.rank_for_energy(1.0));
        assert!(d.rank_for_energy(0.0) >= 1);
    }
}
