//! Sparse observation matrices.

use crate::dense::DenseMatrix;

/// A sparse matrix of observed entries, the input to collaborative
/// filtering: rows are workloads, columns are configurations, and an entry
/// is a measured performance value (paper §3.2).
///
/// # Examples
///
/// ```
/// use quasar_cf::SparseMatrix;
///
/// let mut a = SparseMatrix::new(2, 4);
/// a.insert(0, 1, 3.5);
/// a.insert(1, 3, 7.0);
/// assert_eq!(a.get(0, 1), Some(3.5));
/// assert_eq!(a.get(0, 0), None);
/// assert!((a.density() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<Vec<(usize, f64)>>,
    count: usize,
}

impl SparseMatrix {
    /// Creates an empty `rows × cols` sparse matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> SparseMatrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        SparseMatrix {
            rows,
            cols,
            entries: vec![Vec::new(); rows],
            count: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of observed entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no entries have been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fraction of cells that are observed, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.count as f64 / (self.rows * self.cols) as f64
    }

    /// Inserts (or overwrites) an observation.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or `value` is not finite.
    pub fn insert(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        assert!(value.is_finite(), "observations must be finite");
        let row_entries = &mut self.entries[row];
        match row_entries.iter_mut().find(|(c, _)| *c == col) {
            Some((_, v)) => *v = value,
            None => {
                row_entries.push((col, value));
                self.count += 1;
            }
        }
    }

    /// The observation at (`row`, `col`), if present.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.entries[row]
            .iter()
            .find(|(c, _)| *c == col)
            .map(|(_, v)| *v)
    }

    /// The observed `(col, value)` pairs in row `row`.
    pub fn row_entries(&self, row: usize) -> &[(usize, f64)] {
        assert!(row < self.rows, "row out of bounds");
        &self.entries[row]
    }

    /// Iterates over all observations as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter().map(move |&(c, v)| (r, c, v)))
    }

    /// Mean of all observed values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.iter().map(|(_, _, v)| v).sum::<f64>() / self.count as f64)
    }

    /// Mean of the observed values in each column; `None` for columns with
    /// no observations.
    pub fn col_means(&self) -> Vec<Option<f64>> {
        let mut sums = vec![0.0; self.cols];
        let mut counts = vec![0usize; self.cols];
        for (_, c, v) in self.iter() {
            sums[c] += v;
            counts[c] += 1;
        }
        sums.into_iter()
            .zip(counts)
            .map(|(s, n)| if n > 0 { Some(s / n as f64) } else { None })
            .collect()
    }

    /// Densifies by filling missing cells: first with the column mean, then
    /// (for columns with no observations at all) with the global mean, and
    /// finally with zero if the matrix is empty.
    pub fn to_dense_filled(&self) -> DenseMatrix {
        let global = self.mean().unwrap_or(0.0);
        let col_means = self.col_means();
        let mut dense =
            DenseMatrix::from_fn(self.rows, self.cols, |_, c| col_means[c].unwrap_or(global));
        for (r, c, v) in self.iter() {
            dense.set(r, c, v);
        }
        dense
    }

    /// Builds a fully-observed sparse matrix from the rows of `dense` in
    /// one pass.
    ///
    /// Equivalent to calling [`SparseMatrix::insert`] for every cell in
    /// row-major order, but without `insert`'s per-call linear duplicate
    /// scan of the row (which makes dense per-cell insertion
    /// O(rows · cols²)); each row slice is copied straight into the
    /// entry list.
    ///
    /// # Panics
    ///
    /// Panics if any value is not finite.
    pub fn from_dense_rows(dense: &DenseMatrix) -> SparseMatrix {
        let rows = dense.rows();
        let cols = dense.cols();
        let entries: Vec<Vec<(usize, f64)>> = (0..rows)
            .map(|r| {
                dense
                    .row(r)
                    .iter()
                    .enumerate()
                    .map(|(c, &v)| {
                        assert!(v.is_finite(), "observations must be finite");
                        (c, v)
                    })
                    .collect()
            })
            .collect();
        SparseMatrix {
            rows,
            cols,
            entries,
            count: rows * cols,
        }
    }

    /// Appends an all-missing row, returning its index.
    pub fn push_row(&mut self) -> usize {
        self.entries.push(Vec::new());
        self.rows += 1;
        self.rows - 1
    }

    /// Resets to an empty `rows × cols` matrix, retaining the entry-list
    /// allocations — observably identical to [`SparseMatrix::new`] but
    /// allocation-free once the pooled instance has seen the shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.entries.truncate(rows);
        for row in &mut self.entries {
            row.clear();
        }
        self.entries.resize_with(rows, Vec::new);
        self.rows = rows;
        self.cols = cols;
        self.count = 0;
    }

    /// In-place [`SparseMatrix::from_dense_rows`]: refills this matrix
    /// from the rows of `dense`, retaining the entry-list allocations.
    /// The resulting state is equal to a freshly-built instance.
    ///
    /// # Panics
    ///
    /// Panics if any value is not finite.
    pub fn assign_dense_rows(&mut self, dense: &DenseMatrix) {
        let rows = dense.rows();
        let cols = dense.cols();
        self.entries.truncate(rows);
        for row in &mut self.entries {
            row.clear();
        }
        self.entries.resize_with(rows, Vec::new);
        for (r, row) in self.entries.iter_mut().enumerate() {
            row.extend(dense.row(r).iter().enumerate().map(|(c, &v)| {
                assert!(v.is_finite(), "observations must be finite");
                (c, v)
            }));
        }
        self.rows = rows;
        self.cols = cols;
        self.count = rows * cols;
    }

    /// The values of [`SparseMatrix::to_dense_filled`] written into a
    /// pooled row-major buffer (`out`), with the per-column statistics
    /// computed in the pooled `sums`/`counts` buffers. Produces exactly
    /// the bits `to_dense_filled` produces: the column means are summed
    /// in the same iteration order and each missing cell reads the same
    /// precomputed mean.
    pub(crate) fn fill_dense_into(
        &self,
        out: &mut Vec<f64>,
        sums: &mut Vec<f64>,
        counts: &mut Vec<usize>,
    ) {
        let global = self.mean().unwrap_or(0.0);
        sums.clear();
        sums.resize(self.cols, 0.0);
        counts.clear();
        counts.resize(self.cols, 0);
        for (_, c, v) in self.iter() {
            sums[c] += v;
            counts[c] += 1;
        }
        // Reuse the sum buffer as the per-column fill value.
        for (s, &n) in sums.iter_mut().zip(counts.iter()) {
            if n > 0 {
                *s /= n as f64;
            } else {
                *s = global;
            }
        }
        out.clear();
        out.reserve(self.rows * self.cols);
        for _ in 0..self.rows {
            out.extend_from_slice(sums);
        }
        for (r, c, v) in self.iter() {
            out[r * self.cols + c] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_overwrites() {
        let mut a = SparseMatrix::new(1, 2);
        a.insert(0, 0, 1.0);
        a.insert(0, 0, 2.0);
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(0, 0), Some(2.0));
    }

    #[test]
    fn density_counts_unique_cells() {
        let mut a = SparseMatrix::new(2, 2);
        a.insert(0, 0, 1.0);
        a.insert(1, 1, 1.0);
        assert!((a.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(SparseMatrix::new(2, 2).mean(), None);
    }

    #[test]
    fn fill_uses_column_then_global_mean() {
        let mut a = SparseMatrix::new(2, 3);
        a.insert(0, 0, 2.0);
        a.insert(1, 0, 4.0);
        a.insert(0, 1, 10.0);
        let d = a.to_dense_filled();
        // Column 0 fully observed.
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 0), 4.0);
        // Column 1 missing row 1 -> column mean 10.
        assert_eq!(d.get(1, 1), 10.0);
        // Column 2 unobserved -> global mean (2+4+10)/3.
        assert!((d.get(0, 2) - 16.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn push_row_grows() {
        let mut a = SparseMatrix::new(1, 2);
        let r = a.push_row();
        assert_eq!(r, 1);
        assert_eq!(a.rows(), 2);
        a.insert(1, 1, 9.0);
        assert_eq!(a.get(1, 1), Some(9.0));
    }

    #[test]
    fn from_dense_rows_equals_per_cell_insertion() {
        let dense = DenseMatrix::from_fn(4, 5, |r, c| (r * 5 + c) as f64 * 0.5 - 3.0);
        let bulk = SparseMatrix::from_dense_rows(&dense);
        let mut cellwise = SparseMatrix::new(4, 5);
        for r in 0..4 {
            for c in 0..5 {
                cellwise.insert(r, c, dense.get(r, c));
            }
        }
        assert_eq!(bulk, cellwise);
        assert_eq!(bulk.len(), 20);
        assert!((bulk.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "observations must be finite")]
    fn from_dense_rows_rejects_non_finite() {
        let dense = DenseMatrix::from_fn(1, 2, |_, c| if c == 0 { 1.0 } else { f64::INFINITY });
        let _ = SparseMatrix::from_dense_rows(&dense);
    }

    #[test]
    #[should_panic(expected = "observations must be finite")]
    fn non_finite_observation_panics() {
        SparseMatrix::new(1, 1).insert(0, 0, f64::NAN);
    }

    #[test]
    fn reset_matches_new() {
        let mut pooled =
            SparseMatrix::from_dense_rows(&DenseMatrix::from_fn(5, 4, |r, c| (r * 4 + c) as f64));
        pooled.reset(3, 6);
        assert_eq!(pooled, SparseMatrix::new(3, 6));
        // Growing the row count must also work.
        pooled.reset(9, 2);
        assert_eq!(pooled, SparseMatrix::new(9, 2));
    }

    #[test]
    fn assign_dense_rows_matches_from_dense_rows() {
        let dense = DenseMatrix::from_fn(4, 5, |r, c| (r * 5 + c) as f64 * 0.5 - 3.0);
        let mut pooled = SparseMatrix::new(7, 2);
        pooled.insert(0, 1, 42.0);
        pooled.assign_dense_rows(&dense);
        assert_eq!(pooled, SparseMatrix::from_dense_rows(&dense));
        // And again from a larger previous shape down to a smaller one.
        let small = DenseMatrix::from_fn(2, 3, |r, c| (r + c) as f64);
        pooled.assign_dense_rows(&small);
        assert_eq!(pooled, SparseMatrix::from_dense_rows(&small));
    }

    #[test]
    fn fill_dense_into_is_bit_identical_to_to_dense_filled() {
        let mut a = SparseMatrix::new(4, 5);
        for (r, c, v) in [(0, 0, 2.0), (1, 0, 4.0), (0, 1, 10.0), (3, 3, -1.5)] {
            a.insert(r, c, v);
        }
        let reference = a.to_dense_filled();
        let (mut out, mut sums, mut counts) = (vec![9.0; 3], Vec::new(), vec![7]);
        a.fill_dense_into(&mut out, &mut sums, &mut counts);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&out), bits(reference.as_slice()));
    }
}
