//! Dual-stream FNV-1a fingerprinting shared by the dense-matrix content
//! cache and the row-reconstruction memo key.

/// 128-bit FNV-1a-style fingerprint, fed 64-bit words. Two independent
/// 64-bit streams keep the collision probability negligible for cache
/// keys (a collision would silently return the wrong row, so 64 bits
/// alone would be uncomfortable at millions of lookups).
#[derive(Clone, Copy)]
pub(crate) struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    pub(crate) fn new() -> Fingerprint {
        Fingerprint {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    pub(crate) fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_0193);
        }
    }

    pub(crate) fn float(&mut self, x: f64) {
        self.word(x.to_bits());
    }

    /// The two stream digests, for callers that fold the fingerprint
    /// into a larger key.
    pub(crate) fn digests(self) -> (u64, u64) {
        (self.a, self.b)
    }

    pub(crate) fn finish(self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}
