//! The end-to-end reconstruction pipeline used by Quasar's classifier.

use std::error::Error;
use std::fmt;

use crate::dense::DenseMatrix;
use crate::pq::{PqModel, SgdConfig};
use crate::sparse::SparseMatrix;

/// Error returned when a sparse matrix cannot be reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconstructError {
    /// The matrix has no observed entries at all.
    Empty,
    /// A row that must be predicted has no observations and no other row
    /// can anchor it (matrix has a single row).
    Unanchored,
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::Empty => write!(f, "matrix has no observed entries"),
            ReconstructError::Unanchored => {
                write!(f, "row cannot be anchored without other observations")
            }
        }
    }
}

impl Error for ReconstructError {}

/// End-to-end collaborative-filtering reconstruction: mean-fill → SVD →
/// PQ initialization → SGD → prediction, with optional clamping of the
/// predictions to the observed value range.
///
/// This is the "classification" primitive of the paper: given a sparse
/// matrix whose rows are workloads and whose columns are configurations,
/// produce the dense matrix of estimated performance.
///
/// # Examples
///
/// ```
/// use quasar_cf::{Reconstructor, SparseMatrix};
///
/// let mut a = SparseMatrix::new(4, 3);
/// for r in 0..4 {
///     for c in 0..3 {
///         if r != 2 || c != 1 {
///             a.insert(r, c, (r + 1) as f64 * (c + 1) as f64);
///         }
///     }
/// }
/// let dense = Reconstructor::new().reconstruct(&a);
/// assert!((dense.get(2, 1) - 6.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Reconstructor {
    config: SgdConfig,
    clamp_to_observed: bool,
}

impl Reconstructor {
    /// Creates a reconstructor with default SGD hyper-parameters and
    /// clamping enabled.
    pub fn new() -> Reconstructor {
        Reconstructor {
            config: SgdConfig::default(),
            clamp_to_observed: true,
        }
    }

    /// Overrides the SGD configuration.
    pub fn with_config(mut self, config: SgdConfig) -> Reconstructor {
        self.config = config;
        self
    }

    /// Enables or disables clamping predictions to the observed range
    /// (with 25% headroom on both sides).
    pub fn with_clamping(mut self, clamp: bool) -> Reconstructor {
        self.clamp_to_observed = clamp;
        self
    }

    /// The SGD configuration in use.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Reconstructs all cells of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty; use [`Reconstructor::try_reconstruct`] for a
    /// fallible variant.
    pub fn reconstruct(&self, a: &SparseMatrix) -> DenseMatrix {
        self.try_reconstruct(a).expect("matrix must be non-empty")
    }

    /// Reconstructs all cells of `a`, returning an error for degenerate
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ReconstructError::Empty`] when `a` has no observations.
    pub fn try_reconstruct(&self, a: &SparseMatrix) -> Result<DenseMatrix, ReconstructError> {
        if a.is_empty() {
            return Err(ReconstructError::Empty);
        }
        let model = PqModel::train(a, &self.config);
        let mut dense = model.predict_all();
        // Observed entries are authoritative; keep the raw measurements.
        for (r, c, v) in a.iter() {
            dense.set(r, c, v);
        }
        if self.clamp_to_observed {
            let (lo, hi) = observed_range(a);
            let span = (hi - lo).max(1e-12);
            let (lo, hi) = (lo - 0.25 * span, hi + 0.25 * span);
            dense = DenseMatrix::from_fn(dense.rows(), dense.cols(), |r, c| {
                dense.get(r, c).clamp(lo, hi)
            });
        }
        Ok(dense)
    }

    /// Predicts the missing entries of a single target row given a dense
    /// history of fully-observed rows (the offline-characterized and
    /// previously-scheduled workloads) plus sparse observations for the
    /// target (the profiling runs).
    ///
    /// Returns the full predicted row for the target.
    ///
    /// # Errors
    ///
    /// Returns [`ReconstructError::Unanchored`] when `history` is empty and
    /// the target row alone cannot be reconstructed, or
    /// [`ReconstructError::Empty`] when the target row has no observations.
    pub fn reconstruct_row(
        &self,
        history: &DenseMatrix,
        target: &[(usize, f64)],
    ) -> Result<Vec<f64>, ReconstructError> {
        if target.is_empty() {
            return Err(ReconstructError::Empty);
        }
        if history.rows() == 0 {
            return Err(ReconstructError::Unanchored);
        }
        let cols = history.cols();
        let mut sparse = SparseMatrix::new(history.rows() + 1, cols);
        for r in 0..history.rows() {
            for c in 0..cols {
                sparse.insert(r, c, history.get(r, c));
            }
        }
        let target_row = history.rows();
        for &(c, v) in target {
            sparse.insert(target_row, c, v);
        }
        let dense = self.try_reconstruct(&sparse)?;
        Ok((0..cols).map(|c| dense.get(target_row, c)).collect())
    }
}

fn observed_range(a: &SparseMatrix) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, _, v) in a.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_is_an_error() {
        let a = SparseMatrix::new(2, 2);
        assert_eq!(
            Reconstructor::new().try_reconstruct(&a),
            Err(ReconstructError::Empty)
        );
    }

    #[test]
    fn observed_entries_are_preserved_exactly() {
        let mut a = SparseMatrix::new(3, 3);
        a.insert(0, 0, 1.0);
        a.insert(1, 1, 7.0);
        a.insert(2, 2, 3.0);
        let d = Reconstructor::new().reconstruct(&a);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 7.0);
        assert_eq!(d.get(2, 2), 3.0);
    }

    #[test]
    fn clamping_bounds_predictions() {
        let mut a = SparseMatrix::new(3, 3);
        for r in 0..3 {
            a.insert(r, 0, 10.0 + r as f64);
        }
        a.insert(0, 1, 11.0);
        a.insert(0, 2, 12.0);
        let d = Reconstructor::new().reconstruct(&a);
        let span = 3.0; // observed range 10..13 -> wait, range is 10..12
        for r in 0..3 {
            for c in 0..3 {
                let v = d.get(r, c);
                assert!(v >= 10.0 - span && v <= 12.0 + span, "clamped value {v}");
            }
        }
    }

    #[test]
    fn reconstruct_row_predicts_from_history() {
        // History: rows proportional to [1, 2, 3, 4].
        let history = DenseMatrix::from_fn(5, 4, |r, c| (r as f64 + 1.0) * (c as f64 + 1.0));
        // Target row: scale 2.5, observed at columns 0 and 2.
        let row = Reconstructor::new()
            .reconstruct_row(&history, &[(0, 2.5), (2, 7.5)])
            .unwrap();
        assert!((row[1] - 5.0).abs() < 1.0, "predicted {}", row[1]);
        assert!((row[3] - 10.0).abs() < 2.0, "predicted {}", row[3]);
    }

    #[test]
    fn reconstruct_row_requires_observations() {
        let history = DenseMatrix::zeros(2, 2);
        assert_eq!(
            Reconstructor::new().reconstruct_row(&history, &[]),
            Err(ReconstructError::Empty)
        );
    }

    #[test]
    fn error_display_is_nonempty() {
        assert!(!ReconstructError::Empty.to_string().is_empty());
        assert!(!ReconstructError::Unanchored.to_string().is_empty());
    }
}
