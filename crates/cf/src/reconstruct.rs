//! The end-to-end reconstruction pipeline used by Quasar's classifier.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::dense::DenseMatrix;
use crate::pq::{PqModel, SgdConfig};
use crate::sparse::SparseMatrix;

/// Entries kept in the row-reconstruction memo before it is cleared.
/// Experiments reuse a handful of history matrices across thousands of
/// workloads, so a small bound captures nearly all the reuse.
const ROW_CACHE_CAP: usize = 1024;

/// 128-bit FNV-1a-style fingerprint, fed 64-bit words. Two independent
/// 64-bit streams keep the collision probability negligible for cache
/// keys (a collision would silently return the wrong row, so 64 bits
/// alone would be uncomfortable at millions of lookups).
#[derive(Clone, Copy)]
struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    fn new() -> Fingerprint {
        Fingerprint {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_0193);
        }
    }

    fn float(&mut self, x: f64) {
        self.word(x.to_bits());
    }

    fn finish(self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Shared memo for [`Reconstructor::reconstruct_row`]. Reconstruction
/// is a pure function of `(history, target, config)`, so returning a
/// cached row is observably identical to recomputing it — including
/// every bit of every float — which is what lets the cache stay enabled
/// under the deterministic parallel runner.
#[derive(Debug, Default)]
struct RowCache {
    map: Mutex<HashMap<u128, Vec<f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Error returned when a sparse matrix cannot be reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconstructError {
    /// The matrix has no observed entries at all.
    Empty,
    /// A row that must be predicted has no observations and no other row
    /// can anchor it (matrix has a single row).
    Unanchored,
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::Empty => write!(f, "matrix has no observed entries"),
            ReconstructError::Unanchored => {
                write!(f, "row cannot be anchored without other observations")
            }
        }
    }
}

impl Error for ReconstructError {}

/// End-to-end collaborative-filtering reconstruction: mean-fill → SVD →
/// PQ initialization → SGD → prediction, with optional clamping of the
/// predictions to the observed value range.
///
/// This is the "classification" primitive of the paper: given a sparse
/// matrix whose rows are workloads and whose columns are configurations,
/// produce the dense matrix of estimated performance.
///
/// # Examples
///
/// ```
/// use quasar_cf::{Reconstructor, SparseMatrix};
///
/// let mut a = SparseMatrix::new(4, 3);
/// for r in 0..4 {
///     for c in 0..3 {
///         if r != 2 || c != 1 {
///             a.insert(r, c, (r + 1) as f64 * (c + 1) as f64);
///         }
///     }
/// }
/// let dense = Reconstructor::new().reconstruct(&a);
/// assert!((dense.get(2, 1) - 6.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Reconstructor {
    config: SgdConfig,
    clamp_to_observed: bool,
    row_cache: Arc<RowCache>,
}

impl Reconstructor {
    /// Creates a reconstructor with default SGD hyper-parameters and
    /// clamping enabled.
    pub fn new() -> Reconstructor {
        Reconstructor {
            config: SgdConfig::default(),
            clamp_to_observed: true,
            row_cache: Arc::default(),
        }
    }

    /// Overrides the SGD configuration.
    pub fn with_config(mut self, config: SgdConfig) -> Reconstructor {
        self.config = config;
        self
    }

    /// Enables or disables clamping predictions to the observed range
    /// (with 25% headroom on both sides).
    pub fn with_clamping(mut self, clamp: bool) -> Reconstructor {
        self.clamp_to_observed = clamp;
        self
    }

    /// The SGD configuration in use.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Reconstructs all cells of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty; use [`Reconstructor::try_reconstruct`] for a
    /// fallible variant.
    pub fn reconstruct(&self, a: &SparseMatrix) -> DenseMatrix {
        self.try_reconstruct(a).expect("matrix must be non-empty")
    }

    /// Reconstructs all cells of `a`, returning an error for degenerate
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ReconstructError::Empty`] when `a` has no observations.
    pub fn try_reconstruct(&self, a: &SparseMatrix) -> Result<DenseMatrix, ReconstructError> {
        if a.is_empty() {
            return Err(ReconstructError::Empty);
        }
        let model = PqModel::train(a, &self.config);
        let mut dense = model.predict_all();
        // Observed entries are authoritative; keep the raw measurements.
        for (r, c, v) in a.iter() {
            dense.set(r, c, v);
        }
        if self.clamp_to_observed {
            let (lo, hi) = observed_range(a);
            let span = (hi - lo).max(1e-12);
            let (lo, hi) = (lo - 0.25 * span, hi + 0.25 * span);
            dense = DenseMatrix::from_fn(dense.rows(), dense.cols(), |r, c| {
                dense.get(r, c).clamp(lo, hi)
            });
        }
        Ok(dense)
    }

    /// Predicts the missing entries of a single target row given a dense
    /// history of fully-observed rows (the offline-characterized and
    /// previously-scheduled workloads) plus sparse observations for the
    /// target (the profiling runs).
    ///
    /// Returns the full predicted row for the target.
    ///
    /// # Errors
    ///
    /// Returns [`ReconstructError::Unanchored`] when `history` is empty and
    /// the target row alone cannot be reconstructed, or
    /// [`ReconstructError::Empty`] when the target row has no observations.
    pub fn reconstruct_row(
        &self,
        history: &DenseMatrix,
        target: &[(usize, f64)],
    ) -> Result<Vec<f64>, ReconstructError> {
        if target.is_empty() {
            return Err(ReconstructError::Empty);
        }
        if history.rows() == 0 {
            return Err(ReconstructError::Unanchored);
        }
        let key = self.row_key(history, target);
        if let Some(row) = self
            .row_cache
            .map
            .lock()
            .expect("row cache poisoned")
            .get(&key)
        {
            self.row_cache.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(row.clone());
        }
        self.row_cache.misses.fetch_add(1, Ordering::Relaxed);
        let row = self.reconstruct_row_uncached(history, target)?;
        let mut map = self.row_cache.map.lock().expect("row cache poisoned");
        if map.len() >= ROW_CACHE_CAP {
            map.clear();
        }
        map.insert(key, row.clone());
        Ok(row)
    }

    /// Cache hits and misses of the row memo, for benchmarks and tests.
    pub fn row_cache_stats(&self) -> (u64, u64) {
        (
            self.row_cache.hits.load(Ordering::Relaxed),
            self.row_cache.misses.load(Ordering::Relaxed),
        )
    }

    /// Fingerprints everything `reconstruct_row` depends on: matrix
    /// shape and contents, the sparse target (its density and values),
    /// the SGD hyper-parameters, and the clamping flag.
    fn row_key(&self, history: &DenseMatrix, target: &[(usize, f64)]) -> u128 {
        let mut fp = Fingerprint::new();
        fp.word(history.rows() as u64);
        fp.word(history.cols() as u64);
        for r in 0..history.rows() {
            for c in 0..history.cols() {
                fp.float(history.get(r, c));
            }
        }
        fp.word(target.len() as u64);
        for &(c, v) in target {
            fp.word(c as u64);
            fp.float(v);
        }
        fp.float(self.config.learning_rate);
        fp.float(self.config.regularization);
        fp.word(self.config.max_epochs as u64);
        fp.float(self.config.tolerance);
        fp.float(self.config.energy);
        fp.word(self.config.max_rank as u64);
        fp.word(self.config.seed);
        fp.word(u64::from(self.clamp_to_observed));
        fp.finish()
    }

    fn reconstruct_row_uncached(
        &self,
        history: &DenseMatrix,
        target: &[(usize, f64)],
    ) -> Result<Vec<f64>, ReconstructError> {
        let cols = history.cols();
        let mut sparse = SparseMatrix::new(history.rows() + 1, cols);
        for r in 0..history.rows() {
            for c in 0..cols {
                sparse.insert(r, c, history.get(r, c));
            }
        }
        let target_row = history.rows();
        for &(c, v) in target {
            sparse.insert(target_row, c, v);
        }
        let dense = self.try_reconstruct(&sparse)?;
        Ok((0..cols).map(|c| dense.get(target_row, c)).collect())
    }
}

fn observed_range(a: &SparseMatrix) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, _, v) in a.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_is_an_error() {
        let a = SparseMatrix::new(2, 2);
        assert_eq!(
            Reconstructor::new().try_reconstruct(&a),
            Err(ReconstructError::Empty)
        );
    }

    #[test]
    fn observed_entries_are_preserved_exactly() {
        let mut a = SparseMatrix::new(3, 3);
        a.insert(0, 0, 1.0);
        a.insert(1, 1, 7.0);
        a.insert(2, 2, 3.0);
        let d = Reconstructor::new().reconstruct(&a);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 7.0);
        assert_eq!(d.get(2, 2), 3.0);
    }

    #[test]
    fn clamping_bounds_predictions() {
        let mut a = SparseMatrix::new(3, 3);
        for r in 0..3 {
            a.insert(r, 0, 10.0 + r as f64);
        }
        a.insert(0, 1, 11.0);
        a.insert(0, 2, 12.0);
        let d = Reconstructor::new().reconstruct(&a);
        let span = 3.0; // observed range 10..13 -> wait, range is 10..12
        for r in 0..3 {
            for c in 0..3 {
                let v = d.get(r, c);
                assert!(v >= 10.0 - span && v <= 12.0 + span, "clamped value {v}");
            }
        }
    }

    #[test]
    fn reconstruct_row_predicts_from_history() {
        // History: rows proportional to [1, 2, 3, 4].
        let history = DenseMatrix::from_fn(5, 4, |r, c| (r as f64 + 1.0) * (c as f64 + 1.0));
        // Target row: scale 2.5, observed at columns 0 and 2.
        let row = Reconstructor::new()
            .reconstruct_row(&history, &[(0, 2.5), (2, 7.5)])
            .unwrap();
        assert!((row[1] - 5.0).abs() < 1.0, "predicted {}", row[1]);
        assert!((row[3] - 10.0).abs() < 2.0, "predicted {}", row[3]);
    }

    #[test]
    fn reconstruct_row_requires_observations() {
        let history = DenseMatrix::zeros(2, 2);
        assert_eq!(
            Reconstructor::new().reconstruct_row(&history, &[]),
            Err(ReconstructError::Empty)
        );
    }

    #[test]
    fn row_cache_returns_identical_bits_and_counts_hits() {
        let history = DenseMatrix::from_fn(6, 5, |r, c| (r as f64 + 1.5) * (c as f64 + 0.5));
        let rec = Reconstructor::new();
        let target = [(0usize, 1.2), (3usize, 4.8)];
        let first = rec.reconstruct_row(&history, &target).unwrap();
        let second = rec.reconstruct_row(&history, &target).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&first), bits(&second));
        let (hits, misses) = rec.row_cache_stats();
        assert_eq!((hits, misses), (1, 1));

        // A different density (extra observation) is a different key.
        rec.reconstruct_row(&history, &[(0, 1.2), (3, 4.8), (4, 6.0)])
            .unwrap();
        let (hits, misses) = rec.row_cache_stats();
        assert_eq!((hits, misses), (1, 2));
    }

    #[test]
    fn row_cache_distinguishes_matrix_contents() {
        let a = DenseMatrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let mut b = a.clone();
        b.set(2, 2, 99.0);
        let rec = Reconstructor::new();
        let ra = rec.reconstruct_row(&a, &[(0, 1.0)]).unwrap();
        let rb = rec.reconstruct_row(&b, &[(0, 1.0)]).unwrap();
        assert_eq!(
            rec.row_cache_stats().1,
            2,
            "different matrices must both miss"
        );
        assert_ne!(ra, rb);
    }

    #[test]
    fn error_display_is_nonempty() {
        assert!(!ReconstructError::Empty.to_string().is_empty());
        assert!(!ReconstructError::Unanchored.to_string().is_empty());
    }
}
