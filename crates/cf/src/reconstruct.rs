//! The end-to-end reconstruction pipeline used by Quasar's classifier.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use quasar_obs::registry::{Counter, Registry};

use crate::dense::DenseMatrix;
use crate::fingerprint::Fingerprint;
use crate::pq::{PqModel, SgdConfig};
use crate::scratch::{self, CfScratch};
use crate::sparse::SparseMatrix;

/// Entries kept in the row-reconstruction memo. Experiments reuse a
/// handful of history matrices across thousands of workloads, so a
/// small bound captures nearly all the reuse; past the cap the
/// least-recently-used entry is evicted (an earlier version cleared the
/// whole map, which collapsed the hit rate exactly when long density
/// sweeps needed it most).
const ROW_CACHE_CAP: usize = 1024;

/// Global registry handles for the row-cache counters
/// (`quasar.cf.row_cache.*`), aggregated across all [`Reconstructor`]
/// instances; per-instance counts stay available via
/// [`Reconstructor::row_cache_stats`].
fn cache_metrics() -> &'static (Counter, Counter, Counter) {
    static METRICS: OnceLock<(Counter, Counter, Counter)> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        (
            reg.counter("quasar.cf.row_cache.hits"),
            reg.counter("quasar.cf.row_cache.misses"),
            reg.counter("quasar.cf.row_cache.evictions"),
        )
    })
}

/// A memoized row threaded into an intrusive doubly-linked recency
/// list (`prev` toward more recent, `next` toward less recent).
#[derive(Debug)]
struct CacheEntry {
    row: Vec<f64>,
    prev: Option<u128>,
    next: Option<u128>,
}

/// LRU map with O(1) lookup, touch, and eviction: a `HashMap` whose
/// entries double as nodes of a doubly-linked list ordered by recency.
/// This replaces an O(capacity) min-scan over `last_used` stamps that
/// ran on every eviction once the map filled (ROADMAP open item).
#[derive(Debug, Default)]
struct RowCacheInner {
    map: HashMap<u128, CacheEntry>,
    /// Most-recently-used key.
    head: Option<u128>,
    /// Least-recently-used key (next eviction victim).
    tail: Option<u128>,
    /// Keys currently being computed by some thread. Arrivals for an
    /// in-flight key wait on [`RowCache::computed`] instead of
    /// recomputing, which is what makes the hit/miss counters (and the
    /// kernel work counters downstream) scheduling-invariant: every key
    /// is computed exactly once no matter how calls interleave.
    pending: HashSet<u128>,
}

impl RowCacheInner {
    fn unlink(&mut self, key: u128) {
        let (prev, next) = {
            let node = &self.map[&key];
            (node.prev, node.next)
        };
        match prev {
            Some(p) => self.map.get_mut(&p).expect("lru prev missing").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.map.get_mut(&n).expect("lru next missing").prev = prev,
            None => self.tail = prev,
        }
    }

    fn push_front(&mut self, key: u128) {
        let old_head = self.head;
        {
            let node = self.map.get_mut(&key).expect("lru node missing");
            node.prev = None;
            node.next = old_head;
        }
        match old_head {
            Some(h) => self.map.get_mut(&h).expect("lru head missing").prev = Some(key),
            None => self.tail = Some(key),
        }
        self.head = Some(key);
    }

    /// Marks `key` most recently used. O(1).
    fn touch(&mut self, key: u128) {
        if self.head == Some(key) {
            return;
        }
        self.unlink(key);
        self.push_front(key);
    }

    /// Inserts `key`, evicting the least-recently-used entry when at
    /// capacity. Returns whether an eviction happened. O(1).
    fn insert(&mut self, key: u128, row: Vec<f64>) -> bool {
        if let Some(node) = self.map.get_mut(&key) {
            node.row = row;
            self.touch(key);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= ROW_CACHE_CAP {
            if let Some(lru) = self.tail {
                self.unlink(lru);
                self.map.remove(&lru);
                evicted = true;
            }
        }
        self.map.insert(
            key,
            CacheEntry {
                row,
                prev: None,
                next: None,
            },
        );
        self.push_front(key);
        evicted
    }
}

/// Shared memo for [`Reconstructor::reconstruct_row`]. Reconstruction
/// is a pure function of `(history, target, config)`, so returning a
/// cached row is observably identical to recomputing it — including
/// every bit of every float — which is what lets the cache stay enabled
/// under the deterministic parallel runner.
///
/// A per-key once-guard (`RowCacheInner::pending` + [`RowCache::computed`])
/// ensures each key is computed at most once even when several threads
/// miss concurrently: the first arrival computes, later arrivals block
/// until the row lands and then count a hit. Absent evictions, hit and
/// miss totals therefore match a serial run exactly, so the counters can
/// live in deterministic snapshots.
#[derive(Debug, Default)]
struct RowCache {
    inner: Mutex<RowCacheInner>,
    /// Signalled whenever a pending key resolves (row inserted) or is
    /// abandoned (compute failed or panicked).
    computed: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Removes a key from the pending set — and wakes the waiters — when the
/// computing scope ends, **including** by error return or panic, so a
/// failed compute can never strand other threads in the wait loop.
struct PendingGuard<'a> {
    cache: &'a RowCache,
    key: u128,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.cache.inner.lock().expect("row cache poisoned");
        inner.pending.remove(&self.key);
        drop(inner);
        self.cache.computed.notify_all();
    }
}

/// Error returned when a sparse matrix cannot be reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconstructError {
    /// The matrix has no observed entries at all.
    Empty,
    /// A row that must be predicted has no observations and no other row
    /// can anchor it (matrix has a single row).
    Unanchored,
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::Empty => write!(f, "matrix has no observed entries"),
            ReconstructError::Unanchored => {
                write!(f, "row cannot be anchored without other observations")
            }
        }
    }
}

impl Error for ReconstructError {}

/// End-to-end collaborative-filtering reconstruction: mean-fill → SVD →
/// PQ initialization → SGD → prediction, with optional clamping of the
/// predictions to the observed value range.
///
/// This is the "classification" primitive of the paper: given a sparse
/// matrix whose rows are workloads and whose columns are configurations,
/// produce the dense matrix of estimated performance.
///
/// # Examples
///
/// ```
/// use quasar_cf::{Reconstructor, SparseMatrix};
///
/// let mut a = SparseMatrix::new(4, 3);
/// for r in 0..4 {
///     for c in 0..3 {
///         if r != 2 || c != 1 {
///             a.insert(r, c, (r + 1) as f64 * (c + 1) as f64);
///         }
///     }
/// }
/// let dense = Reconstructor::new().reconstruct(&a);
/// assert!((dense.get(2, 1) - 6.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Reconstructor {
    config: SgdConfig,
    clamp_to_observed: bool,
    row_cache: Arc<RowCache>,
}

impl Reconstructor {
    /// Creates a reconstructor with default SGD hyper-parameters and
    /// clamping enabled.
    pub fn new() -> Reconstructor {
        Reconstructor {
            config: SgdConfig::default(),
            clamp_to_observed: true,
            row_cache: Arc::default(),
        }
    }

    /// Overrides the SGD configuration.
    pub fn with_config(mut self, config: SgdConfig) -> Reconstructor {
        self.config = config;
        self
    }

    /// Enables or disables clamping predictions to the observed range
    /// (with 25% headroom on both sides).
    pub fn with_clamping(mut self, clamp: bool) -> Reconstructor {
        self.clamp_to_observed = clamp;
        self
    }

    /// The SGD configuration in use.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Reconstructs all cells of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty; use [`Reconstructor::try_reconstruct`] for a
    /// fallible variant.
    pub fn reconstruct(&self, a: &SparseMatrix) -> DenseMatrix {
        self.try_reconstruct(a).expect("matrix must be non-empty")
    }

    /// Reconstructs all cells of `a`, returning an error for degenerate
    /// inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ReconstructError::Empty`] when `a` has no observations.
    pub fn try_reconstruct(&self, a: &SparseMatrix) -> Result<DenseMatrix, ReconstructError> {
        scratch::with(|s| self.try_reconstruct_in(a, s))
    }

    /// [`Reconstructor::try_reconstruct`] against an explicit workspace
    /// arena: training and prediction buffers are pooled, and the
    /// trained model's buffers are recycled once the predictions are
    /// out. The returned matrix is bit-identical to the fresh path.
    fn try_reconstruct_in(
        &self,
        a: &SparseMatrix,
        scratch: &mut CfScratch,
    ) -> Result<DenseMatrix, ReconstructError> {
        if a.is_empty() {
            return Err(ReconstructError::Empty);
        }
        let model = PqModel::train_in(a, &self.config, scratch);
        let dense = self.finish_predictions_in(&model, a, scratch);
        // The model never escapes this path; hand its buffers back.
        scratch.recycle_model(model);
        Ok(dense)
    }

    /// The steps of [`Reconstructor::try_reconstruct`] after model
    /// training: predict every cell (into the arena's recycled
    /// prediction buffer, when one is pooled), restore the observed
    /// entries, and clamp to the observed range.
    fn finish_predictions_in(
        &self,
        model: &PqModel,
        a: &SparseMatrix,
        scratch: &mut CfScratch,
    ) -> DenseMatrix {
        let buf = match scratch.predict.take() {
            Some(buf) => {
                scratch.stats.slot(true);
                buf
            }
            None => {
                scratch.stats.slot(false);
                Vec::new()
            }
        };
        let mut dense = model.predict_all_in(buf);
        // Observed entries are authoritative; keep the raw measurements.
        for (r, c, v) in a.iter() {
            dense.set(r, c, v);
        }
        if self.clamp_to_observed {
            let (lo, hi) = observed_range(a);
            let span = (hi - lo).max(1e-12);
            let (lo, hi) = (lo - 0.25 * span, hi + 0.25 * span);
            // Clamp in place: elementwise, so bit-identical to the old
            // full-matrix `from_fn` rebuild without the allocation.
            for v in dense.as_mut_slice() {
                *v = v.clamp(lo, hi);
            }
        }
        dense
    }

    /// Predicts the missing entries of a single target row given a dense
    /// history of fully-observed rows (the offline-characterized and
    /// previously-scheduled workloads) plus sparse observations for the
    /// target (the profiling runs).
    ///
    /// Returns the full predicted row for the target.
    ///
    /// # Errors
    ///
    /// Returns [`ReconstructError::Unanchored`] when `history` is empty and
    /// the target row alone cannot be reconstructed, or
    /// [`ReconstructError::Empty`] when the target row has no observations.
    pub fn reconstruct_row(
        &self,
        history: &DenseMatrix,
        target: &[(usize, f64)],
    ) -> Result<Vec<f64>, ReconstructError> {
        if target.is_empty() {
            return Err(ReconstructError::Empty);
        }
        if history.rows() == 0 {
            return Err(ReconstructError::Unanchored);
        }
        let key = self.row_key(history, target);
        let (hits, misses, evictions) = cache_metrics();
        let mut inner = self.row_cache.inner.lock().expect("row cache poisoned");
        loop {
            if let Some(row) = inner.map.get(&key).map(|entry| entry.row.clone()) {
                inner.touch(key);
                self.row_cache.hits.fetch_add(1, Ordering::Relaxed);
                hits.inc();
                return Ok(row);
            }
            if !inner.pending.contains(&key) {
                break;
            }
            // Another thread is computing this key: wait for it rather
            // than duplicating the work. The hit is counted above once
            // the row lands (exactly once per call).
            inner = self
                .row_cache
                .computed
                .wait(inner)
                .expect("row cache poisoned");
        }
        // First arrival for this key: claim it, then compute outside the
        // lock. The guard clears the claim (and wakes waiters) on every
        // exit path, including panics.
        inner.pending.insert(key);
        drop(inner);
        self.row_cache.misses.fetch_add(1, Ordering::Relaxed);
        misses.inc();
        let guard = PendingGuard {
            cache: &self.row_cache,
            key,
        };
        let row = self.reconstruct_row_uncached(history, target);
        if let Ok(row) = &row {
            let mut inner = self.row_cache.inner.lock().expect("row cache poisoned");
            if inner.insert(key, row.clone()) {
                evictions.inc();
            }
        }
        drop(guard);
        row
    }

    /// [`Reconstructor::reconstruct_row`] that also returns the trained
    /// [`PqModel`], for callers that keep models around to warm-start
    /// later reconstructions (the similarity index in `quasar-core`).
    ///
    /// Deliberately **uncached**: it always trains, leaving the row memo
    /// and its hit/miss/eviction counters untouched, so the plain
    /// cached path behaves byte-identically whether or not anyone ever
    /// captures models. Reconstruction is a pure function of
    /// `(history, target, config)`, so the returned row is bit-identical
    /// to what [`Reconstructor::reconstruct_row`] returns.
    ///
    /// # Errors
    ///
    /// Same contract as [`Reconstructor::reconstruct_row`].
    pub fn reconstruct_row_with_model(
        &self,
        history: &DenseMatrix,
        target: &[(usize, f64)],
    ) -> Result<(Vec<f64>, PqModel), ReconstructError> {
        self.reconstruct_row_model(history, target, None)
    }

    /// Like [`Reconstructor::reconstruct_row_with_model`], but
    /// warm-starts SGD from `warm`'s factors via [`PqModel::train_warm`],
    /// skipping the SVD. Falls back to a cold train when the factor
    /// shapes do not line up with `(history, target)`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Reconstructor::reconstruct_row`].
    pub fn reconstruct_row_warm(
        &self,
        history: &DenseMatrix,
        target: &[(usize, f64)],
        warm: &PqModel,
    ) -> Result<(Vec<f64>, PqModel), ReconstructError> {
        self.reconstruct_row_model(history, target, Some(warm))
    }

    fn reconstruct_row_model(
        &self,
        history: &DenseMatrix,
        target: &[(usize, f64)],
        warm: Option<&PqModel>,
    ) -> Result<(Vec<f64>, PqModel), ReconstructError> {
        if target.is_empty() {
            return Err(ReconstructError::Empty);
        }
        if history.rows() == 0 {
            return Err(ReconstructError::Unanchored);
        }
        scratch::with(|s| {
            let (target_row, sparse) = Self::pooled_history_matrix(history, target, s);
            let model = match warm.and_then(|w| PqModel::train_warm_in(&sparse, &self.config, w, s))
            {
                Some(m) => m,
                None => PqModel::train_in(&sparse, &self.config, s),
            };
            let dense = self.finish_predictions_in(&model, &sparse, s);
            s.row_sparse = Some(sparse);
            let row = dense.row(target_row).to_vec();
            s.recycle_predict(dense.into_vec());
            // The model escapes to the caller, so its buffers are not
            // recycled here.
            Ok((row, model))
        })
    }

    /// Checks the pooled history+target matrix out of `scratch` and
    /// fills it: the fully-observed `history` rows plus one sparse
    /// target row. Returns the target row's index and the matrix (the
    /// caller returns it to the `row_sparse` slot when done).
    fn pooled_history_matrix(
        history: &DenseMatrix,
        target: &[(usize, f64)],
        scratch: &mut CfScratch,
    ) -> (usize, SparseMatrix) {
        let mut sparse = match scratch.row_sparse.take() {
            Some(mut pooled) => {
                scratch.stats.slot(true);
                pooled.assign_dense_rows(history);
                pooled
            }
            None => {
                scratch.stats.slot(false);
                SparseMatrix::from_dense_rows(history)
            }
        };
        let target_row = sparse.push_row();
        for &(c, v) in target {
            sparse.insert(target_row, c, v);
        }
        (target_row, sparse)
    }

    /// Cache hits and misses of the row memo, for benchmarks and tests.
    pub fn row_cache_stats(&self) -> (u64, u64) {
        (
            self.row_cache.hits.load(Ordering::Relaxed),
            self.row_cache.misses.load(Ordering::Relaxed),
        )
    }

    /// Fingerprints everything `reconstruct_row` depends on: matrix
    /// shape and contents (via the matrix's own memoized fingerprint, so
    /// a lookup is O(target) instead of O(rows × cols)), the sparse
    /// target (its density and values), the SGD hyper-parameters, and
    /// the clamping flag.
    fn row_key(&self, history: &DenseMatrix, target: &[(usize, f64)]) -> u128 {
        let mut fp = Fingerprint::new();
        let (ha, hb) = history.fingerprint();
        fp.word(ha);
        fp.word(hb);
        fp.word(target.len() as u64);
        for &(c, v) in target {
            fp.word(c as u64);
            fp.float(v);
        }
        fp.float(self.config.learning_rate);
        fp.float(self.config.regularization);
        fp.word(self.config.max_epochs as u64);
        fp.float(self.config.tolerance);
        fp.float(self.config.energy);
        fp.word(self.config.max_rank as u64);
        fp.word(self.config.seed);
        fp.word(u64::from(self.clamp_to_observed));
        fp.finish()
    }

    fn reconstruct_row_uncached(
        &self,
        history: &DenseMatrix,
        target: &[(usize, f64)],
    ) -> Result<Vec<f64>, ReconstructError> {
        // Bulk-copy the fully-observed history (per-cell `insert` here
        // was O(rows · cols²) from duplicate scans) into the pooled
        // history matrix, then append the sparse target row. In steady
        // state the only allocations left on this path are the target
        // row's entry list and the escaping result row.
        scratch::with(|s| {
            let (target_row, sparse) = Self::pooled_history_matrix(history, target, s);
            let result = self.try_reconstruct_in(&sparse, s);
            s.row_sparse = Some(sparse);
            let dense = result?;
            let row = dense.row(target_row).to_vec();
            s.recycle_predict(dense.into_vec());
            Ok(row)
        })
    }
}

fn observed_range(a: &SparseMatrix) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, _, v) in a.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_is_an_error() {
        let a = SparseMatrix::new(2, 2);
        assert_eq!(
            Reconstructor::new().try_reconstruct(&a),
            Err(ReconstructError::Empty)
        );
    }

    #[test]
    fn observed_entries_are_preserved_exactly() {
        let mut a = SparseMatrix::new(3, 3);
        a.insert(0, 0, 1.0);
        a.insert(1, 1, 7.0);
        a.insert(2, 2, 3.0);
        let d = Reconstructor::new().reconstruct(&a);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 7.0);
        assert_eq!(d.get(2, 2), 3.0);
    }

    #[test]
    fn clamping_bounds_predictions() {
        let mut a = SparseMatrix::new(3, 3);
        for r in 0..3 {
            a.insert(r, 0, 10.0 + r as f64);
        }
        a.insert(0, 1, 11.0);
        a.insert(0, 2, 12.0);
        let d = Reconstructor::new().reconstruct(&a);
        // Observed range is 10..=12 (span 2); clamping allows 25%
        // headroom on each side, i.e. 0.5.
        let headroom = 0.25 * 2.0;
        for r in 0..3 {
            for c in 0..3 {
                let v = d.get(r, c);
                assert!(
                    v >= 10.0 - headroom && v <= 12.0 + headroom,
                    "clamped value {v}"
                );
            }
        }
    }

    #[test]
    fn reconstruct_row_predicts_from_history() {
        // History: rows proportional to [1, 2, 3, 4].
        let history = DenseMatrix::from_fn(5, 4, |r, c| (r as f64 + 1.0) * (c as f64 + 1.0));
        // Target row: scale 2.5, observed at columns 0 and 2.
        let row = Reconstructor::new()
            .reconstruct_row(&history, &[(0, 2.5), (2, 7.5)])
            .unwrap();
        assert!((row[1] - 5.0).abs() < 1.0, "predicted {}", row[1]);
        assert!((row[3] - 10.0).abs() < 2.0, "predicted {}", row[3]);
    }

    #[test]
    fn reconstruct_row_requires_observations() {
        let history = DenseMatrix::zeros(2, 2);
        assert_eq!(
            Reconstructor::new().reconstruct_row(&history, &[]),
            Err(ReconstructError::Empty)
        );
    }

    #[test]
    fn row_cache_returns_identical_bits_and_counts_hits() {
        let history = DenseMatrix::from_fn(6, 5, |r, c| (r as f64 + 1.5) * (c as f64 + 0.5));
        let rec = Reconstructor::new();
        let target = [(0usize, 1.2), (3usize, 4.8)];
        let first = rec.reconstruct_row(&history, &target).unwrap();
        let second = rec.reconstruct_row(&history, &target).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&first), bits(&second));
        let (hits, misses) = rec.row_cache_stats();
        assert_eq!((hits, misses), (1, 1));

        // A different density (extra observation) is a different key.
        rec.reconstruct_row(&history, &[(0, 1.2), (3, 4.8), (4, 6.0)])
            .unwrap();
        let (hits, misses) = rec.row_cache_stats();
        assert_eq!((hits, misses), (1, 2));
    }

    #[test]
    fn row_cache_distinguishes_matrix_contents() {
        let a = DenseMatrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let mut b = a.clone();
        b.set(2, 2, 99.0);
        let rec = Reconstructor::new();
        let ra = rec.reconstruct_row(&a, &[(0, 1.0)]).unwrap();
        let rb = rec.reconstruct_row(&b, &[(0, 1.0)]).unwrap();
        assert_eq!(
            rec.row_cache_stats().1,
            2,
            "different matrices must both miss"
        );
        assert_ne!(ra, rb);
    }

    #[test]
    fn row_cache_has_no_hit_rate_cliff_at_capacity() {
        // Fig3-style access pattern: a long sweep inserts more distinct
        // keys than ROW_CACHE_CAP, then revisits the most recent ones.
        // Wholesale clear-at-cap used to wipe the whole working set the
        // moment entry 1025 arrived; LRU keeps the recent tail resident.
        let history = DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f64 + 1.0);
        // One SGD epoch and rank 1: each miss must stay cheap, since
        // this test performs ROW_CACHE_CAP + 100 of them.
        let rec = Reconstructor::new().with_config(SgdConfig {
            max_epochs: 1,
            max_rank: 1,
            ..SgdConfig::default()
        });
        let total = ROW_CACHE_CAP + 100;
        for i in 0..total {
            rec.reconstruct_row(&history, &[(0, i as f64 + 0.25)])
                .unwrap();
        }
        let (hits_before, misses_before) = rec.row_cache_stats();
        assert_eq!(hits_before, 0);
        assert_eq!(misses_before, total as u64);
        // Revisit the most recent ROW_CACHE_CAP - 76 targets (all inside
        // the LRU window): every one must hit.
        let revisit = ROW_CACHE_CAP - 76;
        for i in (total - revisit)..total {
            rec.reconstruct_row(&history, &[(0, i as f64 + 0.25)])
                .unwrap();
        }
        let (hits, misses) = rec.row_cache_stats();
        assert_eq!(
            misses, misses_before,
            "recently-inserted keys must survive crossing the capacity"
        );
        assert_eq!(hits, revisit as u64);
    }

    #[test]
    fn row_cache_touch_protects_entries_from_eviction() {
        let history = DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f64 + 1.0);
        let rec = Reconstructor::new().with_config(SgdConfig {
            max_epochs: 1,
            max_rank: 1,
            ..SgdConfig::default()
        });
        let target = |i: usize| [(0usize, i as f64 + 0.25)];
        // Fill to capacity, then re-touch the oldest entry.
        for i in 0..ROW_CACHE_CAP {
            rec.reconstruct_row(&history, &target(i)).unwrap();
        }
        rec.reconstruct_row(&history, &target(0)).unwrap();
        assert_eq!(rec.row_cache_stats(), (1, ROW_CACHE_CAP as u64));
        // The next insert evicts the true LRU (key 1), not key 0.
        rec.reconstruct_row(&history, &target(ROW_CACHE_CAP))
            .unwrap();
        rec.reconstruct_row(&history, &target(0)).unwrap();
        let (hits, misses) = rec.row_cache_stats();
        assert_eq!((hits, misses), (2, ROW_CACHE_CAP as u64 + 1));
        rec.reconstruct_row(&history, &target(1)).unwrap();
        assert_eq!(
            rec.row_cache_stats().1,
            ROW_CACHE_CAP as u64 + 2,
            "key 1 must have been the eviction victim"
        );
    }

    #[test]
    fn concurrent_same_key_lookups_compute_once_and_count_deterministically() {
        // The per-key once-guard must collapse racing lookups into one
        // compute: whatever the interleaving, N calls on one key are
        // exactly 1 miss + N−1 hits, same as a serial run.
        let history = DenseMatrix::from_fn(6, 5, |r, c| (r as f64 + 1.5) * (c as f64 + 0.5));
        let rec = Reconstructor::new();
        let threads = 8;
        let rows: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let rec = &rec;
                    let history = &history;
                    scope
                        .spawn(move || rec.reconstruct_row(history, &[(0, 1.2), (3, 4.8)]).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        for row in &rows[1..] {
            assert_eq!(bits(&rows[0]), bits(row), "all threads see identical bits");
        }
        assert_eq!(rec.row_cache_stats(), (threads as u64 - 1, 1));
    }

    #[test]
    fn with_model_matches_cached_row_bitwise_and_skips_the_cache() {
        let history = DenseMatrix::from_fn(6, 5, |r, c| (r as f64 + 1.5) * (c as f64 + 0.5));
        let rec = Reconstructor::new();
        let target = [(0usize, 1.2), (3usize, 4.8)];
        let cached = rec.reconstruct_row(&history, &target).unwrap();
        let (modeled, model) = rec.reconstruct_row_with_model(&history, &target).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&cached), bits(&modeled));
        assert!(model.rank() >= 1);
        // The model-capturing path must not have touched the memo: one
        // cached call = 1 miss, and the uncached call adds nothing.
        assert_eq!(rec.row_cache_stats(), (0, 1));
    }

    #[test]
    fn warm_reconstruction_stays_close_to_cold() {
        // Rows proportional to [1, 2, 3, 4], as in
        // `reconstruct_row_predicts_from_history` (SGD converges here).
        let history = DenseMatrix::from_fn(5, 4, |r, c| (r as f64 + 1.0) * (c as f64 + 1.0));
        let rec = Reconstructor::new();
        let (cold_row, model) = rec
            .reconstruct_row_with_model(&history, &[(0, 2.5), (2, 7.5)])
            .unwrap();
        // A near-duplicate target warm-started from the neighbor's model.
        let (warm_row, warm_model) = rec
            .reconstruct_row_warm(&history, &[(0, 2.52), (2, 7.48)], &model)
            .unwrap();
        assert_eq!(warm_model.rank(), model.rank());
        for (w, c) in warm_row.iter().zip(&cold_row) {
            assert!(
                (w - c).abs() / c.abs().max(1e-9) < 0.15,
                "warm row drifted: {w} vs {c}"
            );
        }
    }

    #[test]
    fn warm_reconstruction_falls_back_on_shape_mismatch() {
        let history = DenseMatrix::from_fn(6, 5, |r, c| (r as f64 + 1.5) * (c as f64 + 0.5));
        let other = DenseMatrix::from_fn(3, 4, |r, c| (r + c) as f64 + 1.0);
        let rec = Reconstructor::new();
        let (_, wrong_shape) = rec.reconstruct_row_with_model(&other, &[(0, 1.0)]).unwrap();
        let (cold_row, _) = rec
            .reconstruct_row_with_model(&history, &[(0, 1.2)])
            .unwrap();
        let (fallback_row, _) = rec
            .reconstruct_row_warm(&history, &[(0, 1.2)], &wrong_shape)
            .unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&cold_row), bits(&fallback_row));
    }

    #[test]
    fn steady_state_row_reconstruction_stops_growing_the_arena() {
        // Distinct targets bust the row memo, so every call reaches the
        // training kernels; after a short warmup at a fixed shape the
        // thread's arena must serve every checkout from pooled capacity.
        // (Each test runs on its own thread, so `thread_stats` observes
        // only this test's arena.)
        let history = DenseMatrix::from_fn(4, 3, |r, c| (r as f64 + 1.0) * (c as f64 + 0.5));
        let rec = Reconstructor::new().with_config(SgdConfig {
            max_epochs: 2,
            max_rank: 2,
            ..SgdConfig::default()
        });
        for i in 0..4 {
            rec.reconstruct_row(&history, &[(0, i as f64 + 0.25)])
                .unwrap();
        }
        let (_, grows_warm, bytes_warm) = crate::scratch::thread_stats();
        for i in 4..20 {
            rec.reconstruct_row(&history, &[(0, i as f64 + 0.25)])
                .unwrap();
        }
        let (reuses, grows, bytes) = crate::scratch::thread_stats();
        assert_eq!(grows, grows_warm, "steady state must not grow the arena");
        assert_eq!(bytes, bytes_warm, "held bytes are flat in steady state");
        assert!(reuses > 0);
    }

    #[test]
    fn error_display_is_nonempty() {
        assert!(!ReconstructError::Empty.to_string().is_empty());
        assert!(!ReconstructError::Unanchored.to_string().is_empty());
    }
}
