//! PQ-reconstruction: a latent-factor model trained with SGD.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dense::DenseMatrix;
use crate::sparse::SparseMatrix;
use crate::svd::{svd, Svd};

/// Hyper-parameters for the SGD training loop.
///
/// The paper (§3.2) notes that the learning rate `η` and regularization
/// factor `λ` "are determined empirically"; these defaults converge for the
/// small, per-classification matrices Quasar builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Regularization factor `λ`.
    pub regularization: f64,
    /// Maximum number of passes over the observed entries.
    pub max_epochs: usize,
    /// Stop once the L2 norm of residuals over observed entries falls
    /// below this, relative to the number of observations.
    pub tolerance: f64,
    /// Fraction of total squared spectral energy retained when truncating
    /// the SVD initialization.
    pub energy: f64,
    /// Hard cap on the latent rank.
    pub max_rank: usize,
    /// Seed for shuffling the training order.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> SgdConfig {
        SgdConfig {
            learning_rate: 0.015,
            regularization: 0.005,
            max_epochs: 800,
            tolerance: 1e-4,
            energy: 0.95,
            max_rank: 8,
            seed: 0x5eed,
        }
    }
}

/// A trained latent-factor model `r_ui ≈ μ + b_u + q_u · p_i`.
///
/// Rows are workloads (`u`), columns are configurations (`i`). `Q` holds
/// one latent vector per row, `P` one per column; `μ` is the global mean
/// and `b_u` the per-row bias, exactly the terms of the paper's SGD update
/// equations.
///
/// # Examples
///
/// ```
/// use quasar_cf::{PqModel, SgdConfig, SparseMatrix};
///
/// let mut a = SparseMatrix::new(4, 4);
/// for r in 0..4 {
///     for c in 0..4 {
///         if (r + c) % 2 == 0 {
///             a.insert(r, c, (r as f64 + 1.0) * (c as f64 + 1.0));
///         }
///     }
/// }
/// let model = PqModel::train(&a, &SgdConfig::default());
/// // Observed entries are fitted closely.
/// assert!((model.predict(0, 0) - 1.0).abs() < 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct PqModel {
    mu: f64,
    row_bias: Vec<f64>,
    row_factors: DenseMatrix,
    col_factors: DenseMatrix,
    rank: usize,
    epochs_run: usize,
    final_residual: f64,
}

impl PqModel {
    /// Trains a model on the observed entries of `a`.
    ///
    /// Initialization follows the paper: SVD of the (mean-filled) matrix,
    /// then `Q ← U` and `Pᵀ ← Σ·Vᵀ`, then SGD over the observed entries
    /// until the residual norm becomes marginal.
    ///
    /// # Panics
    ///
    /// Panics if `a` has no observed entries.
    pub fn train(a: &SparseMatrix, config: &SgdConfig) -> PqModel {
        assert!(!a.is_empty(), "cannot train on an empty matrix");

        let mu = a.mean().expect("matrix is non-empty");
        let mut row_bias = vec![0.0; a.rows()];
        for (r, bias) in row_bias.iter_mut().enumerate() {
            let entries = a.row_entries(r);
            if !entries.is_empty() {
                let mean: f64 = entries.iter().map(|(_, v)| v).sum::<f64>() / entries.len() as f64;
                *bias = mean - mu;
            }
        }

        // Residual matrix for initialization: observed minus (μ + b_u),
        // missing cells filled via column means of the residuals.
        let mut residuals = SparseMatrix::new(a.rows(), a.cols());
        for (r, c, v) in a.iter() {
            residuals.insert(r, c, v - mu - row_bias[r]);
        }
        let filled = residuals.to_dense_filled();
        let decomposition: Svd = svd(&filled);
        let rank = decomposition
            .rank_for_energy(config.energy)
            .min(config.max_rank)
            .min(a.rows())
            .min(a.cols())
            .max(1);

        // Q ← U_r, P ← V_r · Σ_r (so that Q·Pᵀ = U Σ Vᵀ).
        let mut row_factors = DenseMatrix::zeros(a.rows(), rank);
        for r in 0..a.rows() {
            for k in 0..rank {
                row_factors.set(r, k, decomposition.u.get(r, k));
            }
        }
        let mut col_factors = DenseMatrix::zeros(a.cols(), rank);
        for c in 0..a.cols() {
            for k in 0..rank {
                col_factors.set(
                    c,
                    k,
                    decomposition.v.get(c, k) * decomposition.singular_values[k],
                );
            }
        }

        let mut model = PqModel {
            mu,
            row_bias,
            row_factors,
            col_factors,
            rank,
            epochs_run: 0,
            final_residual: f64::INFINITY,
        };
        model.run_sgd(a, config);
        model
    }

    fn run_sgd(&mut self, a: &SparseMatrix, config: &SgdConfig) {
        let mut order: Vec<(usize, usize, f64)> = a.iter().collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let eta = config.learning_rate;
        let lambda = config.regularization;

        for epoch in 0..config.max_epochs {
            // Fisher-Yates shuffle of the visit order each epoch.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut sq_err = 0.0;
            for &(u, i, r_ui) in &order {
                let err = r_ui - self.predict(u, i);
                sq_err += err * err;
                self.row_bias[u] += eta * (err - lambda * self.row_bias[u]);
                for k in 0..self.rank {
                    let q = self.row_factors.get(u, k);
                    let p = self.col_factors.get(i, k);
                    self.row_factors.set(u, k, q + eta * (err * p - lambda * q));
                    self.col_factors.set(i, k, p + eta * (err * q - lambda * p));
                }
            }
            self.epochs_run = epoch + 1;
            self.final_residual = (sq_err / order.len() as f64).sqrt();
            if self.final_residual < config.tolerance {
                break;
            }
        }
    }

    /// Predicted value for row `u`, column `i`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn predict(&self, u: usize, i: usize) -> f64 {
        let mut dot = 0.0;
        for k in 0..self.rank {
            dot += self.row_factors.get(u, k) * self.col_factors.get(i, k);
        }
        self.mu + self.row_bias[u] + dot
    }

    /// Dense matrix of predictions for every cell.
    pub fn predict_all(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.row_factors.rows(), self.col_factors.rows(), |u, i| {
            self.predict(u, i)
        })
    }

    /// Latent rank of the model.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of SGD epochs actually run.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// RMS residual over the observed entries after training.
    pub fn final_residual(&self) -> f64 {
        self.final_residual
    }

    /// Global mean `μ`.
    pub fn global_mean(&self) -> f64 {
        self.mu
    }

    /// Row bias `b_u`.
    pub fn row_bias(&self, u: usize) -> f64 {
        self.row_bias[u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a sparse view of a low-rank matrix, keeping `keep` of every
    /// `out_of` cells.
    fn low_rank_sparse(
        rows: usize,
        cols: usize,
        keep: usize,
        out_of: usize,
    ) -> (SparseMatrix, DenseMatrix) {
        let truth = DenseMatrix::from_fn(rows, cols, |r, c| {
            3.0 + (r as f64 + 1.0) * 0.7 * (c as f64 + 1.0) + (r as f64) * 0.5
        });
        let mut sparse = SparseMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * cols + c) % out_of < keep {
                    sparse.insert(r, c, truth.get(r, c));
                }
            }
        }
        (sparse, truth)
    }

    #[test]
    fn fits_observed_entries() {
        let (sparse, _) = low_rank_sparse(6, 6, 2, 3);
        let model = PqModel::train(&sparse, &SgdConfig::default());
        for (r, c, v) in sparse.iter() {
            assert!(
                (model.predict(r, c) - v).abs() < 0.5,
                "observed ({r},{c}): predicted {} vs {v}",
                model.predict(r, c)
            );
        }
    }

    #[test]
    fn recovers_missing_entries_of_low_rank_matrix() {
        let (sparse, truth) = low_rank_sparse(8, 8, 2, 3);
        let model = PqModel::train(&sparse, &SgdConfig::default());
        let mut worst: f64 = 0.0;
        for r in 0..8 {
            for c in 0..8 {
                if sparse.get(r, c).is_none() {
                    let rel = (model.predict(r, c) - truth.get(r, c)).abs() / truth.get(r, c).abs();
                    worst = worst.max(rel);
                }
            }
        }
        assert!(worst < 0.25, "worst relative error {worst}");
    }

    #[test]
    fn respects_max_rank() {
        let (sparse, _) = low_rank_sparse(6, 6, 2, 2);
        let config = SgdConfig {
            max_rank: 2,
            ..SgdConfig::default()
        };
        let model = PqModel::train(&sparse, &config);
        assert!(model.rank() <= 2);
    }

    #[test]
    fn converges_before_epoch_cap_on_easy_input() {
        let (sparse, _) = low_rank_sparse(5, 5, 3, 4);
        let config = SgdConfig {
            tolerance: 0.05,
            regularization: 0.005,
            ..SgdConfig::default()
        };
        let model = PqModel::train(&sparse, &config);
        assert!(model.epochs_run() < config.max_epochs);
        assert!(model.final_residual() <= 0.05);
    }

    #[test]
    #[should_panic(expected = "cannot train on an empty matrix")]
    fn empty_matrix_panics() {
        PqModel::train(&SparseMatrix::new(2, 2), &SgdConfig::default());
    }
}
