//! PQ-reconstruction: a latent-factor model trained with SGD.
//!
//! The training inner loop ([`PqModel::train`]) is a fused slice kernel:
//! per observed entry it takes one mutable row slice from each factor
//! matrix and runs predict + bias + factor update in a single pass,
//! instead of `2·rank` bounds-checked `get`/`set` pairs (each of which
//! also reset the matrix fingerprint memo). The floating-point operation
//! order matches the original scalar loops exactly, so trained models
//! are **bit-identical** to [`PqModel::train_reference`], the frozen
//! pre-refactor implementation kept for property tests and the kernel
//! benchmarks.

use std::sync::OnceLock;

use quasar_obs::registry::{Counter, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dense::DenseMatrix;
use crate::scratch::{self, CfScratch};
use crate::sparse::SparseMatrix;
use crate::svd::{svd_in, svd_reference, Svd};

/// Registry handle for `quasar.cf.sgd.epochs`. Epochs are a pure
/// function of the training input, so the counter stays in
/// deterministic snapshots.
fn sgd_metrics() -> &'static Counter {
    static METRICS: OnceLock<Counter> = OnceLock::new();
    METRICS.get_or_init(|| Registry::global().counter("quasar.cf.sgd.epochs"))
}

/// One SGD pass over `order`, returning the accumulated squared error.
///
/// Monomorphized per latent rank: `RANK > 0` turns the factor slices
/// into `&mut [f64; RANK]` so the dot product and the update loop fully
/// unroll (rank is 1–8 in practice — short enough that loop control
/// otherwise dominates). `RANK == 0` is the dynamic fallback for ranks
/// outside the specialized range. Both paths execute the identical
/// floating-point operations in identical order, so the trained model
/// does not depend on which one ran.
// The flat argument list is forced by the `Pass` fn-pointer dispatch in
// `run_sgd`: all rank instantiations must share one plain fn signature.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn sgd_entry_pass<const RANK: usize>(
    rank: usize,
    order: &[(usize, usize, f64)],
    q_all: &mut [f64],
    p_all: &mut [f64],
    row_bias: &mut [f64],
    mu: f64,
    eta: f64,
    lambda: f64,
) -> f64 {
    debug_assert!(RANK == 0 || RANK == rank);
    let mut sq_err = 0.0;
    for &(u, i, r_ui) in order {
        if RANK > 0 {
            let q: &mut [f64; RANK] = (&mut q_all[u * RANK..u * RANK + RANK])
                .try_into()
                .expect("slice length is RANK");
            let p: &mut [f64; RANK] = (&mut p_all[i * RANK..i * RANK + RANK])
                .try_into()
                .expect("slice length is RANK");
            let mut dot = 0.0;
            for k in 0..RANK {
                dot += q[k] * p[k];
            }
            let err = r_ui - (mu + row_bias[u] + dot);
            sq_err += err * err;
            row_bias[u] += eta * (err - lambda * row_bias[u]);
            for k in 0..RANK {
                let (q0, p0) = (q[k], p[k]);
                q[k] = q0 + eta * (err * p0 - lambda * q0);
                p[k] = p0 + eta * (err * q0 - lambda * p0);
            }
        } else {
            let q = &mut q_all[u * rank..u * rank + rank];
            let p = &mut p_all[i * rank..i * rank + rank];
            let mut dot = 0.0;
            for (&qk, &pk) in q.iter().zip(p.iter()) {
                dot += qk * pk;
            }
            let err = r_ui - (mu + row_bias[u] + dot);
            sq_err += err * err;
            row_bias[u] += eta * (err - lambda * row_bias[u]);
            for (qk, pk) in q.iter_mut().zip(p.iter_mut()) {
                let (q0, p0) = (*qk, *pk);
                *qk = q0 + eta * (err * p0 - lambda * q0);
                *pk = p0 + eta * (err * q0 - lambda * p0);
            }
        }
    }
    sq_err
}

/// Hyper-parameters for the SGD training loop.
///
/// The paper (§3.2) notes that the learning rate `η` and regularization
/// factor `λ` "are determined empirically"; these defaults converge for the
/// small, per-classification matrices Quasar builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Regularization factor `λ`.
    pub regularization: f64,
    /// Maximum number of passes over the observed entries.
    pub max_epochs: usize,
    /// Stop once the L2 norm of residuals over observed entries falls
    /// below this, relative to the number of observations.
    pub tolerance: f64,
    /// Fraction of total squared spectral energy retained when truncating
    /// the SVD initialization.
    pub energy: f64,
    /// Hard cap on the latent rank.
    pub max_rank: usize,
    /// Seed for shuffling the training order.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> SgdConfig {
        SgdConfig {
            learning_rate: 0.015,
            regularization: 0.005,
            max_epochs: 800,
            tolerance: 1e-4,
            energy: 0.95,
            max_rank: 8,
            seed: 0x5eed,
        }
    }
}

/// A trained latent-factor model `r_ui ≈ μ + b_u + q_u · p_i`.
///
/// Rows are workloads (`u`), columns are configurations (`i`). `Q` holds
/// one latent vector per row, `P` one per column; `μ` is the global mean
/// and `b_u` the per-row bias, exactly the terms of the paper's SGD update
/// equations.
///
/// # Examples
///
/// ```
/// use quasar_cf::{PqModel, SgdConfig, SparseMatrix};
///
/// let mut a = SparseMatrix::new(4, 4);
/// for r in 0..4 {
///     for c in 0..4 {
///         if (r + c) % 2 == 0 {
///             a.insert(r, c, (r as f64 + 1.0) * (c as f64 + 1.0));
///         }
///     }
/// }
/// let model = PqModel::train(&a, &SgdConfig::default());
/// // Observed entries are fitted closely.
/// assert!((model.predict(0, 0) - 1.0).abs() < 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct PqModel {
    mu: f64,
    row_bias: Vec<f64>,
    row_factors: DenseMatrix,
    col_factors: DenseMatrix,
    rank: usize,
    epochs_run: usize,
    final_residual: f64,
}

impl PqModel {
    /// Computes the per-row biases of `a` against `mu` into the
    /// checked-out `row_bias` buffer.
    fn row_biases_into(a: &SparseMatrix, mu: f64, row_bias: &mut [f64]) {
        for (r, bias) in row_bias.iter_mut().enumerate() {
            let entries = a.row_entries(r);
            if !entries.is_empty() {
                let mean: f64 = entries.iter().map(|(_, v)| v).sum::<f64>() / entries.len() as f64;
                *bias = mean - mu;
            }
        }
    }

    /// Trains a model on the observed entries of `a`.
    ///
    /// Initialization follows the paper: SVD of the (mean-filled) matrix,
    /// then `Q ← U` and `Pᵀ ← Σ·Vᵀ`, then SGD over the observed entries
    /// until the residual norm becomes marginal.
    ///
    /// Runs against the calling thread's default workspace arena; see
    /// [`PqModel::train_in`] for the explicit-arena variant.
    ///
    /// # Panics
    ///
    /// Panics if `a` has no observed entries.
    pub fn train(a: &SparseMatrix, config: &SgdConfig) -> PqModel {
        scratch::with(|s| PqModel::train_in(a, config, s))
    }

    /// [`PqModel::train`] against an explicit workspace arena.
    ///
    /// Identical output, but the SVD working set, the residual and
    /// mean-filled matrices, the SGD visit order, and (when `scratch`
    /// holds recycled buffers — see [`CfScratch::recycle_model`]) the
    /// factor and bias buffers all come from `scratch`, so a warmed
    /// arena makes the whole training run allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `a` has no observed entries.
    pub fn train_in(a: &SparseMatrix, config: &SgdConfig, scratch: &mut CfScratch) -> PqModel {
        assert!(!a.is_empty(), "cannot train on an empty matrix");

        let (mut row_bias, mut rf_buf, mut cf_buf) = scratch.model_out.take().unwrap_or_default();
        let mu = a.mean().expect("matrix is non-empty");
        scratch.stats.checkout(&mut row_bias, a.rows());
        PqModel::row_biases_into(a, mu, &mut row_bias);

        // Residual matrix for initialization: observed minus (μ + b_u),
        // missing cells filled via column means of the residuals.
        let mut residuals = match scratch.residuals.take() {
            Some(mut pooled) => {
                scratch.stats.slot(true);
                pooled.reset(a.rows(), a.cols());
                pooled
            }
            None => {
                scratch.stats.slot(false);
                SparseMatrix::new(a.rows(), a.cols())
            }
        };
        for (r, c, v) in a.iter() {
            residuals.insert(r, c, v - mu - row_bias[r]);
        }
        let mut filled_buf = scratch.filled.take().unwrap_or_default();
        scratch.stats.reserve(&mut filled_buf, a.rows() * a.cols());
        residuals.fill_dense_into(
            &mut filled_buf,
            &mut scratch.col_sums,
            &mut scratch.col_counts,
        );
        let filled = DenseMatrix::from_vec(a.rows(), a.cols(), filled_buf);
        let decomposition: Svd = svd_in(&filled, scratch);
        scratch.filled = Some(filled.into_vec());
        scratch.residuals = Some(residuals);
        let rank = decomposition
            .rank_for_energy(config.energy)
            .min(config.max_rank)
            .min(a.rows())
            .min(a.cols())
            .max(1);

        // Q ← U_r, P ← V_r · Σ_r (so that Q·Pᵀ = U Σ Vᵀ), copied row by
        // row from the factor slices.
        scratch.stats.checkout(&mut rf_buf, a.rows() * rank);
        let mut row_factors = DenseMatrix::from_vec(a.rows(), rank, rf_buf);
        for r in 0..a.rows() {
            row_factors
                .row_mut(r)
                .copy_from_slice(&decomposition.u.row(r)[..rank]);
        }
        let sigma = &decomposition.singular_values[..rank];
        scratch.stats.checkout(&mut cf_buf, a.cols() * rank);
        let mut col_factors = DenseMatrix::from_vec(a.cols(), rank, cf_buf);
        for c in 0..a.cols() {
            let vrow = &decomposition.v.row(c)[..rank];
            for ((dst, &v), &s) in col_factors.row_mut(c).iter_mut().zip(vrow).zip(sigma) {
                *dst = v * s;
            }
        }
        // The warm-start decomposition never escapes: hand its buffers
        // straight back for the next decomposition.
        scratch.recycle_svd(decomposition);

        let mut model = PqModel {
            mu,
            row_bias,
            row_factors,
            col_factors,
            rank,
            epochs_run: 0,
            final_residual: f64::INFINITY,
        };
        model.run_sgd_in(a, config, scratch);
        model
    }

    /// Trains a model warm-started from the factors of `init` — a model
    /// previously trained on a closely-related matrix — instead of the
    /// SVD. `μ` and the per-row biases are recomputed from `a` (cheap,
    /// one pass over the observed entries); the factor matrices and rank
    /// are copied from `init`; SGD then refines everything as usual.
    /// Skipping the Jacobi SVD of the mean-filled matrix is where the
    /// similarity index's warm-start latency win comes from.
    ///
    /// Returns `None` when the shapes are incompatible: `init` must
    /// carry one factor row per row of `a` and one per column of `a`.
    ///
    /// Runs against the calling thread's default workspace arena; see
    /// [`PqModel::train_warm_in`] for the explicit-arena variant.
    ///
    /// # Panics
    ///
    /// Panics if `a` has no observed entries.
    pub fn train_warm(a: &SparseMatrix, config: &SgdConfig, init: &PqModel) -> Option<PqModel> {
        scratch::with(|s| PqModel::train_warm_in(a, config, init, s))
    }

    /// [`PqModel::train_warm`] against an explicit workspace arena (same
    /// contract as [`PqModel::train_in`]).
    ///
    /// # Panics
    ///
    /// Panics if `a` has no observed entries.
    pub fn train_warm_in(
        a: &SparseMatrix,
        config: &SgdConfig,
        init: &PqModel,
        scratch: &mut CfScratch,
    ) -> Option<PqModel> {
        assert!(!a.is_empty(), "cannot train on an empty matrix");
        if init.row_factors.rows() != a.rows() || init.col_factors.rows() != a.cols() {
            return None;
        }
        let (mut row_bias, mut rf_buf, mut cf_buf) = scratch.model_out.take().unwrap_or_default();
        let mu = a.mean().expect("matrix is non-empty");
        scratch.stats.checkout(&mut row_bias, a.rows());
        PqModel::row_biases_into(a, mu, &mut row_bias);
        scratch
            .stats
            .reserve(&mut rf_buf, init.row_factors.as_slice().len());
        rf_buf.extend_from_slice(init.row_factors.as_slice());
        scratch
            .stats
            .reserve(&mut cf_buf, init.col_factors.as_slice().len());
        cf_buf.extend_from_slice(init.col_factors.as_slice());
        let mut model = PqModel {
            mu,
            row_bias,
            row_factors: DenseMatrix::from_vec(a.rows(), init.rank, rf_buf),
            col_factors: DenseMatrix::from_vec(a.cols(), init.rank, cf_buf),
            rank: init.rank,
            epochs_run: 0,
            final_residual: f64::INFINITY,
        };
        model.run_sgd_in(a, config, scratch);
        Some(model)
    }

    /// Consumes the model, returning its `(row_bias, row_factors,
    /// col_factors)` buffers for a [`CfScratch`] recycle slot.
    pub(crate) fn into_buffers(self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        (
            self.row_bias,
            self.row_factors.into_vec(),
            self.col_factors.into_vec(),
        )
    }

    /// Fused SGD: one pass per observed entry over a `(q_u, p_i)` row
    /// slice pair — predict, bias update, and factor update together,
    /// monomorphized per latent rank (see [`sgd_entry_pass`]).
    /// Operation order matches [`PqModel::run_sgd_reference`] exactly, so
    /// every intermediate (and hence the trained model) is bit-identical.
    /// The visit-order buffer is pooled in `scratch`.
    fn run_sgd_in(&mut self, a: &SparseMatrix, config: &SgdConfig, scratch: &mut CfScratch) {
        let order = &mut scratch.sgd_order;
        scratch.stats.reserve(order, a.len());
        order.extend(a.iter());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let eta = config.learning_rate;
        let lambda = config.regularization;
        let epochs_metric = sgd_metrics();

        // Disjoint mutable views of the model: the factor buffers are
        // borrowed (and their fingerprints invalidated) once per training
        // run instead of once per `set`.
        let PqModel {
            mu,
            row_bias,
            row_factors,
            col_factors,
            rank,
            epochs_run,
            final_residual,
        } = self;
        let (mu, rank) = (*mu, *rank);
        let q_all = row_factors.as_mut_slice();
        let p_all = col_factors.as_mut_slice();

        // Pick the rank-specialized entry pass once per training run.
        type Pass = fn(
            usize,
            &[(usize, usize, f64)],
            &mut [f64],
            &mut [f64],
            &mut [f64],
            f64,
            f64,
            f64,
        ) -> f64;
        let pass: Pass = match rank {
            1 => sgd_entry_pass::<1>,
            2 => sgd_entry_pass::<2>,
            3 => sgd_entry_pass::<3>,
            4 => sgd_entry_pass::<4>,
            5 => sgd_entry_pass::<5>,
            6 => sgd_entry_pass::<6>,
            7 => sgd_entry_pass::<7>,
            8 => sgd_entry_pass::<8>,
            _ => sgd_entry_pass::<0>,
        };

        for epoch in 0..config.max_epochs {
            // Fisher-Yates shuffle of the visit order each epoch.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let sq_err = pass(rank, order, q_all, p_all, row_bias, mu, eta, lambda);
            epochs_metric.inc();
            *epochs_run = epoch + 1;
            *final_residual = (sq_err / order.len() as f64).sqrt();
            if *final_residual < config.tolerance {
                break;
            }
        }
    }

    /// The pre-refactor training loop, frozen verbatim as the correctness
    /// oracle: property tests assert [`PqModel::train`] matches it
    /// bit-for-bit, and `quasar-experiments bench-kernels` measures the
    /// fused kernel's speedup against it. Every factor access goes
    /// through bounds-checked `get`/`set` (each `set` resetting the
    /// fingerprint memo), and the SVD warm start uses
    /// [`svd_reference`] — exactly the pre-PR shape.
    pub fn train_reference(a: &SparseMatrix, config: &SgdConfig) -> PqModel {
        assert!(!a.is_empty(), "cannot train on an empty matrix");

        let mu = a.mean().expect("matrix is non-empty");
        let mut row_bias = vec![0.0; a.rows()];
        for (r, bias) in row_bias.iter_mut().enumerate() {
            let entries = a.row_entries(r);
            if !entries.is_empty() {
                let mean: f64 = entries.iter().map(|(_, v)| v).sum::<f64>() / entries.len() as f64;
                *bias = mean - mu;
            }
        }

        let mut residuals = SparseMatrix::new(a.rows(), a.cols());
        for (r, c, v) in a.iter() {
            residuals.insert(r, c, v - mu - row_bias[r]);
        }
        let filled = residuals.to_dense_filled();
        let decomposition: Svd = svd_reference(&filled);
        let rank = decomposition
            .rank_for_energy(config.energy)
            .min(config.max_rank)
            .min(a.rows())
            .min(a.cols())
            .max(1);

        let mut row_factors = DenseMatrix::zeros(a.rows(), rank);
        for r in 0..a.rows() {
            for k in 0..rank {
                row_factors.set(r, k, decomposition.u.get(r, k));
            }
        }
        let mut col_factors = DenseMatrix::zeros(a.cols(), rank);
        for c in 0..a.cols() {
            for k in 0..rank {
                col_factors.set(
                    c,
                    k,
                    decomposition.v.get(c, k) * decomposition.singular_values[k],
                );
            }
        }

        let mut model = PqModel {
            mu,
            row_bias,
            row_factors,
            col_factors,
            rank,
            epochs_run: 0,
            final_residual: f64::INFINITY,
        };
        model.run_sgd_reference(a, config);
        model
    }

    /// The pre-refactor SGD loop (see [`PqModel::train_reference`]).
    fn run_sgd_reference(&mut self, a: &SparseMatrix, config: &SgdConfig) {
        let mut order: Vec<(usize, usize, f64)> = a.iter().collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let eta = config.learning_rate;
        let lambda = config.regularization;

        for epoch in 0..config.max_epochs {
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut sq_err = 0.0;
            for &(u, i, r_ui) in &order {
                let mut dot = 0.0;
                for k in 0..self.rank {
                    dot += self.row_factors.get(u, k) * self.col_factors.get(i, k);
                }
                let err = r_ui - (self.mu + self.row_bias[u] + dot);
                sq_err += err * err;
                self.row_bias[u] += eta * (err - lambda * self.row_bias[u]);
                for k in 0..self.rank {
                    let q = self.row_factors.get(u, k);
                    let p = self.col_factors.get(i, k);
                    self.row_factors.set(u, k, q + eta * (err * p - lambda * q));
                    self.col_factors.set(i, k, p + eta * (err * q - lambda * p));
                }
            }
            self.epochs_run = epoch + 1;
            self.final_residual = (sq_err / order.len() as f64).sqrt();
            if self.final_residual < config.tolerance {
                break;
            }
        }
    }

    /// Predicted value for row `u`, column `i`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn predict(&self, u: usize, i: usize) -> f64 {
        let mut dot = 0.0;
        for (&qk, &pk) in self.row_factors.row(u).iter().zip(self.col_factors.row(i)) {
            dot += qk * pk;
        }
        self.mu + self.row_bias[u] + dot
    }

    /// Dense matrix of predictions for every cell.
    ///
    /// Walks the factor rows as slices; `μ + b_u` is hoisted per row,
    /// which keeps the left-associated order of [`PqModel::predict`]
    /// (`(μ + b_u) + q_u·p_i`) bit-for-bit.
    pub fn predict_all(&self) -> DenseMatrix {
        self.predict_all_in(Vec::new())
    }

    /// [`PqModel::predict_all`] into a caller-supplied buffer (typically
    /// a [`CfScratch`] recycle slot), avoiding the output allocation
    /// when `buf` already has capacity. Identical fill loop, so the
    /// result is bit-identical to [`PqModel::predict_all`].
    pub(crate) fn predict_all_in(&self, mut data: Vec<f64>) -> DenseMatrix {
        let rows = self.row_factors.rows();
        let cols = self.col_factors.rows();
        data.clear();
        data.reserve(rows * cols);
        for u in 0..rows {
            let q = self.row_factors.row(u);
            let base = self.mu + self.row_bias[u];
            for i in 0..cols {
                let mut dot = 0.0;
                for (&qk, &pk) in q.iter().zip(self.col_factors.row(i)) {
                    dot += qk * pk;
                }
                data.push(base + dot);
            }
        }
        DenseMatrix::from_vec(rows, cols, data)
    }

    /// Latent rank of the model.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of SGD epochs actually run.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// RMS residual over the observed entries after training.
    pub fn final_residual(&self) -> f64 {
        self.final_residual
    }

    /// Global mean `μ`.
    pub fn global_mean(&self) -> f64 {
        self.mu
    }

    /// Row bias `b_u`.
    pub fn row_bias(&self, u: usize) -> f64 {
        self.row_bias[u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a sparse view of a low-rank matrix, keeping `keep` of every
    /// `out_of` cells.
    fn low_rank_sparse(
        rows: usize,
        cols: usize,
        keep: usize,
        out_of: usize,
    ) -> (SparseMatrix, DenseMatrix) {
        let truth = DenseMatrix::from_fn(rows, cols, |r, c| {
            3.0 + (r as f64 + 1.0) * 0.7 * (c as f64 + 1.0) + (r as f64) * 0.5
        });
        let mut sparse = SparseMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r * cols + c) % out_of < keep {
                    sparse.insert(r, c, truth.get(r, c));
                }
            }
        }
        (sparse, truth)
    }

    #[test]
    fn fits_observed_entries() {
        let (sparse, _) = low_rank_sparse(6, 6, 2, 3);
        let model = PqModel::train(&sparse, &SgdConfig::default());
        for (r, c, v) in sparse.iter() {
            assert!(
                (model.predict(r, c) - v).abs() < 0.5,
                "observed ({r},{c}): predicted {} vs {v}",
                model.predict(r, c)
            );
        }
    }

    #[test]
    fn recovers_missing_entries_of_low_rank_matrix() {
        let (sparse, truth) = low_rank_sparse(8, 8, 2, 3);
        let model = PqModel::train(&sparse, &SgdConfig::default());
        let mut worst: f64 = 0.0;
        for r in 0..8 {
            for c in 0..8 {
                if sparse.get(r, c).is_none() {
                    let rel = (model.predict(r, c) - truth.get(r, c)).abs() / truth.get(r, c).abs();
                    worst = worst.max(rel);
                }
            }
        }
        assert!(worst < 0.25, "worst relative error {worst}");
    }

    #[test]
    fn respects_max_rank() {
        let (sparse, _) = low_rank_sparse(6, 6, 2, 2);
        let config = SgdConfig {
            max_rank: 2,
            ..SgdConfig::default()
        };
        let model = PqModel::train(&sparse, &config);
        assert!(model.rank() <= 2);
    }

    #[test]
    fn converges_before_epoch_cap_on_easy_input() {
        let (sparse, _) = low_rank_sparse(5, 5, 3, 4);
        let config = SgdConfig {
            tolerance: 0.05,
            regularization: 0.005,
            ..SgdConfig::default()
        };
        let model = PqModel::train(&sparse, &config);
        assert!(model.epochs_run() < config.max_epochs);
        assert!(model.final_residual() <= 0.05);
    }

    #[test]
    fn fused_training_is_bit_identical_to_reference() {
        let (sparse, _) = low_rank_sparse(9, 7, 2, 3);
        let fast = PqModel::train(&sparse, &SgdConfig::default());
        let slow = PqModel::train_reference(&sparse, &SgdConfig::default());
        assert_eq!(fast.rank(), slow.rank());
        assert_eq!(fast.epochs_run(), slow.epochs_run());
        assert_eq!(
            fast.final_residual().to_bits(),
            slow.final_residual().to_bits()
        );
        let bits = |m: &DenseMatrix| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fast.row_factors), bits(&slow.row_factors));
        assert_eq!(bits(&fast.col_factors), bits(&slow.col_factors));
        let bias_bits = |b: &[f64]| b.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bias_bits(&fast.row_bias), bias_bits(&slow.row_bias));
    }

    #[test]
    fn predict_all_matches_per_cell_predict_bitwise() {
        let (sparse, _) = low_rank_sparse(6, 8, 2, 3);
        let model = PqModel::train(&sparse, &SgdConfig::default());
        let all = model.predict_all();
        for u in 0..6 {
            for i in 0..8 {
                assert_eq!(all.get(u, i).to_bits(), model.predict(u, i).to_bits());
            }
        }
    }

    #[test]
    fn epoch_counter_advances() {
        let epochs = sgd_metrics();
        let before = epochs.get();
        let (sparse, _) = low_rank_sparse(5, 5, 2, 3);
        let model = PqModel::train(&sparse, &SgdConfig::default());
        // Lower bound only: sibling tests may train concurrently and
        // bump the same process-global counter.
        assert!(epochs.get() - before >= model.epochs_run() as u64);
    }

    #[test]
    #[should_panic(expected = "cannot train on an empty matrix")]
    fn empty_matrix_panics() {
        PqModel::train(&SparseMatrix::new(2, 2), &SgdConfig::default());
    }

    #[test]
    fn warm_start_fits_a_perturbed_matrix_without_svd() {
        let (sparse, truth) = low_rank_sparse(8, 8, 2, 3);
        let cold = PqModel::train(&sparse, &SgdConfig::default());

        // The same matrix with every observation nudged by < 1%.
        let mut nudged = SparseMatrix::new(8, 8);
        for (r, c, v) in sparse.iter() {
            nudged.insert(r, c, v * (1.0 + 0.004 * ((r + 2 * c) % 5) as f64));
        }
        let warm = PqModel::train_warm(&nudged, &SgdConfig::default(), &cold)
            .expect("shapes match the init model");
        assert_eq!(warm.rank(), cold.rank());
        let mut worst: f64 = 0.0;
        for r in 0..8 {
            for c in 0..8 {
                if nudged.get(r, c).is_none() {
                    let rel = (warm.predict(r, c) - truth.get(r, c)).abs() / truth.get(r, c).abs();
                    worst = worst.max(rel);
                }
            }
        }
        assert!(worst < 0.3, "warm-started model drifted: {worst}");
    }

    #[test]
    fn warm_start_rejects_mismatched_shapes() {
        let (small, _) = low_rank_sparse(5, 5, 2, 3);
        let (large, _) = low_rank_sparse(8, 8, 2, 3);
        let init = PqModel::train(&small, &SgdConfig::default());
        assert!(PqModel::train_warm(&large, &SgdConfig::default(), &init).is_none());
    }
}
