//! Property tests on the QoS violation ledger: for any interleaving of
//! violating and on-track ticks across workloads, the closed episodes
//! of a workload never overlap, and together they cover every violating
//! tick exactly once.

use proptest::prelude::*;

use quasar_cluster::{Observation, QosEvidence, SloConfig, SloTracker};
use quasar_workloads::{QosTarget, WorkloadId};

const TICK_S: f64 = 10.0;

/// Feeds `patterns[w][i]` (true = violating) for workload `w` at tick
/// `i` and returns the full closed ledger.
fn drive(patterns: &[Vec<bool>]) -> Vec<quasar_cluster::EpisodeRecord> {
    let mut tracker = SloTracker::new(SloConfig::default(), TICK_S);
    let target = QosTarget::ips(100.0);
    let ticks = patterns.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..ticks {
        let now = (i + 1) as f64 * TICK_S;
        for (w, pattern) in patterns.iter().enumerate() {
            let Some(&violating) = pattern.get(i) else {
                continue;
            };
            // An IPS target is a floor: rate below 100 violates it.
            let obs = Observation::Batch {
                rate: if violating { 50.0 } else { 150.0 },
                progress: 0.5,
                projected_total_s: 100.0,
                elapsed_s: now,
            };
            tracker.observe(
                now,
                WorkloadId(w as u64),
                &obs,
                &target,
                QosEvidence::default(),
            );
        }
    }
    tracker.close_all((ticks + 1) as f64 * TICK_S);
    tracker.episodes().to_vec()
}

proptest! {
    #[test]
    fn episodes_never_overlap_and_cover_every_violating_tick(
        patterns in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 0..60),
            1..4,
        )
    ) {
        let episodes = drive(&patterns);

        for (w, pattern) in patterns.iter().enumerate() {
            let id = WorkloadId(w as u64);
            let mut mine: Vec<_> = episodes.iter().filter(|e| e.workload == id).collect();
            mine.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));

            // No overlap: each episode ends before the next one starts.
            for pair in mine.windows(2) {
                prop_assert!(
                    pair[0].end_s <= pair[1].start_s,
                    "workload {w}: episode [{}, {}] overlaps [{}, {}]",
                    pair[0].start_s, pair[0].end_s, pair[1].start_s, pair[1].end_s,
                );
            }
            for e in &mine {
                prop_assert!(e.start_s < e.end_s, "empty interval [{}, {}]", e.start_s, e.end_s);
            }

            // Coverage: every violating tick falls inside exactly one
            // episode's [start, end), and the ledger charges exactly one
            // tick of an episode for it.
            let violating: Vec<f64> = pattern
                .iter()
                .enumerate()
                .filter(|(_, &v)| v)
                .map(|(i, _)| (i + 1) as f64 * TICK_S)
                .collect();
            for &t in &violating {
                let containing = mine
                    .iter()
                    .filter(|e| e.start_s <= t && t < e.end_s)
                    .count();
                prop_assert_eq!(
                    containing, 1,
                    "workload {}: violating tick at {}s is in {} episodes",
                    w, t, containing
                );
            }
            let charged: u64 = mine.iter().map(|e| e.ticks).sum();
            prop_assert_eq!(
                charged,
                violating.len() as u64,
                "workload {}: ledger charges {} ticks for {} violating observations",
                w, charged, violating.len()
            );
        }
    }

    #[test]
    fn episode_count_matches_violation_runs(pattern in proptest::collection::vec(any::<bool>(), 0..80)) {
        // The number of closed episodes equals the number of maximal
        // runs of consecutive violating ticks.
        let episodes = drive(std::slice::from_ref(&pattern));
        let runs = pattern
            .iter()
            .zip(std::iter::once(&false).chain(pattern.iter()))
            .filter(|&(&cur, &prev)| cur && !prev)
            .count();
        prop_assert_eq!(episodes.len(), runs);
    }
}
