//! Property-based tests on the task-level wave executor.

use proptest::prelude::*;

use quasar_cluster::tasks::{TaskExecution, TaskSpec};

fn spec_strategy() -> impl Strategy<Value = TaskSpec> {
    (
        1usize..60,
        1usize..20,
        5.0..120.0f64,
        0.0..0.4f64,
        0.0..0.2f64,
        1.5..5.0f64,
        any::<u64>(),
    )
        .prop_map(
            |(tasks, slots, mean_task_s, skew, straggler_fraction, straggler_slowdown, seed)| {
                TaskSpec {
                    tasks,
                    slots,
                    mean_task_s,
                    skew,
                    straggler_fraction,
                    straggler_slowdown,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every execution terminates, progress is monotone in [0, 1], and
    /// completion time is at least the longest task and at most the
    /// serial sum.
    #[test]
    fn executions_terminate_with_sane_progress(spec in spec_strategy()) {
        let mut exec = TaskExecution::new(spec);
        let longest = exec
            .tasks()
            .iter()
            .map(|t| t.duration_s)
            .fold(0.0, f64::max);
        let serial: f64 = exec.tasks().iter().map(|t| t.duration_s).sum();

        let step = spec.mean_task_s / 10.0;
        let mut last_progress = 0.0;
        let mut guard = 0;
        while !exec.is_complete() {
            exec.advance(step);
            let p = exec.job_progress();
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= last_progress - 1e-12);
            last_progress = p;
            guard += 1;
            prop_assert!(guard < 1_000_000, "must terminate");
        }
        prop_assert!((exec.job_progress() - 1.0).abs() < 1e-9);
        prop_assert!(exec.now_s() >= longest - 1e-9);
        // Discrete stepping overshoots by up to one step per wave.
        let waves = spec.tasks.div_ceil(spec.slots) as f64;
        prop_assert!(exec.now_s() <= serial + waves * step + 1e-9);
    }

    /// More slots never slow a job down.
    #[test]
    fn more_slots_never_hurt(
        tasks in 4usize..40,
        mean_task_s in 10.0..60.0f64,
        seed in any::<u64>(),
    ) {
        let make = |slots: usize| TaskSpec {
            tasks,
            slots,
            mean_task_s,
            skew: 0.2,
            straggler_fraction: 0.0,
            straggler_slowdown: 1.0,
            seed,
        };
        let few = TaskExecution::new(make(2)).completion_time();
        let many = TaskExecution::new(make(8)).completion_time();
        prop_assert!(many <= few + 1e-6, "8 slots {many:.1}s vs 2 slots {few:.1}s");
    }

    /// The under-performance check never flags healthy tasks when skew is
    /// mild and stragglers are far slower.
    #[test]
    fn underperforming_has_no_false_positives(
        seed in any::<u64>(),
        fraction in 0.02..0.15f64,
    ) {
        let spec = TaskSpec {
            tasks: 40,
            slots: 20,
            mean_task_s: 60.0,
            skew: 0.15,
            straggler_fraction: fraction,
            straggler_slowdown: 3.5,
            seed,
        };
        let mut exec = TaskExecution::new(spec);
        exec.advance(15.0);
        for idx in exec.underperforming(0.5, 10.0) {
            prop_assert!(
                exec.tasks()[idx].straggler,
                "task {idx} flagged but healthy"
            );
        }
    }

    /// Relaunching every detected straggler never makes the job slower
    /// (relaunched copies run at nominal speed).
    #[test]
    fn mitigation_never_hurts(seed in any::<u64>()) {
        let spec = TaskSpec {
            tasks: 48,
            slots: 16,
            mean_task_s: 40.0,
            skew: 0.15,
            straggler_fraction: 0.1,
            straggler_slowdown: 4.0,
            seed,
        };
        let unmitigated = TaskExecution::new(spec).completion_time();
        let mut exec = TaskExecution::new(spec);
        let mut guard = 0;
        while !exec.is_complete() {
            exec.advance(4.0);
            for idx in exec.underperforming(0.5, 8.0) {
                exec.relaunch(idx);
            }
            guard += 1;
            prop_assert!(guard < 1_000_000);
        }
        prop_assert!(exec.now_s() <= unmitigated + 4.0 + 1e-9);
    }
}
