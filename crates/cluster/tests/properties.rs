//! Property-based tests on the cluster resource ledger: arbitrary
//! sequences of place/release/resize operations never corrupt the
//! accounting.

use proptest::prelude::*;

use quasar_cluster::{ClusterSpec, ClusterState, NodeAlloc, Placement, ServerId};
use quasar_workloads::{FrameworkParams, NodeResources, PlatformCatalog, WorkloadId};

#[derive(Debug, Clone)]
enum Op {
    Place {
        workload: u64,
        server: usize,
        cores: u32,
        mem: f64,
    },
    Release {
        workload: u64,
    },
    Resize {
        workload: u64,
        server: usize,
        cores: u32,
        mem: f64,
    },
    AddNode {
        workload: u64,
        server: usize,
        cores: u32,
        mem: f64,
    },
    RemoveNode {
        workload: u64,
        server: usize,
    },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..6, 0usize..10, 1u32..12, 1.0..24.0f64).prop_map(|(w, s, c, m)| Op::Place {
            workload: w,
            server: s,
            cores: c,
            mem: m
        }),
        (0u64..6).prop_map(|w| Op::Release { workload: w }),
        (0u64..6, 0usize..10, 1u32..12, 1.0..24.0f64).prop_map(|(w, s, c, m)| Op::Resize {
            workload: w,
            server: s,
            cores: c,
            mem: m
        }),
        (0u64..6, 0usize..10, 1u32..8, 1.0..16.0f64).prop_map(|(w, s, c, m)| Op::AddNode {
            workload: w,
            server: s,
            cores: c,
            mem: m
        }),
        (0u64..6, 0usize..10).prop_map(|(w, s)| Op::RemoveNode {
            workload: w,
            server: s
        }),
    ]
}

/// Recomputes per-server usage from the placements and compares with the
/// ledger.
fn check_ledger(cluster: &ClusterState) {
    let n = cluster.servers().len();
    let mut cores = vec![0u32; n];
    let mut mem = vec![0.0f64; n];
    for placement in cluster.placements() {
        for node in &placement.nodes {
            cores[node.server.0] += node.resources.cores;
            mem[node.server.0] += node.resources.memory_gb;
        }
    }
    for server in cluster.servers() {
        let id = server.id().0;
        assert_eq!(server.used_cores(), cores[id], "core ledger on s{id}");
        assert!(
            (server.used_memory_gb() - mem[id]).abs() < 1e-6,
            "memory ledger on s{id}"
        );
        assert!(server.used_cores() <= server.total_cores());
        assert!(server.used_memory_gb() <= server.total_memory_gb() + 1e-6);
        // The tenant index must agree with the placements.
        let mut indexed = cluster.workloads_on(server.id());
        indexed.sort();
        indexed.dedup();
        let mut actual: Vec<_> = cluster
            .placements()
            .filter(|p| p.node_on(server.id()).is_some())
            .map(|p| p.workload)
            .collect();
        actual.sort();
        assert_eq!(indexed, actual, "tenant index on s{id}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The resource ledger stays consistent under any operation sequence,
    /// whether individual operations succeed or fail.
    #[test]
    fn ledger_survives_arbitrary_operations(ops in proptest::collection::vec(op(), 1..60)) {
        let catalog = PlatformCatalog::local();
        let mut cluster = ClusterState::new(ClusterSpec::uniform(catalog, 1));
        for operation in ops {
            match operation {
                Op::Place { workload, server, cores, mem } => {
                    let _ = cluster.place(Placement::new(
                        WorkloadId(workload),
                        vec![NodeAlloc::immediate(ServerId(server), NodeResources::new(cores, mem))],
                        FrameworkParams::default(),
                    ));
                }
                Op::Release { workload } => {
                    let _ = cluster.release(WorkloadId(workload));
                }
                Op::Resize { workload, server, cores, mem } => {
                    let _ = cluster.resize_node(
                        WorkloadId(workload),
                        ServerId(server),
                        NodeResources::new(cores, mem),
                    );
                }
                Op::AddNode { workload, server, cores, mem } => {
                    let _ = cluster.add_node(
                        WorkloadId(workload),
                        NodeAlloc::immediate(ServerId(server), NodeResources::new(cores, mem)),
                    );
                }
                Op::RemoveNode { workload, server } => {
                    let _ = cluster.remove_node(WorkloadId(workload), ServerId(server));
                }
            }
            check_ledger(&cluster);
        }
        // Releasing everything restores an empty cluster.
        let ids: Vec<WorkloadId> = cluster.placements().map(|p| p.workload).collect();
        for id in ids {
            cluster.release(id);
        }
        prop_assert_eq!(cluster.used_cores(), 0);
        check_ledger(&cluster);
    }
}
