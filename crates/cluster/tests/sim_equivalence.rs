//! Differential property test: the event-heap simulator core and the
//! retained dense tick loop produce *identical* outcomes — same
//! completion digest, same final clock bits, same metrics grid — for
//! arbitrary workload sets, arrival times (including mid-tick ones,
//! which must be delivered at the covering tick), and tick sizes.

use proptest::prelude::*;

use quasar_cluster::{ClusterSpec, FifoGreedy, SimConfig, Simulation};
use quasar_workloads::generate::Generator;
use quasar_workloads::{PlatformCatalog, Priority};

/// Runs the same submission schedule through one of the two drivers and
/// returns every deterministic outcome: (completion digest, completed
/// count, final clock bits, metrics sample count).
fn run(dense: bool, jobs: &[(f64, f64)], tick_s: f64) -> (u64, usize, u64, u64) {
    let config = SimConfig {
        tick_s,
        noise: 0.0,
        metrics_interval_s: 60.0,
        seed: 7,
    };
    let spec = ClusterSpec::uniform(PlatformCatalog::local(), 2);
    let mut sim = Simulation::new(spec, Box::new(FifoGreedy::new(4, 4.0)), config);
    let mut generator = Generator::new(PlatformCatalog::local(), 99);
    let mut last_arrival: f64 = 0.0;
    for (i, &(at_s, duration_s)) in jobs.iter().enumerate() {
        let workload = generator.single_node_job(format!("p{i}"), duration_s, Priority::Guaranteed);
        sim.submit_at(workload, at_s);
        last_arrival = last_arrival.max(at_s);
    }
    let t_end_s = last_arrival + 8_000.0;
    if dense {
        sim.run_until_dense(t_end_s);
    } else {
        sim.run_until(t_end_s);
    }
    let world = sim.world();
    (
        world.completion_digest(),
        world.completions().len(),
        world.now().to_bits(),
        world.metrics().total_count(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the arrival times (on- or off-grid), durations, and
    /// tick size, the event-driven core is outcome-equivalent to the
    /// dense loop — and every job completes within the horizon.
    #[test]
    fn event_core_matches_dense_core(
        jobs in proptest::collection::vec((0.0..8_000.0f64, 50.0..600.0f64), 1..10),
        tick_index in 0usize..4,
    ) {
        let tick_s = [1.0, 2.5, 5.0, 7.0][tick_index];
        let event = run(false, &jobs, tick_s);
        let dense = run(true, &jobs, tick_s);
        prop_assert_eq!(&event, &dense);
        prop_assert_eq!(event.1, jobs.len(), "all jobs complete in both drivers");
    }
}
