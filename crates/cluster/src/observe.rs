//! Runtime observations handed to managers.

use std::sync::OnceLock;

use quasar_obs::registry::{Counter, Registry};
use quasar_workloads::ServiceObservation;

/// Counter for (observation, target) kind mismatches seen by
/// [`Observation::on_track`]. A mismatch means the monitoring layer and
/// the QoS target disagree about what kind of workload this is — a
/// wiring bug, not a QoS violation.
fn kind_mismatch_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| Registry::global().counter("quasar.cluster.observe.kind_mismatch"))
}

/// What the monitoring layer measured for a workload over the last tick —
/// the only runtime signal managers receive (paper §3.1: "Quasar monitors
/// workload performance and adjusts... when needed").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Observation {
    /// A batch job's progress.
    Batch {
        /// Current work rate in work units/second (noisy).
        rate: f64,
        /// Fraction of the job completed, in `[0, 1]`.
        progress: f64,
        /// Projected total execution time at the current rate, in seconds.
        projected_total_s: f64,
        /// Seconds the job has been running.
        elapsed_s: f64,
    },
    /// A service's latest measurement window.
    Service(ServiceObservation),
}

impl Observation {
    /// Whether the workload currently tracks its target: a batch job is on
    /// track when its projected total time fits the `target_s` deadline
    /// (with `slack` tolerance, e.g. 0.05); a service when the window met
    /// its throughput/latency target.
    pub fn on_track(&self, target: &quasar_workloads::QosTarget, slack: f64) -> bool {
        match (self, target) {
            (
                Observation::Batch {
                    projected_total_s, ..
                },
                quasar_workloads::QosTarget::CompletionTime { seconds },
            ) => *projected_total_s <= seconds * (1.0 + slack),
            // IPS targets are floors: a job is on track only while its
            // measured rate stays at or above the floor (the slack covers
            // the deadline form, where a small overshoot is tolerable).
            (Observation::Batch { rate, .. }, quasar_workloads::QosTarget::Ips { ips }) => {
                *rate >= *ips
            }
            (Observation::Service(obs), t @ quasar_workloads::QosTarget::Throughput { .. }) => {
                obs.meets(t)
            }
            // Mismatched kinds are a monitoring-wiring bug, not a QoS
            // violation: count them so the drift is visible in telemetry,
            // trip loudly in debug builds, and conservatively score the
            // tick off-track in release.
            (obs, target) => {
                kind_mismatch_counter().inc();
                debug_assert!(
                    false,
                    "observation/target kind mismatch: {obs:?} vs {target:?}"
                );
                false
            }
        }
    }

    /// The service observation, if this is a service.
    pub fn as_service(&self) -> Option<&ServiceObservation> {
        match self {
            Observation::Service(o) => Some(o),
            Observation::Batch { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_workloads::QosTarget;

    #[test]
    fn batch_on_track_respects_slack() {
        let obs = Observation::Batch {
            rate: 1.0,
            progress: 0.5,
            projected_total_s: 1040.0,
            elapsed_s: 520.0,
        };
        let target = QosTarget::completion(1000.0);
        assert!(obs.on_track(&target, 0.05));
        assert!(!obs.on_track(&target, 0.01));
    }

    #[test]
    fn ips_on_track_is_a_floor() {
        let obs = Observation::Batch {
            rate: 90.0,
            progress: 0.1,
            projected_total_s: 100.0,
            elapsed_s: 10.0,
        };
        assert!(obs.on_track(&QosTarget::ips(90.0), 0.05));
        assert!(obs.on_track(&QosTarget::ips(85.0), 0.05));
        assert!(!obs.on_track(&QosTarget::ips(92.0), 0.05));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "observation/target kind mismatch")
    )]
    fn mismatched_kinds_trip_the_debug_assert_and_counter() {
        let obs = Observation::Batch {
            rate: 1.0,
            progress: 0.0,
            projected_total_s: 1.0,
            elapsed_s: 0.0,
        };
        let before = kind_mismatch_counter().get();
        // Debug builds panic on the assert above; release builds fall
        // through to the conservative off-track score and bump the
        // counter so the wiring bug is still visible.
        assert!(!obs.on_track(&QosTarget::throughput(1.0, 1.0), 0.05));
        assert_eq!(kind_mismatch_counter().get(), before + 1);
    }
}
