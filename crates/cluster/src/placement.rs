//! Workload placements.

use quasar_workloads::{FrameworkParams, NodeResources, WorkloadId};

use crate::server::ServerId;

/// Resources a workload holds on one server, with the simulation time at
/// which the node becomes active (profiling delay on initial placement,
/// microshard-migration delay when scaling out a stateful service).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeAlloc {
    /// The server hosting this slice.
    pub server: ServerId,
    /// Resources held on that server.
    pub resources: NodeResources,
    /// Simulation time at which the node starts contributing.
    pub active_after: f64,
}

impl NodeAlloc {
    /// A node allocation active immediately.
    pub fn immediate(server: ServerId, resources: NodeResources) -> NodeAlloc {
        NodeAlloc {
            server,
            resources,
            active_after: 0.0,
        }
    }

    /// Whether the node is active at time `now`.
    pub fn is_active(&self, now: f64) -> bool {
        now >= self.active_after
    }
}

/// The full assignment of one workload: which servers, how much of each,
/// and the framework configuration (paper Table 3 knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Workload this placement belongs to.
    pub workload: WorkloadId,
    /// Per-node slices.
    pub nodes: Vec<NodeAlloc>,
    /// Framework parameters in force.
    pub params: FrameworkParams,
    /// Whether hardware partitioning (cache ways, NIC rate limits) is
    /// enabled for this placement — the §4.4 extension. Partitioning
    /// halves interference in both directions at a small capacity
    /// overhead.
    pub isolated: bool,
}

impl Placement {
    /// Creates a placement.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or the same server appears twice.
    pub fn new(workload: WorkloadId, nodes: Vec<NodeAlloc>, params: FrameworkParams) -> Placement {
        assert!(!nodes.is_empty(), "placements need at least one node");
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                assert_ne!(a.server, b.server, "one slice per server per workload");
            }
        }
        Placement {
            workload,
            nodes,
            params,
            isolated: false,
        }
    }

    /// Number of nodes (servers) in the placement.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes active at `now`.
    pub fn active_nodes(&self, now: f64) -> impl Iterator<Item = &NodeAlloc> {
        self.nodes.iter().filter(move |n| n.is_active(now))
    }

    /// Total cores across all nodes.
    pub fn total_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.resources.cores).sum()
    }

    /// Total memory across all nodes, in GB.
    pub fn total_memory_gb(&self) -> f64 {
        self.nodes.iter().map(|n| n.resources.memory_gb).sum()
    }

    /// The slice on `server`, if any.
    pub fn node_on(&self, server: ServerId) -> Option<&NodeAlloc> {
        self.nodes.iter().find(|n| n.server == server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(sid: usize, cores: u32) -> NodeAlloc {
        NodeAlloc::immediate(ServerId(sid), NodeResources::new(cores, 4.0))
    }

    #[test]
    fn totals_sum_over_nodes() {
        let p = Placement::new(
            WorkloadId(1),
            vec![alloc(0, 4), alloc(1, 8)],
            FrameworkParams::default(),
        );
        assert_eq!(p.total_cores(), 12);
        assert_eq!(p.total_memory_gb(), 8.0);
        assert_eq!(p.node_count(), 2);
    }

    #[test]
    fn activation_delay_gates_nodes() {
        let mut late = alloc(1, 4);
        late.active_after = 100.0;
        let p = Placement::new(
            WorkloadId(1),
            vec![alloc(0, 4), late],
            FrameworkParams::default(),
        );
        assert_eq!(p.active_nodes(50.0).count(), 1);
        assert_eq!(p.active_nodes(100.0).count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_placement_panics() {
        Placement::new(WorkloadId(1), vec![], FrameworkParams::default());
    }

    #[test]
    #[should_panic(expected = "one slice per server")]
    fn duplicate_server_panics() {
        Placement::new(
            WorkloadId(1),
            vec![alloc(0, 2), alloc(0, 4)],
            FrameworkParams::default(),
        );
    }

    #[test]
    fn node_on_finds_server_slice() {
        let p = Placement::new(
            WorkloadId(2),
            vec![alloc(0, 4), alloc(7, 8)],
            FrameworkParams::default(),
        );
        assert_eq!(p.node_on(ServerId(7)).unwrap().resources.cores, 8);
        assert!(p.node_on(ServerId(3)).is_none());
    }
}
