//! Cluster state: servers plus the placements committed to them.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use quasar_workloads::{NodeResources, Platform, PlatformCatalog, PlatformId, WorkloadId};

use crate::placement::{NodeAlloc, Placement};
use crate::server::{Server, ServerId};

/// Describes the hardware of a cluster to build: a platform catalog plus
/// how many servers of each platform.
///
/// # Examples
///
/// ```
/// use quasar_cluster::ClusterSpec;
/// use quasar_workloads::PlatformCatalog;
///
/// // The paper's 40-server local cluster: 4 servers per platform A–J.
/// let spec = ClusterSpec::uniform(PlatformCatalog::local(), 4);
/// assert_eq!(spec.total_servers(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    catalog: PlatformCatalog,
    counts: Vec<(PlatformId, usize)>,
}

impl ClusterSpec {
    /// A cluster with `per_platform` servers of every platform in the
    /// catalog.
    pub fn uniform(catalog: PlatformCatalog, per_platform: usize) -> ClusterSpec {
        let counts = catalog.iter().map(|p| (p.id, per_platform)).collect();
        ClusterSpec { catalog, counts }
    }

    /// A cluster with explicit per-platform counts.
    ///
    /// # Panics
    ///
    /// Panics if a platform id is out of range for the catalog.
    pub fn with_counts(catalog: PlatformCatalog, counts: Vec<(PlatformId, usize)>) -> ClusterSpec {
        for (id, _) in &counts {
            assert!(id.0 < catalog.len(), "platform id out of range");
        }
        ClusterSpec { catalog, counts }
    }

    /// Total number of servers.
    pub fn total_servers(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// Splits the spec into `shards` disjoint sub-specs for the sharded
    /// manager: each platform's servers are dealt round-robin across the
    /// cells, so every cell sees (as close as possible to) the same
    /// hardware mix and the union of the parts is exactly this spec.
    ///
    /// Cells whose share of some platform rounds to zero simply omit it;
    /// a cell is never entirely empty as long as
    /// `shards <= total_servers()`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds the number of servers.
    ///
    /// # Examples
    ///
    /// ```
    /// use quasar_cluster::ClusterSpec;
    /// use quasar_workloads::PlatformCatalog;
    ///
    /// let spec = ClusterSpec::uniform(PlatformCatalog::local(), 4);
    /// let cells = spec.partition(4);
    /// assert_eq!(cells.len(), 4);
    /// assert_eq!(cells.iter().map(|c| c.total_servers()).sum::<usize>(), 40);
    /// ```
    pub fn partition(&self, shards: usize) -> Vec<ClusterSpec> {
        assert!(shards > 0, "shard count must be positive");
        assert!(
            shards <= self.total_servers(),
            "more shards ({shards}) than servers ({})",
            self.total_servers()
        );
        let mut parts: Vec<Vec<(PlatformId, usize)>> = vec![Vec::new(); shards];
        // The remainder servers of each platform are dealt to consecutive
        // cells starting at a cursor that advances across platforms. If
        // every remainder started at cell 0, the low cells would soak up
        // one extra server per platform and — whenever every platform
        // count is below the shard count — the high cells would end up
        // with no servers at all, silently starving any job routed there.
        let mut cursor = 0usize;
        for (pid, count) in &self.counts {
            let base = count / shards;
            let extra = count % shards;
            for (cell, part) in parts.iter_mut().enumerate() {
                let gets_extra = (cell + shards - cursor) % shards < extra;
                let share = base + usize::from(gets_extra);
                if share > 0 {
                    part.push((*pid, share));
                }
            }
            cursor = (cursor + extra) % shards;
        }
        parts
            .into_iter()
            .map(|counts| ClusterSpec {
                catalog: self.catalog.clone(),
                counts,
            })
            .collect()
    }

    /// The catalog behind this spec.
    pub fn catalog(&self) -> &PlatformCatalog {
        &self.catalog
    }
}

/// Why a placement could not be committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// A node referenced a server that does not exist.
    NoSuchServer(ServerId),
    /// A server had insufficient free cores or memory.
    InsufficientCapacity(ServerId),
    /// The workload already has a placement.
    AlreadyPlaced(WorkloadId),
    /// The workload has no placement (for adjustment operations).
    NotPlaced(WorkloadId),
    /// The workload already holds a slice on this server.
    DuplicateServer(ServerId),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::NoSuchServer(s) => write!(f, "server {s} does not exist"),
            PlaceError::InsufficientCapacity(s) => {
                write!(f, "server {s} has insufficient free capacity")
            }
            PlaceError::AlreadyPlaced(w) => write!(f, "workload {w} is already placed"),
            PlaceError::NotPlaced(w) => write!(f, "workload {w} has no placement"),
            PlaceError::DuplicateServer(s) => {
                write!(f, "workload already holds a slice on server {s}")
            }
        }
    }
}

impl Error for PlaceError {}

/// Servers plus committed placements — the mutable resource ledger the
/// manager operates on through [`crate::World`].
#[derive(Debug, Clone)]
pub struct ClusterState {
    catalog: PlatformCatalog,
    servers: Vec<Server>,
    placements: HashMap<WorkloadId, Placement>,
    /// Per-server tenant index, kept in sync with `placements` so the
    /// hot `workloads_on` path is O(tenants) instead of O(placements).
    tenants: Vec<Vec<WorkloadId>>,
}

impl ClusterState {
    /// Builds the cluster described by `spec`.
    pub fn new(spec: ClusterSpec) -> ClusterState {
        let mut servers = Vec::with_capacity(spec.total_servers());
        for (pid, count) in &spec.counts {
            let platform = spec.catalog.get(*pid);
            for _ in 0..*count {
                servers.push(Server::new(ServerId(servers.len()), platform));
            }
        }
        let tenants = vec![Vec::new(); servers.len()];
        ClusterState {
            catalog: spec.catalog,
            servers,
            placements: HashMap::new(),
            tenants,
        }
    }

    fn index_add(&mut self, server: ServerId, id: WorkloadId) {
        self.tenants[server.0].push(id);
    }

    fn index_remove(&mut self, server: ServerId, id: WorkloadId) {
        self.tenants[server.0].retain(|&w| w != id);
    }

    /// The platform catalog.
    pub fn catalog(&self) -> &PlatformCatalog {
        &self.catalog
    }

    /// All servers, indexed by [`ServerId`].
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// The server with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.0]
    }

    /// The platform of a server.
    pub fn platform_of(&self, id: ServerId) -> &Platform {
        self.catalog.get(self.server(id).platform())
    }

    /// The placement of a workload, if any.
    pub fn placement(&self, id: WorkloadId) -> Option<&Placement> {
        self.placements.get(&id)
    }

    /// All current placements.
    pub fn placements(&self) -> impl Iterator<Item = &Placement> {
        self.placements.values()
    }

    /// Workload ids with a slice on `server`.
    pub fn workloads_on(&self, server: ServerId) -> Vec<WorkloadId> {
        self.tenants[server.0].clone()
    }

    /// Borrowed view of the tenants on `server` (hot path).
    pub fn tenants_on(&self, server: ServerId) -> &[WorkloadId] {
        &self.tenants[server.0]
    }

    /// Commits a placement, reserving its resources.
    ///
    /// # Errors
    ///
    /// Returns a [`PlaceError`] and leaves the cluster unchanged if the
    /// workload is already placed, a server does not exist, or capacity is
    /// insufficient.
    pub fn place(&mut self, placement: Placement) -> Result<(), PlaceError> {
        if self.placements.contains_key(&placement.workload) {
            return Err(PlaceError::AlreadyPlaced(placement.workload));
        }
        self.check_fit(&placement.nodes)?;
        for node in &placement.nodes {
            self.servers[node.server.0].commit(node.resources);
        }
        let id = placement.workload;
        let servers: Vec<ServerId> = placement.nodes.iter().map(|n| n.server).collect();
        self.placements.insert(id, placement);
        for server in servers {
            self.index_add(server, id);
        }
        Ok(())
    }

    fn check_fit(&self, nodes: &[NodeAlloc]) -> Result<(), PlaceError> {
        // Aggregate per server first so multi-slice requests are validated
        // jointly (should not occur inside one placement, but adjustments
        // may add to an existing server).
        for node in nodes {
            let server = self
                .servers
                .get(node.server.0)
                .ok_or(PlaceError::NoSuchServer(node.server))?;
            if !server.fits(node.resources) {
                return Err(PlaceError::InsufficientCapacity(node.server));
            }
        }
        Ok(())
    }

    /// Releases a workload's placement, freeing its resources.
    pub fn release(&mut self, id: WorkloadId) -> Option<Placement> {
        let placement = self.placements.remove(&id)?;
        for node in &placement.nodes {
            self.servers[node.server.0].release(node.resources);
            self.index_remove(node.server, id);
        }
        Some(placement)
    }

    /// Adds a node to an existing placement.
    ///
    /// # Errors
    ///
    /// Fails if the workload is not placed, already has a slice on that
    /// server, or the server lacks capacity.
    pub fn add_node(&mut self, id: WorkloadId, node: NodeAlloc) -> Result<(), PlaceError> {
        let placement = self.placements.get(&id).ok_or(PlaceError::NotPlaced(id))?;
        if placement.node_on(node.server).is_some() {
            return Err(PlaceError::DuplicateServer(node.server));
        }
        let server = self
            .servers
            .get(node.server.0)
            .ok_or(PlaceError::NoSuchServer(node.server))?;
        if !server.fits(node.resources) {
            return Err(PlaceError::InsufficientCapacity(node.server));
        }
        self.servers[node.server.0].commit(node.resources);
        let server = node.server;
        self.placements
            .get_mut(&id)
            .expect("checked above")
            .nodes
            .push(node);
        self.index_add(server, id);
        Ok(())
    }

    /// Removes the slice of `id` on `server`, freeing it. Removing the
    /// last node releases the placement entirely.
    ///
    /// # Errors
    ///
    /// Fails if the workload is not placed or has no slice there.
    pub fn remove_node(&mut self, id: WorkloadId, server: ServerId) -> Result<(), PlaceError> {
        let placement = self
            .placements
            .get_mut(&id)
            .ok_or(PlaceError::NotPlaced(id))?;
        let idx = placement
            .nodes
            .iter()
            .position(|n| n.server == server)
            .ok_or(PlaceError::NoSuchServer(server))?;
        let node = placement.nodes.remove(idx);
        let empty = placement.nodes.is_empty();
        self.servers[server.0].release(node.resources);
        self.index_remove(server, id);
        if empty {
            self.placements.remove(&id);
        }
        Ok(())
    }

    /// Resizes the slice of `id` on `server` to `resources` (scale-up or
    /// scale-down in place).
    ///
    /// # Errors
    ///
    /// Fails if not placed there or if growth does not fit.
    pub fn resize_node(
        &mut self,
        id: WorkloadId,
        server: ServerId,
        resources: NodeResources,
    ) -> Result<(), PlaceError> {
        let placement = self.placements.get(&id).ok_or(PlaceError::NotPlaced(id))?;
        let old = placement
            .node_on(server)
            .ok_or(PlaceError::NoSuchServer(server))?
            .resources;
        let srv = &mut self.servers[server.0];
        srv.release(old);
        if !srv.fits(resources) {
            srv.commit(old);
            return Err(PlaceError::InsufficientCapacity(server));
        }
        srv.commit(resources);
        let placement = self.placements.get_mut(&id).expect("checked above");
        let node = placement
            .nodes
            .iter_mut()
            .find(|n| n.server == server)
            .expect("checked above");
        node.resources = resources;
        Ok(())
    }

    /// Enables or disables hardware partitioning for a placement (§4.4
    /// extension).
    ///
    /// # Errors
    ///
    /// Fails if the workload is not placed.
    pub fn set_isolation(&mut self, id: WorkloadId, isolated: bool) -> Result<(), PlaceError> {
        let placement = self
            .placements
            .get_mut(&id)
            .ok_or(PlaceError::NotPlaced(id))?;
        placement.isolated = isolated;
        Ok(())
    }

    /// Updates the framework parameters of a placement.
    ///
    /// # Errors
    ///
    /// Fails if the workload is not placed.
    pub fn set_params(
        &mut self,
        id: WorkloadId,
        params: quasar_workloads::FrameworkParams,
    ) -> Result<(), PlaceError> {
        let placement = self
            .placements
            .get_mut(&id)
            .ok_or(PlaceError::NotPlaced(id))?;
        placement.params = params;
        Ok(())
    }

    /// Total cores across the cluster.
    pub fn total_cores(&self) -> u32 {
        self.servers.iter().map(|s| s.total_cores()).sum()
    }

    /// Committed cores across the cluster.
    pub fn used_cores(&self) -> u32 {
        self.servers.iter().map(|s| s.used_cores()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_workloads::FrameworkParams;

    fn cluster() -> ClusterState {
        ClusterState::new(ClusterSpec::uniform(PlatformCatalog::local(), 1))
    }

    fn node(sid: usize, cores: u32, mem: f64) -> NodeAlloc {
        NodeAlloc::immediate(ServerId(sid), NodeResources::new(cores, mem))
    }

    fn place_one(c: &mut ClusterState, wid: u64, sid: usize, cores: u32) {
        c.place(Placement::new(
            WorkloadId(wid),
            vec![node(sid, cores, 2.0)],
            FrameworkParams::default(),
        ))
        .unwrap();
    }

    #[test]
    fn uniform_spec_builds_40_server_local_cluster() {
        let c = cluster();
        assert_eq!(c.servers().len(), 10);
        assert_eq!(
            ClusterState::new(ClusterSpec::uniform(PlatformCatalog::local(), 4))
                .servers()
                .len(),
            40
        );
    }

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        let catalog = PlatformCatalog::local();
        let spec = ClusterSpec::with_counts(
            catalog.clone(),
            vec![
                (quasar_workloads::PlatformId(0), 7),
                (quasar_workloads::PlatformId(3), 1),
                (quasar_workloads::PlatformId(9), 4),
            ],
        );
        let cells = spec.partition(3);
        assert_eq!(cells.len(), 3);
        // Union of the parts is exactly the original spec, per platform.
        for pid in [0usize, 3, 9] {
            let pid = quasar_workloads::PlatformId(pid);
            let original: usize = spec
                .counts
                .iter()
                .filter(|(p, _)| *p == pid)
                .map(|(_, n)| n)
                .sum();
            let split: usize = cells
                .iter()
                .flat_map(|c| c.counts.iter())
                .filter(|(p, _)| *p == pid)
                .map(|(_, n)| n)
                .sum();
            assert_eq!(
                split, original,
                "platform {pid:?} servers must be conserved"
            );
        }
        // Round-robin keeps cells within one server of each other *per
        // platform* (remainders rotate across cells, platform by
        // platform).
        let sizes: Vec<usize> = cells.iter().map(ClusterSpec::total_servers).collect();
        assert_eq!(sizes.iter().sum::<usize>(), spec.total_servers());
        for pid in [0usize, 3, 9] {
            let pid = quasar_workloads::PlatformId(pid);
            let shares: Vec<usize> = cells
                .iter()
                .map(|c| {
                    c.counts
                        .iter()
                        .filter(|(p, _)| *p == pid)
                        .map(|(_, n)| *n)
                        .sum()
                })
                .collect();
            assert!(
                shares.iter().max().unwrap() - shares.iter().min().unwrap() <= 1,
                "platform {pid:?} shares {shares:?} must differ by at most one"
            );
        }
        // Every cell builds a working cluster.
        for cell in cells {
            assert!(ClusterState::new(cell).servers().len() > 0);
        }
    }

    #[test]
    fn partition_never_yields_an_empty_cell() {
        // Regression: with more shards than any single platform's count
        // (10 platforms x 4 servers into 8 cells), per-platform dealing
        // that always starts at cell 0 hands cells 0-3 ten servers each
        // and cells 4-7 nothing — and an empty cell can never place the
        // jobs routed to it. Rotating the remainder start keeps every
        // cell populated whenever `shards <= total_servers()`.
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 4);
        let cells = spec.partition(8);
        let sizes: Vec<usize> = cells.iter().map(ClusterSpec::total_servers).collect();
        assert_eq!(sizes, vec![5; 8], "40 servers deal evenly into 8 cells");
        // Down to the one-server-per-cell limit, nobody is left empty.
        for shards in 1..=spec.total_servers() {
            for cell in spec.partition(shards) {
                assert!(cell.total_servers() > 0, "empty cell at {shards} shards");
            }
        }
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn partition_rejects_more_shards_than_servers() {
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 1);
        spec.partition(11);
    }

    #[test]
    fn place_reserves_and_release_frees() {
        let mut c = cluster();
        place_one(&mut c, 1, 9, 8);
        assert_eq!(c.server(ServerId(9)).used_cores(), 8);
        assert_eq!(c.workloads_on(ServerId(9)), vec![WorkloadId(1)]);
        let p = c.release(WorkloadId(1)).unwrap();
        assert_eq!(p.total_cores(), 8);
        assert_eq!(c.server(ServerId(9)).used_cores(), 0);
    }

    #[test]
    fn double_place_is_rejected() {
        let mut c = cluster();
        place_one(&mut c, 1, 9, 2);
        let err = c
            .place(Placement::new(
                WorkloadId(1),
                vec![node(8, 2, 2.0)],
                FrameworkParams::default(),
            ))
            .unwrap_err();
        assert_eq!(err, PlaceError::AlreadyPlaced(WorkloadId(1)));
    }

    #[test]
    fn insufficient_capacity_is_rejected_atomically() {
        let mut c = cluster();
        // Server 0 is platform A with 2 cores.
        let err = c
            .place(Placement::new(
                WorkloadId(1),
                vec![node(9, 2, 2.0), node(0, 16, 2.0)],
                FrameworkParams::default(),
            ))
            .unwrap_err();
        assert_eq!(err, PlaceError::InsufficientCapacity(ServerId(0)));
        // Nothing committed on server 9 either.
        assert_eq!(c.server(ServerId(9)).used_cores(), 0);
    }

    #[test]
    fn add_and_remove_node_adjust_capacity() {
        let mut c = cluster();
        place_one(&mut c, 1, 9, 4);
        c.add_node(WorkloadId(1), node(8, 4, 2.0)).unwrap();
        assert_eq!(c.placement(WorkloadId(1)).unwrap().node_count(), 2);
        c.remove_node(WorkloadId(1), ServerId(9)).unwrap();
        assert_eq!(c.server(ServerId(9)).used_cores(), 0);
        // Removing the final node clears the placement.
        c.remove_node(WorkloadId(1), ServerId(8)).unwrap();
        assert!(c.placement(WorkloadId(1)).is_none());
    }

    #[test]
    fn resize_node_grows_and_shrinks() {
        let mut c = cluster();
        place_one(&mut c, 1, 9, 4);
        c.resize_node(WorkloadId(1), ServerId(9), NodeResources::new(12, 8.0))
            .unwrap();
        assert_eq!(c.server(ServerId(9)).used_cores(), 12);
        c.resize_node(WorkloadId(1), ServerId(9), NodeResources::new(2, 1.0))
            .unwrap();
        assert_eq!(c.server(ServerId(9)).used_cores(), 2);
    }

    #[test]
    fn resize_beyond_capacity_restores_old_allocation() {
        let mut c = cluster();
        place_one(&mut c, 1, 9, 4);
        place_one(&mut c, 2, 9, 16);
        let err = c
            .resize_node(WorkloadId(1), ServerId(9), NodeResources::new(10, 2.0))
            .unwrap_err();
        assert_eq!(err, PlaceError::InsufficientCapacity(ServerId(9)));
        assert_eq!(c.server(ServerId(9)).used_cores(), 20);
        assert_eq!(
            c.placement(WorkloadId(1)).unwrap().total_cores(),
            4,
            "failed resize must not change the placement"
        );
    }

    #[test]
    fn duplicate_server_in_add_node_is_rejected() {
        let mut c = cluster();
        place_one(&mut c, 1, 9, 4);
        let err = c.add_node(WorkloadId(1), node(9, 2, 1.0)).unwrap_err();
        assert_eq!(err, PlaceError::DuplicateServer(ServerId(9)));
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            PlaceError::NoSuchServer(ServerId(0)),
            PlaceError::InsufficientCapacity(ServerId(1)),
            PlaceError::AlreadyPlaced(WorkloadId(2)),
            PlaceError::NotPlaced(WorkloadId(3)),
            PlaceError::DuplicateServer(ServerId(4)),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
