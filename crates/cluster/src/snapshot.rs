//! Run snapshots: persistable mid-run state for resumable simulations.
//!
//! A snapshot is a line-oriented text block capturing every piece of
//! *dynamic* state a run needs to continue — the clock, each workload's
//! lifecycle and progress, live placements, the queued (undelivered)
//! arrival events, the metrics grid cursor, the completion digest, and
//! the journal's chunk-stream checkpoint. Static state is *not* stored:
//! the cluster spec, the manager, and the workload definitions are
//! reconstructed by the caller (workloads are regenerated
//! deterministically and looked up by id). Floats travel as the hex of
//! their IEEE-754 bits, so a resumed run continues *bit-exactly*: its
//! completion digest, metrics grid, and journal stream digest match the
//! uninterrupted run's byte for byte.
//!
//! # Restrictions
//!
//! Snapshots cover the event-driven batch pipeline — the state a
//! million-job run actually carries. [`snapshot`] fails when the run
//! uses features whose state has no serial form:
//!
//! * measurement noise must be 0 (the RNG state is not captured; with
//!   noise disabled the RNG is never drawn from),
//! * only batch workloads (service QoS accounting is not serialized),
//! * no queued phase changes, no active pressure injections, and no
//!   phase-override interference profiles.
//!
//! The manager's own state is also not captured: resume with a
//! stateless manager (one that derives its decisions from the world,
//! like the FIFO greedy manager the `bench-sim` harness uses) or
//! rebuild the manager externally before resuming. A workload's last
//! monitoring observation is dropped; it reappears one tick after
//! resume.

use std::fmt::Write as _;
use std::io;

use quasar_workloads::{Compression, FrameworkParams, NodeResources, Workload, WorkloadId};

use crate::chunk::{bad, bits, parse_bits, parse_num, ChunkProvider};
use crate::cluster::ClusterSpec;
use crate::managers::Manager;
use crate::placement::{NodeAlloc, Placement};
use crate::server::ServerId;
use crate::sim::{SimConfig, Simulation};
use crate::world::{Entry, JobState, Retention};

/// Schema tag on the first line of every snapshot.
pub const SNAPSHOT_SCHEMA: &str = "quasar.sim.snapshot.v1";

/// Renders a snapshot of the simulation's dynamic state.
///
/// Seals the journal's open chunk first (when a chunk provider is
/// attached), so the stored chunk stream covers every event up to the
/// snapshot instant and the embedded checkpoint points just past it.
///
/// # Errors
///
/// Fails with `InvalidData` when the run holds state a snapshot cannot
/// carry (see the module docs for the exact restrictions).
pub fn snapshot(sim: &mut Simulation) -> io::Result<String> {
    let arrivals = sim.queued_arrivals().map_err(bad)?;
    let next_seq = sim.event_seq();
    sim.world_mut().journal_mut().seal_open_chunk();
    let world = sim.world();
    if world.noise() > 0.0 {
        return Err(bad(
            "snapshots require noise = 0 (RNG state is not captured)".into(),
        ));
    }
    if world.injections_active() {
        return Err(bad(
            "active pressure injections cannot be snapshotted".into()
        ));
    }

    let mut out = format!(
        "{SNAPSHOT_SCHEMA} tick={} interval={}\n",
        bits(world.tick_s()),
        bits(world.metrics().interval_s()),
    );
    let _ = writeln!(out, "clock {}", bits(world.now()));
    let _ = writeln!(out, "next_seq {next_seq}");
    let _ = writeln!(
        out,
        "digest {:016x} {}",
        world.completion_digest(),
        world.retired_count()
    );
    let retention = match world.retention() {
        Retention::KeepAll => "keep",
        Retention::DropCompleted => "drop",
    };
    let _ = writeln!(out, "retention {retention}");
    let (next_index, total) = world.metrics_checkpoint();
    let _ = writeln!(out, "metrics {next_index} {total}");
    let (next_chunk, streamed, stream_digest) = world.journal().checkpoint();
    let _ = writeln!(out, "journal {next_chunk} {streamed} {stream_digest:016x}");

    let _ = writeln!(out, "events {}", arrivals.len());
    for (time_s, seq, id) in &arrivals {
        let _ = writeln!(out, "{} {seq} {}", bits(*time_s), id.0);
    }

    let entries = world.snapshot_entries();
    let _ = writeln!(out, "entries {}", entries.len());
    for (id, e) in &entries {
        if !e.workload.spec().class.is_batch() {
            return Err(bad(format!(
                "workload {} is not batch; service state cannot be snapshotted",
                id.0
            )));
        }
        if e.phase_interference.is_some() {
            return Err(bad(format!(
                "workload {} has a phase interference override; cannot snapshot",
                id.0
            )));
        }
        let state = match e.state {
            JobState::Pending => 'P',
            JobState::Running => 'R',
            JobState::Completed => 'C',
            JobState::Killed => 'K',
        };
        let opt = |v: Option<f64>| v.map(bits).unwrap_or_else(|| "-".into());
        let reserved = e
            .reserved
            .map(|(c, m)| format!("{c}:{}", bits(m)))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{} {state} {} {} {} {} {} {} {} {reserved}",
            id.0,
            bits(e.remaining_work),
            bits(e.submitted_s),
            opt(e.placed_s),
            opt(e.finished_s),
            bits(e.profiling_s),
            bits(e.rate_factor),
            e.peak_cores,
        );
    }

    let placements = world.snapshot_placements();
    let _ = writeln!(out, "placements {}", placements.len());
    for p in &placements {
        let codec = match p.params.compression {
            Compression::None => "none",
            Compression::Lzo => "lzo",
            Compression::Gzip => "gzip",
        };
        let _ = write!(
            out,
            "{} {} {} {} {} {} {codec} {}",
            p.workload.0,
            u8::from(p.isolated),
            p.params.mappers_per_node,
            bits(p.params.heap_gb),
            p.params.block_size_mb,
            p.params.replication,
            p.nodes.len(),
        );
        for n in &p.nodes {
            let _ = write!(
                out,
                " {}:{}:{}:{}",
                n.server.0,
                n.resources.cores,
                bits(n.resources.memory_gb),
                bits(n.active_after),
            );
        }
        out.push('\n');
    }

    // Open QoS violation episodes: without them, a resumed run would
    // close episodes with different ticks/evidence than the
    // uninterrupted run and the journal streams would diverge. The
    // closed ledger is not stored — it is reconstructable from the
    // chunk stream's `qos_episode` events.
    let qos_open = world.qos().export_open();
    let _ = writeln!(out, "qos {}", qos_open.len());
    for (id, ep) in &qos_open {
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {} {}",
            id.0,
            bits(ep.start_s),
            ep.ticks,
            bits(ep.peak_depth),
            bits(ep.interference_sum),
            bits(ep.rate_dev_sum),
            bits(ep.util_sum),
            bits(ep.queue_wait_s),
        );
    }
    out.push_str("end\n");
    Ok(out)
}

/// Rebuilds a simulation from a snapshot.
///
/// `spec`, `manager`, and `config` must match the original run (the
/// tick and metrics interval are validated bitwise against the
/// snapshot; `config.noise` must be 0). `provider`, when given as
/// `(chunk_cap, store)`, is attached to the journal *before* the
/// stream checkpoint is restored — pass the same chunk directory the
/// snapshotted run wrote so the stream stays contiguous. `workload_for`
/// regenerates the workload for an id; it is called once per surviving
/// entry and once per queued arrival, and must return workloads
/// identical to the original run's (same generator, same seed).
///
/// # Errors
///
/// Fails with `InvalidData` on schema/config mismatch or a malformed
/// snapshot, and propagates placement-capacity failures (which indicate
/// a spec mismatch).
pub fn resume(
    spec: ClusterSpec,
    manager: Box<dyn Manager>,
    config: SimConfig,
    text: &str,
    provider: Option<(usize, Box<dyn ChunkProvider>)>,
    workload_for: &mut dyn FnMut(WorkloadId) -> Workload,
) -> io::Result<Simulation> {
    if config.noise > 0.0 {
        return Err(bad("resume requires a noise = 0 config".into()));
    }
    let mut lines = text.lines();
    let header = next_line(&mut lines, "header")?;
    let mut fields = header.split(' ');
    if fields.next() != Some(SNAPSHOT_SCHEMA) {
        return Err(bad(format!("bad snapshot schema in header: {header:?}")));
    }
    let mut field = |name: &str| -> io::Result<&str> {
        fields
            .next()
            .and_then(|f| f.strip_prefix(name))
            .and_then(|f| f.strip_prefix('='))
            .ok_or_else(|| bad(format!("missing header field {name}")))
    };
    let tick = parse_bits(field("tick")?)?;
    let interval = parse_bits(field("interval")?)?;
    if tick.to_bits() != config.tick_s.to_bits() {
        return Err(bad(format!(
            "config tick {} does not match snapshot tick {tick}",
            config.tick_s
        )));
    }
    if interval.to_bits() != config.metrics_interval_s.to_bits() {
        return Err(bad(format!(
            "config metrics interval {} does not match snapshot interval {interval}",
            config.metrics_interval_s
        )));
    }

    let clock = parse_bits(&one(keyed(&mut lines, "clock")?, "clock")?)?;
    let next_seq: u64 = parse_num(
        &one(keyed(&mut lines, "next_seq")?, "next_seq")?,
        "next_seq",
    )?;
    let [digest, retired] = two(keyed(&mut lines, "digest")?, "digest")?;
    let digest = u64::from_str_radix(&digest, 16).map_err(|_| bad("bad digest hex".into()))?;
    let retired: u64 = parse_num(&retired, "retired")?;
    let retention = match one(keyed(&mut lines, "retention")?, "retention")?.as_str() {
        "keep" => Retention::KeepAll,
        "drop" => Retention::DropCompleted,
        other => return Err(bad(format!("unknown retention {other:?}"))),
    };
    let [m_next, m_total] = two(keyed(&mut lines, "metrics")?, "metrics")?;
    let m_next: u64 = parse_num(&m_next, "metrics next index")?;
    let m_total: u64 = parse_num(&m_total, "metrics total")?;
    let [j_chunk, j_streamed, j_digest] = three(keyed(&mut lines, "journal")?, "journal")?;
    let j_chunk: u64 = parse_num(&j_chunk, "journal chunk")?;
    let j_streamed: u64 = parse_num(&j_streamed, "journal streamed")?;
    let j_digest =
        u64::from_str_radix(&j_digest, 16).map_err(|_| bad("bad journal digest hex".into()))?;

    let n_events: usize = parse_num(
        &one(keyed(&mut lines, "events")?, "events")?,
        "events count",
    )?;
    let mut arrivals = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let line = next_line(&mut lines, "event")?;
        let mut f = line.split(' ');
        let mut take = |what: &str| f.next().ok_or_else(|| bad(format!("missing {what}")));
        let time_s = parse_bits(take("event time")?)?;
        let seq: u64 = parse_num(take("event seq")?, "event seq")?;
        let id = WorkloadId(parse_num(take("event workload")?, "event workload")?);
        let workload = workload_for(id);
        if workload.id() != id {
            return Err(bad(format!(
                "workload_for({}) returned workload {}",
                id.0,
                workload.id().0
            )));
        }
        arrivals.push((time_s, seq, workload));
    }

    let n_entries: usize = parse_num(
        &one(keyed(&mut lines, "entries")?, "entries")?,
        "entries count",
    )?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let line = next_line(&mut lines, "entry")?;
        let mut f = line.split(' ');
        let mut take = |what: &str| f.next().ok_or_else(|| bad(format!("missing {what}")));
        let id = WorkloadId(parse_num(take("entry id")?, "entry id")?);
        let state = match take("entry state")? {
            "P" => JobState::Pending,
            "R" => JobState::Running,
            "C" => JobState::Completed,
            "K" => JobState::Killed,
            other => return Err(bad(format!("unknown entry state {other:?}"))),
        };
        let remaining_work = parse_bits(take("remaining")?)?;
        let submitted_s = parse_bits(take("submitted")?)?;
        let opt = |s: &str| -> io::Result<Option<f64>> {
            if s == "-" {
                Ok(None)
            } else {
                parse_bits(s).map(Some)
            }
        };
        let placed_s = opt(take("placed")?)?;
        let finished_s = opt(take("finished")?)?;
        let profiling_s = parse_bits(take("profiling")?)?;
        let rate_factor = parse_bits(take("rate")?)?;
        let peak_cores: u32 = parse_num(take("peak")?, "peak cores")?;
        let reserved = match take("reserved")? {
            "-" => None,
            s => {
                let (c, m) = s
                    .split_once(':')
                    .ok_or_else(|| bad(format!("bad reserved field {s:?}")))?;
                Some((parse_num(c, "reserved cores")?, parse_bits(m)?))
            }
        };
        let workload = workload_for(id);
        if workload.id() != id {
            return Err(bad(format!(
                "workload_for({}) returned workload {}",
                id.0,
                workload.id().0
            )));
        }
        entries.push(Entry {
            workload,
            state,
            remaining_work,
            submitted_s,
            placed_s,
            finished_s,
            profiling_s,
            rate_factor,
            phase_interference: None,
            offered_queries: 0.0,
            served_queries: 0.0,
            queries_meeting_qos: 0.0,
            windows_met: 0,
            windows_total: 0,
            util_sum: 0.0,
            peak_cores,
            last_obs: None,
            reserved,
        });
    }

    let n_placements: usize = parse_num(
        &one(keyed(&mut lines, "placements")?, "placements")?,
        "placements count",
    )?;
    let mut placements = Vec::with_capacity(n_placements);
    for _ in 0..n_placements {
        let line = next_line(&mut lines, "placement")?;
        let mut f = line.split(' ');
        let mut take = |what: &str| f.next().ok_or_else(|| bad(format!("missing {what}")));
        let id = WorkloadId(parse_num(take("placement id")?, "placement id")?);
        let isolated = parse_num::<u8>(take("isolated")?, "isolated")? != 0;
        let params = FrameworkParams {
            mappers_per_node: parse_num(take("mappers")?, "mappers")?,
            heap_gb: parse_bits(take("heap")?)?,
            block_size_mb: parse_num(take("block")?, "block size")?,
            replication: parse_num(take("replication")?, "replication")?,
            compression: match take("compression")? {
                "none" => Compression::None,
                "lzo" => Compression::Lzo,
                "gzip" => Compression::Gzip,
                other => return Err(bad(format!("unknown compression {other:?}"))),
            },
        };
        let n_nodes: usize = parse_num(take("node count")?, "node count")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let node = take("node")?;
            let parts: Vec<&str> = node.split(':').collect();
            if parts.len() != 4 {
                return Err(bad(format!("bad node field {node:?}")));
            }
            nodes.push(NodeAlloc {
                server: ServerId(parse_num(parts[0], "node server")?),
                resources: NodeResources::new(
                    parse_num(parts[1], "node cores")?,
                    parse_bits(parts[2])?,
                ),
                active_after: parse_bits(parts[3])?,
            });
        }
        let mut placement = Placement::new(id, nodes, params);
        placement.isolated = isolated;
        placements.push(placement);
    }

    let n_qos: usize = parse_num(&one(keyed(&mut lines, "qos")?, "qos")?, "qos count")?;
    let mut qos_open = Vec::with_capacity(n_qos);
    for _ in 0..n_qos {
        let line = next_line(&mut lines, "qos episode")?;
        let mut f = line.split(' ');
        let mut take = |what: &str| f.next().ok_or_else(|| bad(format!("missing {what}")));
        let id = WorkloadId(parse_num(take("qos workload")?, "qos workload")?);
        let start_s = parse_bits(take("qos start")?)?;
        let ticks: u64 = parse_num(take("qos ticks")?, "qos ticks")?;
        let peak_depth = parse_bits(take("qos peak")?)?;
        let interference_sum = parse_bits(take("qos interference")?)?;
        let rate_dev_sum = parse_bits(take("qos rate dev")?)?;
        let util_sum = parse_bits(take("qos util")?)?;
        let queue_wait_s = parse_bits(take("qos queue wait")?)?;
        qos_open.push((
            id,
            crate::qos::OpenEpisodeState {
                start_s,
                ticks,
                peak_depth,
                interference_sum,
                rate_dev_sum,
                util_sum,
                queue_wait_s,
            },
        ));
    }

    if next_line(&mut lines, "end")? != "end" {
        return Err(bad("snapshot missing end marker".into()));
    }

    let mut sim = Simulation::new(spec, manager, config);
    {
        let world = sim.world_mut();
        world.restore_clock(clock);
        world.set_retention(retention);
        world.restore_accounting(digest, retired);
        world.restore_metrics(m_next, m_total);
        for entry in entries {
            world.restore_entry(entry);
        }
        for placement in placements {
            world
                .restore_placement(placement)
                .map_err(|e| bad(format!("placement restore failed: {e:?}")))?;
        }
        for (id, episode) in qos_open {
            world.qos_mut().restore_open(id, episode);
        }
        let journal = world.journal_mut();
        if let Some((chunk_cap, store)) = provider {
            journal.attach_provider(chunk_cap, store);
        }
        journal.restore(j_chunk, j_streamed, j_digest);
    }
    sim.restore_queue(arrivals, next_seq);
    Ok(sim)
}

fn next_line<'a>(lines: &mut std::str::Lines<'a>, what: &str) -> io::Result<&'a str> {
    lines
        .next()
        .ok_or_else(|| bad(format!("snapshot truncated before {what}")))
}

fn keyed(lines: &mut std::str::Lines<'_>, key: &str) -> io::Result<Vec<String>> {
    let line = next_line(lines, key)?;
    let mut f = line.split(' ');
    if f.next() != Some(key) {
        return Err(bad(format!("expected {key:?} line, got {line:?}")));
    }
    Ok(f.map(str::to_string).collect())
}

fn one(fields: Vec<String>, what: &str) -> io::Result<String> {
    let [v] = <[String; 1]>::try_from(fields)
        .map_err(|_| bad(format!("{what} line needs exactly 1 field")))?;
    Ok(v)
}

fn two(fields: Vec<String>, what: &str) -> io::Result<[String; 2]> {
    <[String; 2]>::try_from(fields).map_err(|_| bad(format!("{what} line needs exactly 2 fields")))
}

fn three(fields: Vec<String>, what: &str) -> io::Result<[String; 3]> {
    <[String; 3]>::try_from(fields).map_err(|_| bad(format!("{what} line needs exactly 3 fields")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::FileChunks;
    use crate::world::World;
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{PlatformCatalog, Priority};
    use std::collections::HashMap;

    fn fifo() -> Box<dyn Manager> {
        Box::new(crate::managers::FifoGreedy::new(4, 4.0))
    }

    fn config() -> SimConfig {
        SimConfig {
            noise: 0.0,
            ..SimConfig::default()
        }
    }

    fn spec() -> ClusterSpec {
        ClusterSpec::uniform(PlatformCatalog::local(), 2)
    }

    fn jobs(n: usize) -> Vec<Workload> {
        let mut generator = Generator::new(PlatformCatalog::local(), 42);
        (0..n)
            .map(|i| generator.single_node_job(format!("j{i}"), 400.0, Priority::Guaranteed))
            .collect()
    }

    fn outcome(sim: &Simulation) -> (u64, Vec<crate::world::CompletionRecord>, u64, u64, u64) {
        (
            sim.world().completion_digest(),
            sim.world().completions(),
            sim.world().metrics().total_count(),
            sim.world().now().to_bits(),
            sim.world().journal().stream_digest(),
        )
    }

    /// The headline resumability guarantee: snapshot mid-run, rebuild
    /// from the text in a fresh process-equivalent, continue — every
    /// outcome (completion digest, records, metrics grid, clock,
    /// journal stream digest) matches the uninterrupted run bitwise.
    #[test]
    fn mid_run_snapshot_resume_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join(format!("quasar-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let arrivals = [0.0, 120.0, 650.0, 700.0, 1_500.0];

        // Reference: one uninterrupted run, chunk stream in memory.
        let mut a = Simulation::new(spec(), fifo(), config());
        a.world_mut()
            .journal_mut()
            .attach_provider(3, Box::new(crate::chunk::MemoryChunks::new()));
        for (w, at) in jobs(5).into_iter().zip(arrivals) {
            a.submit_at(w, at);
        }
        a.run_until(4_000.0);
        a.world_mut().journal_mut().seal_open_chunk();

        // Interrupted run: snapshot at t=600 with two arrivals queued.
        let mut b = Simulation::new(spec(), fifo(), config());
        b.world_mut()
            .journal_mut()
            .attach_provider(3, Box::new(FileChunks::open(&dir).unwrap()));
        for (w, at) in jobs(5).into_iter().zip(arrivals) {
            b.submit_at(w, at);
        }
        b.run_until(600.0);
        let text = snapshot(&mut b).unwrap();
        drop(b);

        // Resume from text + the chunk directory + regenerated jobs.
        let mut pool: HashMap<WorkloadId, Workload> =
            jobs(5).into_iter().map(|w| (w.id(), w)).collect();
        let mut c = resume(
            spec(),
            fifo(),
            config(),
            &text,
            Some((3, Box::new(FileChunks::open(&dir).unwrap()))),
            &mut |id| pool.remove(&id).expect("workload regenerated once"),
        )
        .unwrap();
        assert_eq!(c.world().now(), 600.0);
        c.run_until(4_000.0);
        c.world_mut().journal_mut().seal_open_chunk();

        assert_eq!(outcome(&a), outcome(&c));
        // The chunk stream on disk replays to the same digest the
        // resumed run carries live.
        let store = FileChunks::open(&dir).unwrap();
        assert_eq!(
            crate::chunk::replay_digest(&store).unwrap(),
            c.world().journal().stream_digest(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rejects_unserializable_state() {
        // Noise captures RNG state the snapshot cannot carry.
        let mut s = Simulation::new(spec(), fifo(), SimConfig::default());
        assert!(snapshot(&mut s).is_err(), "noise > 0 must be rejected");

        // Queued phase changes have no serial form.
        let mut s = Simulation::new(spec(), fifo(), config());
        let job = jobs(1).pop().unwrap();
        let id = job.id();
        s.submit_at(job, 0.0);
        s.schedule_phase_change(id, 50.0, crate::sim::PhaseChange::RateFactor(0.5));
        assert!(snapshot(&mut s).is_err(), "queued phase must be rejected");
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let mut s = Simulation::new(spec(), fifo(), config());
        let text = snapshot(&mut s).unwrap();
        let other = SimConfig {
            tick_s: 1.0,
            ..config()
        };
        let err = resume(spec(), fifo(), other, &text, None, &mut |_| unreachable!());
        assert!(err.is_err(), "tick mismatch must be rejected");
    }
}
