//! Sharded cluster state: per-worker cells behind a narrow seam.
//!
//! The paper argues (§4.4, §6) that a cluster manager must keep admitting
//! at datacenter scale. This module supplies the cluster-side half of
//! that story: a [`Cell`] owns a disjoint slice of the servers (carved by
//! [`ClusterSpec::partition`]), its own [`World`], and its own manager,
//! so cells can run their admission rounds on separate worker threads
//! without sharing any mutable simulation state. The only cross-cell
//! structure is the [`Seam`] — a `Arc<Mutex<_>>`-guarded slot table of
//! per-cell [`CellReport`]s, written once per round by each cell and read
//! serially by the coordinator between rounds for routing and rebalance
//! decisions.
//!
//! Determinism: every cell's world is seeded from `base_seed` mixed with
//! the cell id, routing is least-loaded with lowest-cell-id tie-break over
//! a serial arrival stream, and [`rebalance`] runs between rounds on the
//! coordinator thread. Nothing observable depends on which OS thread ran
//! which cell, so reports stay byte-identical across `--threads` *and*
//! the parallel/serial boundary. The driver that actually fans cells out
//! lives in `quasar_core` (which depends on this crate, not vice versa).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

use quasar_obs::registry::{Counter, Gauge, Histogram, Registry};
use quasar_workloads::{Workload, WorkloadId};

use crate::cluster::{ClusterSpec, ClusterState};
use crate::managers::Manager;
use crate::sim::SimConfig;
use crate::world::{JobState, World};

/// Registry handles for the logical shard metrics
/// (`quasar.cluster.shard.*`). These are driven by deterministic routing
/// and admission, so they survive `Snapshot::deterministic()`; only the
/// `quasar.cluster.shard.wall.*` family (recorded by the core driver) is
/// scheduling-dependent.
struct ShardMetrics {
    admitted: Counter,
    rebalanced: Counter,
    queue_depth_max: Gauge,
    occupancy_pct: Histogram,
}

fn shard_metrics() -> &'static ShardMetrics {
    static METRICS: OnceLock<ShardMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        ShardMetrics {
            admitted: reg.counter("quasar.cluster.shard.admitted"),
            rebalanced: reg.counter("quasar.cluster.shard.rebalanced"),
            queue_depth_max: reg.gauge("quasar.cluster.shard.queue_depth_max"),
            occupancy_pct: reg.histogram(
                "quasar.cluster.shard.occupancy_pct",
                &[10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0],
            ),
        }
    })
}

/// SplitMix64-style finalizer mixing the base seed with a cell id, so
/// sibling cells never share noise streams. (A local copy: `quasar_core`
/// depends on this crate, so `par::derive_seed` is out of reach here.)
fn mix_seed(base: u64, cell: u64) -> u64 {
    let mut z = base ^ cell.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a cell publishes into the [`Seam`] at the end of each round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellReport {
    /// Rounds this cell has run.
    pub round: u64,
    /// Jobs still waiting: queued in the inbox plus pending in the world.
    pub backlog: usize,
    /// Free cores after the round.
    pub free_cores: u32,
    /// Cumulative jobs admitted (submitted into the cell's world).
    pub admitted: u64,
}

/// The narrow shared seam between cells: one report slot per cell.
///
/// Cells only ever write their own slot (keyed by cell id), so the
/// contents after a round are independent of which thread finished first;
/// the coordinator reads the whole table serially between rounds.
#[derive(Debug)]
pub struct Seam {
    slots: Vec<CellReport>,
}

impl Seam {
    /// A shared seam with `cells` empty slots.
    pub fn shared(cells: usize) -> Arc<Mutex<Seam>> {
        Arc::new(Mutex::new(Seam {
            slots: vec![CellReport::default(); cells],
        }))
    }

    /// The per-cell report slots, indexed by cell id.
    pub fn slots(&self) -> &[CellReport] {
        &self.slots
    }
}

/// One shard: a disjoint slice of the cluster with its own world, its own
/// manager, and a batched admission inbox.
///
/// Arrivals land in the inbox via [`Cell::enqueue`] (routed by the
/// coordinator); [`Cell::run_round`] drains at most `batch_cap` of them
/// into the world, then ticks physics to the round horizon. Jobs still in
/// the inbox have not been seen by this cell's world or manager, which is
/// what makes them eligible for cross-cell [`rebalance`].
pub struct Cell {
    id: usize,
    world: World,
    manager: Box<dyn Manager + Send>,
    inbox: VecDeque<Workload>,
    batch_cap: usize,
    admitted: u64,
    round: u64,
    /// World-side pending count as of the last round, so backlog
    /// estimates between rounds don't need to touch the world.
    last_pending: usize,
    seam: Arc<Mutex<Seam>>,
}

impl Cell {
    /// Builds cell `id` over `spec` (one part of a
    /// [`ClusterSpec::partition`]). The world's noise seed is derived
    /// from `config.seed` and the cell id.
    ///
    /// # Panics
    ///
    /// Panics if `batch_cap` is zero (a cell that can never admit) or the
    /// tick is not positive.
    pub fn new(
        id: usize,
        spec: ClusterSpec,
        manager: Box<dyn Manager + Send>,
        config: SimConfig,
        batch_cap: usize,
        seam: Arc<Mutex<Seam>>,
    ) -> Cell {
        assert!(batch_cap > 0, "batch cap must be positive");
        assert!(config.tick_s > 0.0, "tick must be positive");
        let world = World::new(
            ClusterState::new(spec),
            config.tick_s,
            config.noise,
            config.metrics_interval_s,
            mix_seed(config.seed, id as u64),
        );
        Cell {
            id,
            world,
            manager,
            inbox: VecDeque::new(),
            batch_cap,
            admitted: 0,
            round: 0,
            last_pending: 0,
            seam,
        }
    }

    /// This cell's id (its slot index in the seam).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The cell's world, for inspection and result extraction.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access, for drivers that finalize a run (close open
    /// QoS episodes, seal journal chunks) after the last round.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Jobs queued in the inbox, not yet admitted.
    pub fn inbox_depth(&self) -> usize {
        self.inbox.len()
    }

    /// Cumulative jobs admitted into the world.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Inbox depth plus the world-side pending count from the last round
    /// — the load signal used by [`route`] and [`rebalance`]. Cheap and
    /// lock-free so the coordinator can call it per arrival.
    pub fn backlog_estimate(&self) -> usize {
        self.inbox.len() + self.last_pending
    }

    /// Queues an arrival for a later admission round.
    pub fn enqueue(&mut self, workload: Workload) {
        self.inbox.push_back(workload);
    }

    /// Runs one admission round: drain at most `batch_cap` inbox jobs
    /// into the world (arrival callbacks fire immediately; placement is
    /// the manager's business, typically on its batched tick), then tick
    /// physics to `t_end_s` by integer tick index, delivering completion
    /// and tick callbacks. Publishes this cell's [`CellReport`] into the
    /// seam and returns a copy.
    pub fn run_round(&mut self, t_end_s: f64) -> CellReport {
        let batch = self.inbox.len().min(self.batch_cap);
        for _ in 0..batch {
            let workload = self.inbox.pop_front().expect("len checked");
            let id = workload.id();
            self.world.submit(workload);
            self.manager.on_arrival(&mut self.world, id);
        }
        self.admitted += batch as u64;
        shard_metrics().admitted.add(batch as u64);

        // The shared tick driver: integer-index stepping, idle
        // fast-forward (when this cell's manager permits it), completion
        // retention — one loop for cells and standalone simulations.
        crate::sim::drive_ticks(&mut self.world, self.manager.as_mut(), t_end_s);

        self.round += 1;
        self.last_pending = self.world.count_in_state(JobState::Pending);
        let total = self.world.total_cores();
        let used = self.world.used_cores();
        if total > 0 {
            shard_metrics()
                .occupancy_pct
                .record(f64::from(used) / f64::from(total) * 100.0);
        }
        let report = CellReport {
            round: self.round,
            backlog: self.backlog_estimate(),
            free_cores: total - used,
            admitted: self.admitted,
        };
        shard_metrics()
            .queue_depth_max
            .set_max(report.backlog as u64);
        self.seam.lock().expect("seam poisoned").slots[self.id] = report.clone();
        report
    }

    /// `(workload id, placed)` for every job this cell has admitted,
    /// where `placed` means the job got (or finished with) an allocation.
    pub fn placements(&self) -> Vec<(WorkloadId, bool)> {
        let mut out: Vec<(WorkloadId, bool)> = self
            .world
            .workload_ids()
            .into_iter()
            .map(|id| (id, self.world.state(id) != JobState::Pending))
            .collect();
        out.sort_unstable();
        out
    }
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell")
            .field("id", &self.id)
            .field("inbox", &self.inbox.len())
            .field("admitted", &self.admitted)
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

/// Routes each arrival to the least-loaded cell by
/// [`Cell::backlog_estimate`], lowest cell id winning ties. Runs on the
/// coordinator thread between rounds: the jobs arrive in submission
/// order, so the assignment is a pure function of the arrival stream and
/// prior round reports — independent of worker-thread scheduling.
pub fn route(cells: &mut [Cell], jobs: impl IntoIterator<Item = Workload>) -> usize {
    let mut routed = 0;
    for job in jobs {
        let target = cells
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.backlog_estimate())
            .map(|(i, _)| i)
            .expect("at least one cell");
        cells[target].enqueue(job);
        routed += 1;
    }
    routed
}

/// Cross-shard rebalance: migrates *queued, not-yet-admitted* jobs from
/// the deepest backlog to the shallowest until the spread is within
/// `threshold`. Only inbox jobs move — once a job has been submitted into
/// a cell's world, that world owns its entry and its history, so admitted
/// jobs never migrate. Runs serially between rounds, outside the
/// admission fast path (see DESIGN.md §5). Returns the number of jobs
/// moved.
pub fn rebalance(cells: &mut [Cell], threshold: usize) -> u64 {
    let mut moved = 0u64;
    loop {
        let (mut hi, mut lo) = (0usize, 0usize);
        for (i, cell) in cells.iter().enumerate() {
            if cell.backlog_estimate() > cells[hi].backlog_estimate() {
                hi = i;
            }
            if cell.backlog_estimate() < cells[lo].backlog_estimate() {
                lo = i;
            }
        }
        let (deep, shallow) = (cells[hi].backlog_estimate(), cells[lo].backlog_estimate());
        if hi == lo || deep - shallow <= threshold {
            break;
        }
        // Halve the spread, bounded by what is still migratable.
        let want = (deep - shallow) / 2;
        let can = cells[hi].inbox.len().min(want);
        if can == 0 {
            break;
        }
        for _ in 0..can {
            let job = cells[hi].inbox.pop_back().expect("len checked");
            cells[lo].inbox.push_back(job);
        }
        moved += can as u64;
    }
    shard_metrics().rebalanced.add(moved);
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::NullManager;
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{PlatformCatalog, Priority};

    fn jobs(n: usize, seed: u64) -> Vec<Workload> {
        let mut generator = Generator::new(PlatformCatalog::local(), seed);
        (0..n)
            .map(|i| generator.single_node_job(format!("j{i}"), 120.0, Priority::Guaranteed))
            .collect()
    }

    fn cells(n: usize, batch_cap: usize) -> Vec<Cell> {
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 2);
        let seam = Seam::shared(n);
        spec.partition(n)
            .into_iter()
            .enumerate()
            .map(|(id, part)| {
                Cell::new(
                    id,
                    part,
                    Box::new(NullManager),
                    SimConfig {
                        noise: 0.0,
                        ..SimConfig::default()
                    },
                    batch_cap,
                    seam.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn route_is_least_loaded_with_low_id_tie_break() {
        let mut cells = cells(3, 16);
        assert_eq!(route(&mut cells, jobs(7, 1)), 7);
        // 7 jobs over 3 empty cells: round-robin-like fill 3/2/2 with the
        // first cell winning every tie.
        let depths: Vec<usize> = cells.iter().map(Cell::inbox_depth).collect();
        assert_eq!(depths, vec![3, 2, 2]);
    }

    #[test]
    fn run_round_admits_at_most_batch_cap_and_lands_on_horizon() {
        let mut cells = cells(1, 4);
        route(&mut cells, jobs(10, 2));
        let report = cells[0].run_round(30.0);
        assert_eq!(cells[0].admitted(), 4, "cap limits the batch");
        assert_eq!(cells[0].inbox_depth(), 6);
        // NullManager places nothing: the whole batch is world-pending.
        assert_eq!(report.backlog, 10);
        assert_eq!(report.round, 1);
        assert_eq!(cells[0].world().now(), 30.0);
        // The report landed in this cell's seam slot.
        let seam = cells[0].seam.clone();
        assert_eq!(seam.lock().unwrap().slots()[0], report);
    }

    #[test]
    fn rebalance_moves_inbox_jobs_from_deep_to_shallow() {
        let mut cells = cells(2, 16);
        for job in jobs(10, 3) {
            cells[0].enqueue(job);
        }
        let moved = rebalance(&mut cells, 2);
        assert_eq!(moved, 5, "halve the 10-0 spread");
        assert_eq!(cells[0].inbox_depth(), 5);
        assert_eq!(cells[1].inbox_depth(), 5);
        // Within threshold now: a second call is a no-op.
        assert_eq!(rebalance(&mut cells, 2), 0);
    }

    #[test]
    fn rebalance_never_migrates_admitted_jobs() {
        let mut cells = cells(2, 16);
        for job in jobs(6, 4) {
            cells[0].enqueue(job);
        }
        // Admit everything in cell 0: backlog is world-pending only.
        cells[0].run_round(5.0);
        assert_eq!(cells[0].inbox_depth(), 0);
        assert_eq!(
            rebalance(&mut cells, 0),
            0,
            "admitted jobs are owned by their world and must not move"
        );
    }

    #[test]
    fn sibling_cells_draw_distinct_noise_seeds() {
        assert_ne!(mix_seed(0xC10D, 0), mix_seed(0xC10D, 1));
        assert_ne!(mix_seed(0xC10D, 1), mix_seed(0xC10D, 2));
    }
}
