//! Task-level execution of framework jobs.
//!
//! The main simulator advances batch jobs as fluids (work units per
//! second), which is exact for throughput but hides per-task dynamics.
//! This module provides the task-level view the paper's §4.3 needs: a job
//! is split into map tasks that run in waves over the allocated task
//! slots, individual tasks deviate from the fluid rate (data skew, and
//! injected stragglers from interference or machine instability), and a
//! `TaskTracker`-style API exposes per-task progress so straggler
//! detectors can act mid-wave.
//!
//! # Examples
//!
//! ```
//! use quasar_cluster::tasks::{TaskExecution, TaskSpec};
//!
//! let spec = TaskSpec {
//!     tasks: 64,
//!     slots: 16,
//!     mean_task_s: 30.0,
//!     skew: 0.2,
//!     straggler_fraction: 0.05,
//!     straggler_slowdown: 3.0,
//!     seed: 7,
//! };
//! let mut exec = TaskExecution::new(spec);
//! exec.advance(10.0);
//! assert!(exec.job_progress() > 0.0);
//! assert!(!exec.is_complete());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a task-level job execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Total map tasks (dataset / block size).
    pub tasks: usize,
    /// Concurrent task slots (nodes × mappers per node).
    pub slots: usize,
    /// Mean task duration at the current allocation, in seconds.
    pub mean_task_s: f64,
    /// Relative duration spread from data skew (0 = uniform).
    pub skew: f64,
    /// Fraction of tasks that straggle.
    pub straggler_fraction: f64,
    /// Slowdown factor of straggling tasks (>1).
    pub straggler_slowdown: f64,
    /// RNG seed for per-task variation.
    pub seed: u64,
}

/// State of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskState {
    /// Duration this task needs, in seconds.
    pub duration_s: f64,
    /// Seconds of execution received so far.
    pub elapsed_s: f64,
    /// Time the task was dispatched, if it has started.
    pub started_at_s: Option<f64>,
    /// Whether the task was relaunched by straggler mitigation.
    pub relaunched: bool,
    /// Whether the task is a (ground-truth) straggler.
    pub straggler: bool,
}

impl TaskState {
    /// Progress in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.elapsed_s / self.duration_s).clamp(0.0, 1.0)
    }

    /// Whether the task has finished.
    pub fn is_done(&self) -> bool {
        self.elapsed_s >= self.duration_s
    }
}

/// A wave-based task execution: tasks are dispatched onto slots FIFO,
/// run to completion, and free their slot for the next task.
#[derive(Debug, Clone)]
pub struct TaskExecution {
    spec: TaskSpec,
    tasks: Vec<TaskState>,
    running: Vec<usize>,
    next_task: usize,
    now_s: f64,
}

impl TaskExecution {
    /// Builds the execution, sampling per-task durations.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` or `slots` is zero, or `mean_task_s` is not
    /// positive.
    pub fn new(spec: TaskSpec) -> TaskExecution {
        assert!(spec.tasks > 0, "need at least one task");
        assert!(spec.slots > 0, "need at least one slot");
        assert!(spec.mean_task_s > 0.0, "tasks need positive duration");
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let tasks = (0..spec.tasks)
            .map(|_| {
                let skewed =
                    spec.mean_task_s * (1.0 + spec.skew * rng.random_range(-1.0..1.0_f64)).max(0.1);
                let straggler = rng.random_range(0.0..1.0_f64) < spec.straggler_fraction;
                let duration = if straggler {
                    skewed * spec.straggler_slowdown.max(1.0)
                } else {
                    skewed
                };
                TaskState {
                    duration_s: duration,
                    elapsed_s: 0.0,
                    started_at_s: None,
                    relaunched: false,
                    straggler,
                }
            })
            .collect();
        let mut exec = TaskExecution {
            spec,
            tasks,
            running: Vec::new(),
            next_task: 0,
            now_s: 0.0,
        };
        exec.dispatch();
        exec
    }

    fn dispatch(&mut self) {
        while self.running.len() < self.spec.slots && self.next_task < self.tasks.len() {
            self.tasks[self.next_task].started_at_s = Some(self.now_s);
            self.running.push(self.next_task);
            self.next_task += 1;
        }
    }

    /// Advances execution by `dt` seconds.
    pub fn advance(&mut self, dt: f64) {
        self.now_s += dt;
        for &idx in &self.running {
            self.tasks[idx].elapsed_s += dt;
        }
        self.running.retain(|&idx| !self.tasks[idx].is_done());
        self.dispatch();
    }

    /// Current simulation time within this execution.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// All task states (the `TaskTracker` view).
    pub fn tasks(&self) -> &[TaskState] {
        &self.tasks
    }

    /// Indices of currently running tasks.
    pub fn running(&self) -> &[usize] {
        self.running.as_slice()
    }

    /// Mean progress across all tasks (the job progress the framework
    /// reports).
    pub fn job_progress(&self) -> f64 {
        self.tasks.iter().map(TaskState::progress).sum::<f64>() / self.tasks.len() as f64
    }

    /// Whether every task has finished.
    pub fn is_complete(&self) -> bool {
        self.running.is_empty() && self.next_task >= self.tasks.len()
    }

    /// Median progress *rate* (fraction/second) among running tasks that
    /// have run for at least `min_obs_s`; `None` when too few samples.
    pub fn median_running_rate(&self, min_obs_s: f64) -> Option<f64> {
        let mut rates: Vec<f64> = self
            .running
            .iter()
            .map(|&i| &self.tasks[i])
            .filter(|t| t.elapsed_s >= min_obs_s)
            .map(|t| 1.0 / t.duration_s)
            .collect();
        if rates.len() < 3 {
            return None;
        }
        rates.sort_by(f64::total_cmp);
        Some(rates[rates.len() / 2])
    }

    /// Indices of running tasks whose progress rate is below
    /// `fraction` of the median rate (the paper's "at least 50% slower
    /// than the median" check against the TaskTracker API).
    pub fn underperforming(&self, fraction: f64, min_obs_s: f64) -> Vec<usize> {
        let Some(median) = self.median_running_rate(min_obs_s) else {
            return Vec::new();
        };
        self.running
            .iter()
            .copied()
            .filter(|&i| {
                let t = &self.tasks[i];
                t.elapsed_s >= min_obs_s && (1.0 / t.duration_s) <= median * fraction
            })
            .collect()
    }

    /// Relaunches a task on a healthy slot (straggler mitigation): its
    /// remaining work restarts at the nominal (non-straggler) duration.
    ///
    /// Returns false if the task is not running.
    pub fn relaunch(&mut self, idx: usize) -> bool {
        if !self.running.contains(&idx) {
            return false;
        }
        let mean = self.spec.mean_task_s;
        let task = &mut self.tasks[idx];
        // The relaunched copy starts fresh at nominal speed.
        task.duration_s = mean;
        task.elapsed_s = 0.0;
        task.started_at_s = Some(self.now_s);
        task.relaunched = true;
        task.straggler = false;
        true
    }

    /// Total wall-clock this execution will take if run to completion
    /// with no further intervention (simulated on a clone).
    pub fn completion_time(&self) -> f64 {
        let mut clone = self.clone();
        let step = self.spec.mean_task_s / 20.0;
        let mut guard = 0;
        while !clone.is_complete() {
            clone.advance(step);
            guard += 1;
            assert!(guard < 4_000_000, "task execution failed to terminate");
        }
        clone.now_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TaskSpec {
        TaskSpec {
            tasks: 64,
            slots: 16,
            mean_task_s: 30.0,
            skew: 0.2,
            straggler_fraction: 0.0,
            straggler_slowdown: 1.0,
            seed: 1,
        }
    }

    #[test]
    fn runs_in_waves() {
        let mut exec = TaskExecution::new(spec());
        assert_eq!(exec.running().len(), 16);
        // 64 tasks / 16 slots = 4 waves of ~30s.
        let total = exec.completion_time();
        assert!((90.0..200.0).contains(&total), "completion {total:.0}s");
        while !exec.is_complete() {
            exec.advance(2.0);
        }
        assert!((exec.now_s() - total).abs() <= 2.0 + 1e-9);
        assert!((exec.job_progress() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stragglers_extend_the_job() {
        let clean = TaskExecution::new(spec()).completion_time();
        let slow = TaskExecution::new(TaskSpec {
            straggler_fraction: 0.08,
            straggler_slowdown: 4.0,
            ..spec()
        })
        .completion_time();
        assert!(
            slow > clean * 1.2,
            "stragglers must dominate the tail: {clean:.0} vs {slow:.0}"
        );
    }

    #[test]
    fn underperforming_flags_only_stragglers() {
        let mut exec = TaskExecution::new(TaskSpec {
            straggler_fraction: 0.10,
            straggler_slowdown: 3.0,
            seed: 5,
            ..spec()
        });
        exec.advance(10.0);
        let flagged = exec.underperforming(0.5, 5.0);
        assert!(!flagged.is_empty(), "slow tasks must be visible mid-wave");
        for idx in flagged {
            assert!(
                exec.tasks()[idx].straggler,
                "task {idx} flagged but healthy"
            );
        }
    }

    #[test]
    fn relaunch_recovers_the_tail() {
        let make = || {
            TaskExecution::new(TaskSpec {
                straggler_fraction: 0.08,
                straggler_slowdown: 5.0,
                seed: 9,
                ..spec()
            })
        };
        let unmitigated = make().completion_time();
        let mut mitigated = make();
        // Detect-and-relaunch loop every 5 seconds.
        while !mitigated.is_complete() {
            mitigated.advance(5.0);
            for idx in mitigated.underperforming(0.5, 5.0) {
                mitigated.relaunch(idx);
            }
        }
        assert!(
            mitigated.now_s() < unmitigated,
            "mitigation must shorten the job: {unmitigated:.0} -> {:.0}",
            mitigated.now_s()
        );
    }

    #[test]
    fn progress_is_monotone() {
        let mut exec = TaskExecution::new(spec());
        let mut last = 0.0;
        for _ in 0..50 {
            exec.advance(3.0);
            let p = exec.job_progress();
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        TaskExecution::new(TaskSpec { slots: 0, ..spec() });
    }
}
