//! Discrete-event cluster simulator for the Quasar reproduction.
//!
//! The paper evaluates on a 40-server local cluster and 200 dedicated EC2
//! servers; this crate is the simulated substitute. It models:
//!
//! * heterogeneous [`Server`]s built from a
//!   [`quasar_workloads::PlatformCatalog`],
//! * [`Placement`]s of workloads onto servers with per-node resources and
//!   activation delays (profiling and microshard-migration latency),
//! * ground-truth physics — batch progress, service latency, interference
//!   pressure between co-located workloads — driven on a fixed tick,
//! * the *measurement boundary*: managers never see ground truth, only
//!   noisy [`Observation`]s, sandboxed [`World::profile_config`] runs, and
//!   microbenchmark probes, mirroring how the real Quasar profiles real
//!   applications,
//! * [`MetricsRecorder`] — utilization heatmaps and aggregate
//!   used-vs-reserved series for the paper's figures, and
//! * the [`Manager`] trait implemented by Quasar and by every baseline,
//!   and a task-level execution view ([`tasks`]) for straggler studies.
//!
//! # Example
//!
//! ```
//! use quasar_cluster::{ClusterSpec, Simulation, SimConfig, managers::NullManager};
//! use quasar_workloads::PlatformCatalog;
//!
//! let spec = ClusterSpec::uniform(PlatformCatalog::local(), 4);
//! let mut sim = Simulation::new(spec, Box::new(NullManager), SimConfig::default());
//! sim.run_until(60.0);
//! assert_eq!(sim.world().now(), 60.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
mod cluster;
pub mod journal;
pub mod managers;
mod metrics;
mod observe;
mod placement;
mod profile;
pub mod qos;
mod server;
pub mod shard;
mod sim;
pub mod snapshot;
pub mod tasks;
mod world;

pub use chunk::{ChunkProvider, FileChunks, MemoryChunks, SealedChunk};
pub use cluster::{ClusterSpec, ClusterState, PlaceError};
pub use journal::{Journal, JournalEvent};
pub use managers::{FifoGreedy, Manager};
pub use metrics::{HeatmapSample, MetricsRecorder, UtilizationSummary};
pub use observe::Observation;
pub use placement::{NodeAlloc, Placement};
pub use profile::{ProfileConfig, ProfileResult};
pub use qos::{
    EpisodeRecord, FlightEntry, FlightRecorder, Incident, QosCause, QosEvidence, SloConfig,
    SloTracker,
};
pub use server::{Server, ServerId};
pub use shard::{Cell, CellReport, Seam};
pub use sim::{PhaseChange, SimConfig, Simulation};
pub use world::{CompletionRecord, JobState, QosRecord, Retention, World};
