//! A decision journal: every mutating manager action on the [`crate::World`]
//! is recorded with its timestamp, so experiments and operators can audit
//! *why* the cluster looks the way it does — placements, evictions,
//! resizes, scale-outs, isolation flips.
//!
//! # Examples
//!
//! ```
//! use quasar_cluster::journal::{Journal, JournalEvent};
//!
//! let mut journal = Journal::new(256);
//! journal.record(12.5, JournalEvent::Evicted {
//!     workload: quasar_workloads::WorkloadId(3),
//!     requeued: true,
//! });
//! assert_eq!(journal.len(), 1);
//! assert!(journal.render().contains("evicted"));
//! ```

use std::collections::VecDeque;
use std::fmt;

use quasar_workloads::{NodeResources, WorkloadId};

use crate::server::ServerId;

/// One recorded manager action.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A placement was committed.
    Placed {
        /// Workload placed.
        workload: WorkloadId,
        /// Number of nodes in the placement.
        nodes: usize,
        /// Total cores committed.
        cores: u32,
        /// Activation delay charged (profiling), in seconds.
        delay_s: f64,
    },
    /// A workload was evicted.
    Evicted {
        /// Workload evicted.
        workload: WorkloadId,
        /// Whether it was requeued (vs killed).
        requeued: bool,
    },
    /// A node was added to a placement (scale-out).
    NodeAdded {
        /// Workload grown.
        workload: WorkloadId,
        /// Hosting server.
        server: ServerId,
        /// Slice added.
        resources: NodeResources,
    },
    /// A node was removed from a placement (reclaim).
    NodeRemoved {
        /// Workload shrunk.
        workload: WorkloadId,
        /// Server released.
        server: ServerId,
    },
    /// A slice was resized in place (scale-up/down).
    NodeResized {
        /// Workload resized.
        workload: WorkloadId,
        /// Hosting server.
        server: ServerId,
        /// New slice size.
        resources: NodeResources,
    },
    /// Hardware partitioning was toggled.
    IsolationSet {
        /// Workload affected.
        workload: WorkloadId,
        /// New isolation state.
        isolated: bool,
    },
    /// A batch workload completed.
    Completed {
        /// Workload that finished.
        workload: WorkloadId,
    },
}

impl fmt::Display for JournalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalEvent::Placed {
                workload,
                nodes,
                cores,
                delay_s,
            } => write!(
                f,
                "{workload} placed on {nodes} nodes ({cores} cores, +{delay_s:.0}s delay)"
            ),
            JournalEvent::Evicted { workload, requeued } => {
                if *requeued {
                    write!(f, "{workload} evicted (requeued)")
                } else {
                    write!(f, "{workload} evicted (killed)")
                }
            }
            JournalEvent::NodeAdded {
                workload,
                server,
                resources,
            } => write!(
                f,
                "{workload} scaled out to {server} ({} cores, {:.0}GB)",
                resources.cores, resources.memory_gb
            ),
            JournalEvent::NodeRemoved { workload, server } => {
                write!(f, "{workload} released {server}")
            }
            JournalEvent::NodeResized {
                workload,
                server,
                resources,
            } => write!(
                f,
                "{workload} resized on {server} to {} cores, {:.0}GB",
                resources.cores, resources.memory_gb
            ),
            JournalEvent::IsolationSet { workload, isolated } => {
                if *isolated {
                    write!(f, "{workload} partitioning enabled")
                } else {
                    write!(f, "{workload} partitioning disabled")
                }
            }
            JournalEvent::Completed { workload } => write!(f, "{workload} completed"),
        }
    }
}

/// A bounded ring of timestamped [`JournalEvent`]s.
#[derive(Debug, Clone)]
pub struct Journal {
    capacity: usize,
    entries: VecDeque<(f64, JournalEvent)>,
    dropped: usize,
}

impl Journal {
    /// A journal keeping at most `capacity` recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Journal {
        assert!(capacity > 0, "journal capacity must be positive");
        Journal {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Appends an event at simulation time `at_s`.
    pub fn record(&mut self, at_s: f64, event: JournalEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at_s, event));
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Iterates over `(time, event)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, JournalEvent)> {
        self.entries.iter()
    }

    /// Events affecting one workload, oldest first.
    pub fn for_workload(&self, id: WorkloadId) -> Vec<&(f64, JournalEvent)> {
        self.entries
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    JournalEvent::Placed { workload, .. }
                    | JournalEvent::Evicted { workload, .. }
                    | JournalEvent::NodeAdded { workload, .. }
                    | JournalEvent::NodeRemoved { workload, .. }
                    | JournalEvent::NodeResized { workload, .. }
                    | JournalEvent::IsolationSet { workload, .. }
                    | JournalEvent::Completed { workload }
                    if *workload == id
                )
            })
            .collect()
    }

    /// Renders the journal as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier events dropped ...", self.dropped);
        }
        for (t, e) in &self.entries {
            let _ = writeln!(out, "[{t:>9.1}s] {e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placed(w: u64) -> JournalEvent {
        JournalEvent::Placed {
            workload: WorkloadId(w),
            nodes: 2,
            cores: 16,
            delay_s: 30.0,
        }
    }

    #[test]
    fn records_in_order() {
        let mut j = Journal::new(8);
        j.record(1.0, placed(1));
        j.record(
            2.0,
            JournalEvent::Completed {
                workload: WorkloadId(1),
            },
        );
        let times: Vec<f64> = j.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![1.0, 2.0]);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let mut j = Journal::new(2);
        j.record(1.0, placed(1));
        j.record(2.0, placed(2));
        j.record(3.0, placed(3));
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 1);
        assert_eq!(j.iter().next().unwrap().0, 2.0);
        assert!(j.render().contains("1 earlier events dropped"));
    }

    #[test]
    fn per_workload_filter() {
        let mut j = Journal::new(8);
        j.record(1.0, placed(1));
        j.record(2.0, placed(2));
        j.record(
            3.0,
            JournalEvent::Evicted {
                workload: WorkloadId(1),
                requeued: false,
            },
        );
        assert_eq!(j.for_workload(WorkloadId(1)).len(), 2);
        assert_eq!(j.for_workload(WorkloadId(2)).len(), 1);
        assert_eq!(j.for_workload(WorkloadId(9)).len(), 0);
    }

    #[test]
    fn every_event_renders_nonempty() {
        let events = [
            placed(1),
            JournalEvent::Evicted {
                workload: WorkloadId(1),
                requeued: true,
            },
            JournalEvent::NodeAdded {
                workload: WorkloadId(1),
                server: ServerId(2),
                resources: NodeResources::new(4, 8.0),
            },
            JournalEvent::NodeRemoved {
                workload: WorkloadId(1),
                server: ServerId(2),
            },
            JournalEvent::NodeResized {
                workload: WorkloadId(1),
                server: ServerId(2),
                resources: NodeResources::new(8, 16.0),
            },
            JournalEvent::IsolationSet {
                workload: WorkloadId(1),
                isolated: true,
            },
            JournalEvent::Completed {
                workload: WorkloadId(1),
            },
        ];
        for e in events {
            assert!(!e.to_string().is_empty());
        }
    }
}
