//! A decision journal: every mutating manager action on the [`crate::World`]
//! is recorded with its timestamp, so experiments and operators can audit
//! *why* the cluster looks the way it does — placements, evictions,
//! resizes, scale-outs, isolation flips.
//!
//! # Examples
//!
//! ```
//! use quasar_cluster::journal::{Journal, JournalEvent};
//!
//! let mut journal = Journal::new(256);
//! journal.record(12.5, JournalEvent::Evicted {
//!     workload: quasar_workloads::WorkloadId(3),
//!     requeued: true,
//! });
//! assert_eq!(journal.len(), 1);
//! assert!(journal.render().contains("evicted"));
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

use quasar_obs::registry::{Counter, Registry};
use quasar_workloads::{NodeResources, WorkloadId};

use crate::chunk::{self, ChunkProvider, SealedChunk};
use crate::qos::QosCause;
use crate::server::ServerId;

/// Registry handles for the journal counters: one total plus one per
/// event kind (`quasar.cluster.journal.<kind>`).
struct JournalMetrics {
    total: Counter,
    per_kind: [(&'static str, Counter); 9],
    chunk_flushes: Counter,
    chunk_events: Counter,
}

fn journal_metrics() -> &'static JournalMetrics {
    static METRICS: OnceLock<JournalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        let kind = |k: &'static str| (k, reg.counter(&format!("quasar.cluster.journal.{k}")));
        JournalMetrics {
            total: reg.counter("quasar.cluster.journal.events"),
            per_kind: [
                kind("placed"),
                kind("evicted"),
                kind("node_added"),
                kind("node_removed"),
                kind("node_resized"),
                kind("params_set"),
                kind("isolation_set"),
                kind("completed"),
                kind("qos_episode"),
            ],
            chunk_flushes: reg.counter("quasar.cluster.journal.chunk_flushes"),
            chunk_events: reg.counter("quasar.cluster.journal.chunk_events"),
        }
    })
}

/// One recorded manager action.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A placement was committed.
    Placed {
        /// Workload placed.
        workload: WorkloadId,
        /// Number of nodes in the placement.
        nodes: usize,
        /// Total cores committed.
        cores: u32,
        /// Activation delay charged (profiling), in seconds.
        delay_s: f64,
    },
    /// A workload was evicted.
    Evicted {
        /// Workload evicted.
        workload: WorkloadId,
        /// Whether it was requeued (vs killed).
        requeued: bool,
    },
    /// A node was added to a placement (scale-out).
    NodeAdded {
        /// Workload grown.
        workload: WorkloadId,
        /// Hosting server.
        server: ServerId,
        /// Slice added.
        resources: NodeResources,
    },
    /// A node was removed from a placement (reclaim).
    NodeRemoved {
        /// Workload shrunk.
        workload: WorkloadId,
        /// Server released.
        server: ServerId,
    },
    /// A slice was resized in place (scale-up/down).
    NodeResized {
        /// Workload resized.
        workload: WorkloadId,
        /// Hosting server.
        server: ServerId,
        /// New slice size.
        resources: NodeResources,
    },
    /// Framework parameters were updated in place.
    ParamsSet {
        /// Workload reconfigured.
        workload: WorkloadId,
    },
    /// Hardware partitioning was toggled.
    IsolationSet {
        /// Workload affected.
        workload: WorkloadId,
        /// New isolation state.
        isolated: bool,
    },
    /// A batch workload completed.
    Completed {
        /// Workload that finished.
        workload: WorkloadId,
    },
    /// A QoS violation episode closed (see [`crate::qos`]).
    QosEpisode {
        /// The violating workload.
        workload: WorkloadId,
        /// Attributed root cause.
        cause: QosCause,
        /// Sim-time of the first violating tick.
        start_s: f64,
        /// Episode duration in seconds.
        duration_s: f64,
        /// Deepest violation seen over the episode.
        peak_depth: f64,
    },
}

impl fmt::Display for JournalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalEvent::Placed {
                workload,
                nodes,
                cores,
                delay_s,
            } => write!(
                f,
                "{workload} placed on {nodes} nodes ({cores} cores, +{delay_s:.0}s delay)"
            ),
            JournalEvent::Evicted { workload, requeued } => {
                if *requeued {
                    write!(f, "{workload} evicted (requeued)")
                } else {
                    write!(f, "{workload} evicted (killed)")
                }
            }
            JournalEvent::NodeAdded {
                workload,
                server,
                resources,
            } => write!(
                f,
                "{workload} scaled out to {server} ({} cores, {:.0}GB)",
                resources.cores, resources.memory_gb
            ),
            JournalEvent::NodeRemoved { workload, server } => {
                write!(f, "{workload} released {server}")
            }
            JournalEvent::NodeResized {
                workload,
                server,
                resources,
            } => write!(
                f,
                "{workload} resized on {server} to {} cores, {:.0}GB",
                resources.cores, resources.memory_gb
            ),
            JournalEvent::ParamsSet { workload } => {
                write!(f, "{workload} framework parameters updated")
            }
            JournalEvent::IsolationSet { workload, isolated } => {
                if *isolated {
                    write!(f, "{workload} partitioning enabled")
                } else {
                    write!(f, "{workload} partitioning disabled")
                }
            }
            JournalEvent::Completed { workload } => write!(f, "{workload} completed"),
            JournalEvent::QosEpisode {
                workload,
                cause,
                start_s,
                duration_s,
                peak_depth,
            } => write!(
                f,
                "{workload} qos episode [{cause}] from {start_s:.0}s for {duration_s:.0}s (peak depth {peak_depth:.2})"
            ),
        }
    }
}

impl JournalEvent {
    /// Machine-readable kind tag, matching the per-kind registry
    /// counter and trace event suffixes.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::Placed { .. } => "placed",
            JournalEvent::Evicted { .. } => "evicted",
            JournalEvent::NodeAdded { .. } => "node_added",
            JournalEvent::NodeRemoved { .. } => "node_removed",
            JournalEvent::NodeResized { .. } => "node_resized",
            JournalEvent::ParamsSet { .. } => "params_set",
            JournalEvent::IsolationSet { .. } => "isolation_set",
            JournalEvent::Completed { .. } => "completed",
            JournalEvent::QosEpisode { .. } => "qos_episode",
        }
    }

    /// Trace event name (`cluster.journal.<kind>`), static so it can be
    /// recorded without allocation.
    fn trace_name(&self) -> &'static str {
        match self {
            JournalEvent::Placed { .. } => "cluster.journal.placed",
            JournalEvent::Evicted { .. } => "cluster.journal.evicted",
            JournalEvent::NodeAdded { .. } => "cluster.journal.node_added",
            JournalEvent::NodeRemoved { .. } => "cluster.journal.node_removed",
            JournalEvent::NodeResized { .. } => "cluster.journal.node_resized",
            JournalEvent::ParamsSet { .. } => "cluster.journal.params_set",
            JournalEvent::IsolationSet { .. } => "cluster.journal.isolation_set",
            JournalEvent::Completed { .. } => "cluster.journal.completed",
            JournalEvent::QosEpisode { .. } => "cluster.journal.qos_episode",
        }
    }
}

/// A bounded ring of timestamped [`JournalEvent`]s, optionally streamed
/// through sealed chunks to a [`ChunkProvider`] for bounded-memory,
/// replayable persistence.
pub struct Journal {
    capacity: usize,
    entries: VecDeque<(f64, JournalEvent)>,
    dropped: usize,
    /// Chunk streaming state; `None` keeps the journal a pure ring.
    provider: Option<Box<dyn ChunkProvider>>,
    chunk_cap: usize,
    open_chunk: Vec<(f64, JournalEvent)>,
    next_chunk_index: u64,
    /// FNV-1a over every serialized event line streamed so far,
    /// chunk-boundary independent (see [`crate::chunk::fold_line`]).
    stream_digest: u64,
    streamed: u64,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity)
            .field("entries", &self.entries.len())
            .field("dropped", &self.dropped)
            .field("chunked", &self.provider.is_some())
            .field("streamed", &self.streamed)
            .finish()
    }
}

impl Journal {
    /// A journal keeping at most `capacity` recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Journal {
        assert!(capacity > 0, "journal capacity must be positive");
        Journal {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
            provider: None,
            chunk_cap: 0,
            open_chunk: Vec::new(),
            next_chunk_index: 0,
            stream_digest: chunk::digest_seed(),
            streamed: 0,
        }
    }

    /// Attaches a chunk provider: every event recorded from now on also
    /// feeds an open chunk that is sealed and stored once it holds
    /// `chunk_cap` events. The in-memory ring keeps working unchanged
    /// (recent-window rendering); the chunk stream is the durable,
    /// replayable record.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_cap` is zero.
    pub fn attach_provider(&mut self, chunk_cap: usize, provider: Box<dyn ChunkProvider>) {
        assert!(chunk_cap > 0, "chunk capacity must be positive");
        self.next_chunk_index = provider.count();
        self.provider = Some(provider);
        self.chunk_cap = chunk_cap;
        self.open_chunk = Vec::with_capacity(chunk_cap);
    }

    /// Appends an event at simulation time `at_s`. Besides the in-memory
    /// ring, the event feeds the registry counters
    /// (`quasar.cluster.journal.*`), the chunk stream when a provider is
    /// attached, and — when tracing is enabled — a structured instant
    /// record in the JSONL/Chrome exporters, keyed by the event's
    /// logical time.
    pub fn record(&mut self, at_s: f64, event: JournalEvent) {
        let metrics = journal_metrics();
        metrics.total.inc();
        let kind = event.kind();
        if let Some((_, c)) = metrics.per_kind.iter().find(|(k, _)| *k == kind) {
            c.inc();
        }
        if quasar_obs::tracing_enabled() {
            quasar_obs::trace::record_instant(event.trace_name(), event.to_string(), at_s);
        }
        if self.provider.is_some() {
            self.stream_digest =
                chunk::fold_line(self.stream_digest, &chunk::serialize_event(at_s, &event));
            self.streamed += 1;
            self.open_chunk.push((at_s, event.clone()));
            if self.open_chunk.len() >= self.chunk_cap {
                self.flush_open_chunk();
            }
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at_s, event));
    }

    /// Seals and stores the open chunk even if it is not full (end of
    /// run, or a snapshot boundary). No-op when empty or unchunked.
    /// Chunk boundaries do not affect the stream digest, so a run that
    /// sealed early and one that didn't still fold to the same digest.
    pub fn seal_open_chunk(&mut self) {
        self.flush_open_chunk();
    }

    fn flush_open_chunk(&mut self) {
        let Some(provider) = self.provider.as_mut() else {
            return;
        };
        if self.open_chunk.is_empty() {
            return;
        }
        let chunk = SealedChunk {
            index: self.next_chunk_index,
            events: std::mem::take(&mut self.open_chunk),
        };
        let events = chunk.events.len() as u64;
        if let Err(e) = provider.store(&chunk) {
            // Persistence is best-effort from the physics loop's point
            // of view: a full disk must not corrupt simulation state.
            // The gap is visible (count stops advancing) and the live
            // digest still covers the lost lines.
            eprintln!("journal chunk {} store failed: {e}", chunk.index);
        }
        self.next_chunk_index += 1;
        let metrics = journal_metrics();
        metrics.chunk_flushes.inc();
        metrics.chunk_events.add(events);
    }

    /// The chunk provider, for replay after a run. `None` when the
    /// journal is a pure ring.
    pub fn provider(&self) -> Option<&dyn ChunkProvider> {
        self.provider.as_deref()
    }

    /// Running digest over every event line streamed to chunks (the
    /// journal's outcome identity under persistence). Seed value when no
    /// provider is attached.
    pub fn stream_digest(&self) -> u64 {
        self.stream_digest
    }

    /// Events streamed to the chunk layer over the journal's lifetime.
    pub fn streamed(&self) -> u64 {
        self.streamed
    }

    /// Checkpoints the streaming state for a snapshot:
    /// `(next_chunk_index, streamed, stream_digest)`. The open chunk
    /// should be sealed first so the stored stream covers everything.
    pub fn checkpoint(&self) -> (u64, u64, u64) {
        (self.next_chunk_index, self.streamed, self.stream_digest)
    }

    /// Restores the streaming state saved by
    /// [`checkpoint`](Journal::checkpoint) after re-attaching a provider.
    pub fn restore(&mut self, next_chunk_index: u64, streamed: u64, stream_digest: u64) {
        self.next_chunk_index = next_chunk_index;
        self.streamed = streamed;
        self.stream_digest = stream_digest;
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Iterates over `(time, event)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, JournalEvent)> {
        self.entries.iter()
    }

    /// Events affecting one workload, oldest first.
    pub fn for_workload(&self, id: WorkloadId) -> Vec<&(f64, JournalEvent)> {
        self.entries
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    JournalEvent::Placed { workload, .. }
                    | JournalEvent::Evicted { workload, .. }
                    | JournalEvent::NodeAdded { workload, .. }
                    | JournalEvent::NodeRemoved { workload, .. }
                    | JournalEvent::NodeResized { workload, .. }
                    | JournalEvent::ParamsSet { workload }
                    | JournalEvent::IsolationSet { workload, .. }
                    | JournalEvent::Completed { workload }
                    | JournalEvent::QosEpisode { workload, .. }
                    if *workload == id
                )
            })
            .collect()
    }

    /// Renders the journal as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier events dropped ...", self.dropped);
        }
        for (t, e) in &self.entries {
            let _ = writeln!(out, "[{t:>9.1}s] {e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placed(w: u64) -> JournalEvent {
        JournalEvent::Placed {
            workload: WorkloadId(w),
            nodes: 2,
            cores: 16,
            delay_s: 30.0,
        }
    }

    #[test]
    fn records_in_order() {
        let mut j = Journal::new(8);
        j.record(1.0, placed(1));
        j.record(
            2.0,
            JournalEvent::Completed {
                workload: WorkloadId(1),
            },
        );
        let times: Vec<f64> = j.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![1.0, 2.0]);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let mut j = Journal::new(2);
        j.record(1.0, placed(1));
        j.record(2.0, placed(2));
        j.record(3.0, placed(3));
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 1);
        assert_eq!(j.iter().next().unwrap().0, 2.0);
        assert!(j.render().contains("1 earlier events dropped"));
    }

    #[test]
    fn chunk_streaming_seals_at_capacity_and_replays_to_same_digest() {
        let mut j = Journal::new(4);
        j.attach_provider(2, Box::new(crate::chunk::MemoryChunks::new()));
        for i in 0..5 {
            j.record(i as f64, placed(i));
        }
        assert_eq!(j.streamed(), 5);
        assert_eq!(j.provider().unwrap().count(), 2, "two full chunks sealed");
        j.seal_open_chunk();
        assert_eq!(j.provider().unwrap().count(), 3, "partial chunk sealed");
        assert_eq!(
            crate::chunk::replay_digest(j.provider().unwrap()).unwrap(),
            j.stream_digest(),
            "replaying storage folds to the live digest"
        );
        // The in-memory ring keeps its own independent bound.
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn per_workload_filter() {
        let mut j = Journal::new(8);
        j.record(1.0, placed(1));
        j.record(2.0, placed(2));
        j.record(
            3.0,
            JournalEvent::Evicted {
                workload: WorkloadId(1),
                requeued: false,
            },
        );
        assert_eq!(j.for_workload(WorkloadId(1)).len(), 2);
        assert_eq!(j.for_workload(WorkloadId(2)).len(), 1);
        assert_eq!(j.for_workload(WorkloadId(9)).len(), 0);
    }

    #[test]
    fn every_event_renders_nonempty() {
        let events = [
            placed(1),
            JournalEvent::Evicted {
                workload: WorkloadId(1),
                requeued: true,
            },
            JournalEvent::NodeAdded {
                workload: WorkloadId(1),
                server: ServerId(2),
                resources: NodeResources::new(4, 8.0),
            },
            JournalEvent::NodeRemoved {
                workload: WorkloadId(1),
                server: ServerId(2),
            },
            JournalEvent::NodeResized {
                workload: WorkloadId(1),
                server: ServerId(2),
                resources: NodeResources::new(8, 16.0),
            },
            JournalEvent::ParamsSet {
                workload: WorkloadId(1),
            },
            JournalEvent::IsolationSet {
                workload: WorkloadId(1),
                isolated: true,
            },
            JournalEvent::Completed {
                workload: WorkloadId(1),
            },
            JournalEvent::QosEpisode {
                workload: WorkloadId(1),
                cause: QosCause::Interference,
                start_s: 100.0,
                duration_s: 60.0,
                peak_depth: 0.4,
            },
        ];
        for e in events {
            assert!(!e.to_string().is_empty());
            assert!(!e.kind().is_empty());
            assert!(e.trace_name().ends_with(e.kind()));
        }
    }
}
