//! A decision journal: every mutating manager action on the [`crate::World`]
//! is recorded with its timestamp, so experiments and operators can audit
//! *why* the cluster looks the way it does — placements, evictions,
//! resizes, scale-outs, isolation flips.
//!
//! # Examples
//!
//! ```
//! use quasar_cluster::journal::{Journal, JournalEvent};
//!
//! let mut journal = Journal::new(256);
//! journal.record(12.5, JournalEvent::Evicted {
//!     workload: quasar_workloads::WorkloadId(3),
//!     requeued: true,
//! });
//! assert_eq!(journal.len(), 1);
//! assert!(journal.render().contains("evicted"));
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

use quasar_obs::registry::{Counter, Registry};
use quasar_workloads::{NodeResources, WorkloadId};

use crate::server::ServerId;

/// Registry handles for the journal counters: one total plus one per
/// event kind (`quasar.cluster.journal.<kind>`).
struct JournalMetrics {
    total: Counter,
    per_kind: [(&'static str, Counter); 8],
}

fn journal_metrics() -> &'static JournalMetrics {
    static METRICS: OnceLock<JournalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        let kind = |k: &'static str| (k, reg.counter(&format!("quasar.cluster.journal.{k}")));
        JournalMetrics {
            total: reg.counter("quasar.cluster.journal.events"),
            per_kind: [
                kind("placed"),
                kind("evicted"),
                kind("node_added"),
                kind("node_removed"),
                kind("node_resized"),
                kind("params_set"),
                kind("isolation_set"),
                kind("completed"),
            ],
        }
    })
}

/// One recorded manager action.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A placement was committed.
    Placed {
        /// Workload placed.
        workload: WorkloadId,
        /// Number of nodes in the placement.
        nodes: usize,
        /// Total cores committed.
        cores: u32,
        /// Activation delay charged (profiling), in seconds.
        delay_s: f64,
    },
    /// A workload was evicted.
    Evicted {
        /// Workload evicted.
        workload: WorkloadId,
        /// Whether it was requeued (vs killed).
        requeued: bool,
    },
    /// A node was added to a placement (scale-out).
    NodeAdded {
        /// Workload grown.
        workload: WorkloadId,
        /// Hosting server.
        server: ServerId,
        /// Slice added.
        resources: NodeResources,
    },
    /// A node was removed from a placement (reclaim).
    NodeRemoved {
        /// Workload shrunk.
        workload: WorkloadId,
        /// Server released.
        server: ServerId,
    },
    /// A slice was resized in place (scale-up/down).
    NodeResized {
        /// Workload resized.
        workload: WorkloadId,
        /// Hosting server.
        server: ServerId,
        /// New slice size.
        resources: NodeResources,
    },
    /// Framework parameters were updated in place.
    ParamsSet {
        /// Workload reconfigured.
        workload: WorkloadId,
    },
    /// Hardware partitioning was toggled.
    IsolationSet {
        /// Workload affected.
        workload: WorkloadId,
        /// New isolation state.
        isolated: bool,
    },
    /// A batch workload completed.
    Completed {
        /// Workload that finished.
        workload: WorkloadId,
    },
}

impl fmt::Display for JournalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalEvent::Placed {
                workload,
                nodes,
                cores,
                delay_s,
            } => write!(
                f,
                "{workload} placed on {nodes} nodes ({cores} cores, +{delay_s:.0}s delay)"
            ),
            JournalEvent::Evicted { workload, requeued } => {
                if *requeued {
                    write!(f, "{workload} evicted (requeued)")
                } else {
                    write!(f, "{workload} evicted (killed)")
                }
            }
            JournalEvent::NodeAdded {
                workload,
                server,
                resources,
            } => write!(
                f,
                "{workload} scaled out to {server} ({} cores, {:.0}GB)",
                resources.cores, resources.memory_gb
            ),
            JournalEvent::NodeRemoved { workload, server } => {
                write!(f, "{workload} released {server}")
            }
            JournalEvent::NodeResized {
                workload,
                server,
                resources,
            } => write!(
                f,
                "{workload} resized on {server} to {} cores, {:.0}GB",
                resources.cores, resources.memory_gb
            ),
            JournalEvent::ParamsSet { workload } => {
                write!(f, "{workload} framework parameters updated")
            }
            JournalEvent::IsolationSet { workload, isolated } => {
                if *isolated {
                    write!(f, "{workload} partitioning enabled")
                } else {
                    write!(f, "{workload} partitioning disabled")
                }
            }
            JournalEvent::Completed { workload } => write!(f, "{workload} completed"),
        }
    }
}

impl JournalEvent {
    /// Machine-readable kind tag, matching the per-kind registry
    /// counter and trace event suffixes.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::Placed { .. } => "placed",
            JournalEvent::Evicted { .. } => "evicted",
            JournalEvent::NodeAdded { .. } => "node_added",
            JournalEvent::NodeRemoved { .. } => "node_removed",
            JournalEvent::NodeResized { .. } => "node_resized",
            JournalEvent::ParamsSet { .. } => "params_set",
            JournalEvent::IsolationSet { .. } => "isolation_set",
            JournalEvent::Completed { .. } => "completed",
        }
    }

    /// Trace event name (`cluster.journal.<kind>`), static so it can be
    /// recorded without allocation.
    fn trace_name(&self) -> &'static str {
        match self {
            JournalEvent::Placed { .. } => "cluster.journal.placed",
            JournalEvent::Evicted { .. } => "cluster.journal.evicted",
            JournalEvent::NodeAdded { .. } => "cluster.journal.node_added",
            JournalEvent::NodeRemoved { .. } => "cluster.journal.node_removed",
            JournalEvent::NodeResized { .. } => "cluster.journal.node_resized",
            JournalEvent::ParamsSet { .. } => "cluster.journal.params_set",
            JournalEvent::IsolationSet { .. } => "cluster.journal.isolation_set",
            JournalEvent::Completed { .. } => "cluster.journal.completed",
        }
    }
}

/// A bounded ring of timestamped [`JournalEvent`]s.
#[derive(Debug, Clone)]
pub struct Journal {
    capacity: usize,
    entries: VecDeque<(f64, JournalEvent)>,
    dropped: usize,
}

impl Journal {
    /// A journal keeping at most `capacity` recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Journal {
        assert!(capacity > 0, "journal capacity must be positive");
        Journal {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Appends an event at simulation time `at_s`. Besides the in-memory
    /// ring, the event feeds the registry counters
    /// (`quasar.cluster.journal.*`) and — when tracing is enabled — a
    /// structured instant record in the JSONL/Chrome exporters, keyed by
    /// the event's logical time.
    pub fn record(&mut self, at_s: f64, event: JournalEvent) {
        let metrics = journal_metrics();
        metrics.total.inc();
        let kind = event.kind();
        if let Some((_, c)) = metrics.per_kind.iter().find(|(k, _)| *k == kind) {
            c.inc();
        }
        if quasar_obs::tracing_enabled() {
            quasar_obs::trace::record_instant(event.trace_name(), event.to_string(), at_s);
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at_s, event));
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Iterates over `(time, event)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, JournalEvent)> {
        self.entries.iter()
    }

    /// Events affecting one workload, oldest first.
    pub fn for_workload(&self, id: WorkloadId) -> Vec<&(f64, JournalEvent)> {
        self.entries
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    JournalEvent::Placed { workload, .. }
                    | JournalEvent::Evicted { workload, .. }
                    | JournalEvent::NodeAdded { workload, .. }
                    | JournalEvent::NodeRemoved { workload, .. }
                    | JournalEvent::NodeResized { workload, .. }
                    | JournalEvent::ParamsSet { workload }
                    | JournalEvent::IsolationSet { workload, .. }
                    | JournalEvent::Completed { workload }
                    if *workload == id
                )
            })
            .collect()
    }

    /// Renders the journal as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier events dropped ...", self.dropped);
        }
        for (t, e) in &self.entries {
            let _ = writeln!(out, "[{t:>9.1}s] {e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placed(w: u64) -> JournalEvent {
        JournalEvent::Placed {
            workload: WorkloadId(w),
            nodes: 2,
            cores: 16,
            delay_s: 30.0,
        }
    }

    #[test]
    fn records_in_order() {
        let mut j = Journal::new(8);
        j.record(1.0, placed(1));
        j.record(
            2.0,
            JournalEvent::Completed {
                workload: WorkloadId(1),
            },
        );
        let times: Vec<f64> = j.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![1.0, 2.0]);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let mut j = Journal::new(2);
        j.record(1.0, placed(1));
        j.record(2.0, placed(2));
        j.record(3.0, placed(3));
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 1);
        assert_eq!(j.iter().next().unwrap().0, 2.0);
        assert!(j.render().contains("1 earlier events dropped"));
    }

    #[test]
    fn per_workload_filter() {
        let mut j = Journal::new(8);
        j.record(1.0, placed(1));
        j.record(2.0, placed(2));
        j.record(
            3.0,
            JournalEvent::Evicted {
                workload: WorkloadId(1),
                requeued: false,
            },
        );
        assert_eq!(j.for_workload(WorkloadId(1)).len(), 2);
        assert_eq!(j.for_workload(WorkloadId(2)).len(), 1);
        assert_eq!(j.for_workload(WorkloadId(9)).len(), 0);
    }

    #[test]
    fn every_event_renders_nonempty() {
        let events = [
            placed(1),
            JournalEvent::Evicted {
                workload: WorkloadId(1),
                requeued: true,
            },
            JournalEvent::NodeAdded {
                workload: WorkloadId(1),
                server: ServerId(2),
                resources: NodeResources::new(4, 8.0),
            },
            JournalEvent::NodeRemoved {
                workload: WorkloadId(1),
                server: ServerId(2),
            },
            JournalEvent::NodeResized {
                workload: WorkloadId(1),
                server: ServerId(2),
                resources: NodeResources::new(8, 16.0),
            },
            JournalEvent::ParamsSet {
                workload: WorkloadId(1),
            },
            JournalEvent::IsolationSet {
                workload: WorkloadId(1),
                isolated: true,
            },
            JournalEvent::Completed {
                workload: WorkloadId(1),
            },
        ];
        for e in events {
            assert!(!e.to_string().is_empty());
            assert!(!e.kind().is_empty());
            assert!(e.trace_name().ends_with(e.kind()));
        }
    }
}
