//! Utilization metrics: heatmaps and aggregate series.

/// A per-server utilization snapshot at one sample time — one column of
/// the utilization heatmaps in Figs. 7 and 11 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapSample {
    /// Simulation time of the sample, in seconds.
    pub time_s: f64,
    /// Per-server CPU utilization in `[0, 1]` (cores actively used /
    /// total cores).
    pub cpu: Vec<f64>,
    /// Per-server memory utilization in `[0, 1]`.
    pub memory: Vec<f64>,
    /// Per-server disk-bandwidth utilization proxy in `[0, 1]`.
    pub disk: Vec<f64>,
    /// Aggregate cores *allocated* / total (what the manager committed).
    pub allocated_cpu: f64,
    /// Aggregate cores *reserved* / total (what users or frameworks asked
    /// for — only meaningful under reservation-based managers).
    pub reserved_cpu: f64,
    /// Aggregate memory reserved / total.
    pub reserved_memory: f64,
    /// Aggregate memory allocated / total.
    pub allocated_memory: f64,
}

impl HeatmapSample {
    /// Mean CPU utilization across servers.
    pub fn mean_cpu(&self) -> f64 {
        mean(&self.cpu)
    }

    /// Mean memory utilization across servers.
    pub fn mean_memory(&self) -> f64 {
        mean(&self.memory)
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Aggregate utilization statistics over a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilizationSummary {
    /// Time-averaged mean server CPU utilization.
    pub mean_cpu: f64,
    /// Time-averaged mean server memory utilization.
    pub mean_memory: f64,
    /// Time-averaged aggregate allocated CPU fraction.
    pub mean_allocated_cpu: f64,
    /// Time-averaged aggregate reserved CPU fraction.
    pub mean_reserved_cpu: f64,
}

/// Records utilization samples over a run.
///
/// # Examples
///
/// ```
/// use quasar_cluster::MetricsRecorder;
///
/// let recorder = MetricsRecorder::new(30.0);
/// assert!(recorder.samples().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    interval_s: f64,
    next_sample_at: f64,
    samples: Vec<HeatmapSample>,
}

impl MetricsRecorder {
    /// A recorder sampling every `interval_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    pub fn new(interval_s: f64) -> MetricsRecorder {
        assert!(interval_s > 0.0, "sample interval must be positive");
        MetricsRecorder {
            interval_s,
            next_sample_at: 0.0,
            samples: Vec::new(),
        }
    }

    /// Whether a sample is due at time `now`.
    pub(crate) fn due(&self, now: f64) -> bool {
        now + 1e-9 >= self.next_sample_at
    }

    /// Stores a sample and advances the schedule.
    pub(crate) fn record(&mut self, sample: HeatmapSample) {
        self.next_sample_at = sample.time_s + self.interval_s;
        self.samples.push(sample);
    }

    /// All recorded samples, oldest first.
    pub fn samples(&self) -> &[HeatmapSample] {
        &self.samples
    }

    /// Sampling interval in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Time-averaged summary over all samples (steady-state utilization
    /// numbers quoted throughout the paper's evaluation).
    pub fn summary(&self) -> UtilizationSummary {
        if self.samples.is_empty() {
            return UtilizationSummary::default();
        }
        let n = self.samples.len() as f64;
        UtilizationSummary {
            mean_cpu: self
                .samples
                .iter()
                .map(HeatmapSample::mean_cpu)
                .sum::<f64>()
                / n,
            mean_memory: self
                .samples
                .iter()
                .map(HeatmapSample::mean_memory)
                .sum::<f64>()
                / n,
            mean_allocated_cpu: self.samples.iter().map(|s| s.allocated_cpu).sum::<f64>() / n,
            mean_reserved_cpu: self.samples.iter().map(|s| s.reserved_cpu).sum::<f64>() / n,
        }
    }

    /// Summary restricted to samples in `[from_s, to_s)`.
    pub fn summary_between(&self, from_s: f64, to_s: f64) -> UtilizationSummary {
        let window: Vec<&HeatmapSample> = self
            .samples
            .iter()
            .filter(|s| s.time_s >= from_s && s.time_s < to_s)
            .collect();
        if window.is_empty() {
            return UtilizationSummary::default();
        }
        let n = window.len() as f64;
        UtilizationSummary {
            mean_cpu: window.iter().map(|s| s.mean_cpu()).sum::<f64>() / n,
            mean_memory: window.iter().map(|s| s.mean_memory()).sum::<f64>() / n,
            mean_allocated_cpu: window.iter().map(|s| s.allocated_cpu).sum::<f64>() / n,
            mean_reserved_cpu: window.iter().map(|s| s.reserved_cpu).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, cpu: f64) -> HeatmapSample {
        HeatmapSample {
            time_s: t,
            cpu: vec![cpu, cpu],
            memory: vec![0.5, 0.5],
            disk: vec![0.0, 0.0],
            allocated_cpu: cpu,
            reserved_cpu: cpu * 2.0,
            reserved_memory: 0.0,
            allocated_memory: 0.5,
        }
    }

    #[test]
    fn due_follows_interval() {
        let mut r = MetricsRecorder::new(10.0);
        assert!(r.due(0.0));
        r.record(sample(0.0, 0.2));
        assert!(!r.due(5.0));
        assert!(r.due(10.0));
    }

    #[test]
    fn summary_averages_samples() {
        let mut r = MetricsRecorder::new(1.0);
        r.record(sample(0.0, 0.2));
        r.record(sample(1.0, 0.6));
        let s = r.summary();
        assert!((s.mean_cpu - 0.4).abs() < 1e-12);
        assert!((s.mean_reserved_cpu - 0.8).abs() < 1e-12);
    }

    #[test]
    fn summary_between_filters_window() {
        let mut r = MetricsRecorder::new(1.0);
        r.record(sample(0.0, 0.0));
        r.record(sample(1.0, 1.0));
        let s = r.summary_between(0.5, 1.5);
        assert!((s.mean_cpu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let r = MetricsRecorder::new(1.0);
        assert_eq!(r.summary(), UtilizationSummary::default());
    }
}
