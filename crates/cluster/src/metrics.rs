//! Utilization metrics: heatmaps and aggregate series.

/// A per-server utilization snapshot at one sample time — one column of
/// the utilization heatmaps in Figs. 7 and 11 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapSample {
    /// Simulation time of the sample, in seconds.
    pub time_s: f64,
    /// Per-server CPU utilization in `[0, 1]` (cores actively used /
    /// total cores).
    pub cpu: Vec<f64>,
    /// Per-server memory utilization in `[0, 1]`.
    pub memory: Vec<f64>,
    /// Per-server disk-bandwidth utilization proxy in `[0, 1]`.
    pub disk: Vec<f64>,
    /// Aggregate cores *allocated* / total (what the manager committed).
    pub allocated_cpu: f64,
    /// Aggregate cores *reserved* / total (what users or frameworks asked
    /// for — only meaningful under reservation-based managers).
    pub reserved_cpu: f64,
    /// Aggregate memory reserved / total.
    pub reserved_memory: f64,
    /// Aggregate memory allocated / total.
    pub allocated_memory: f64,
}

impl HeatmapSample {
    /// Mean CPU utilization across servers.
    pub fn mean_cpu(&self) -> f64 {
        mean(&self.cpu)
    }

    /// Mean memory utilization across servers.
    pub fn mean_memory(&self) -> f64 {
        mean(&self.memory)
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Aggregate utilization statistics over a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilizationSummary {
    /// Time-averaged mean server CPU utilization.
    pub mean_cpu: f64,
    /// Time-averaged mean server memory utilization.
    pub mean_memory: f64,
    /// Time-averaged aggregate allocated CPU fraction.
    pub mean_allocated_cpu: f64,
    /// Time-averaged aggregate reserved CPU fraction.
    pub mean_reserved_cpu: f64,
}

/// Records utilization samples over a run.
///
/// # Examples
///
/// ```
/// use quasar_cluster::MetricsRecorder;
///
/// let recorder = MetricsRecorder::new(30.0);
/// assert!(recorder.samples().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    interval_s: f64,
    /// Index of the next *due* sample on the `i * interval_s` grid. The
    /// schedule is computed from this integer index, never by
    /// accumulating `time + interval`: repeated float addition drifts
    /// off the grid over long runs (the same bug class the simulation
    /// tick driver fixed by stepping on an integer tick index).
    next_index: u64,
    /// Samples recorded before this recorder was restored from a
    /// snapshot (they live in the snapshotted run's recorder).
    prior_count: u64,
    samples: Vec<HeatmapSample>,
}

impl MetricsRecorder {
    /// A recorder sampling every `interval_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    pub fn new(interval_s: f64) -> MetricsRecorder {
        assert!(interval_s > 0.0, "sample interval must be positive");
        MetricsRecorder {
            interval_s,
            next_index: 0,
            prior_count: 0,
            samples: Vec::new(),
        }
    }

    /// The next grid instant a sample is due at (`next_index *
    /// interval_s`, one rounding, no accumulated error).
    pub(crate) fn next_due_s(&self) -> f64 {
        self.next_index as f64 * self.interval_s
    }

    /// Whether a sample is due at time `now`.
    pub(crate) fn due(&self, now: f64) -> bool {
        now + 1e-9 >= self.next_due_s()
    }

    /// Stores a sample and advances the schedule to the first grid point
    /// strictly after the sample's time. A driver ticking coarser than
    /// the interval records at the first tick past each grid point, so
    /// the index may advance by more than one.
    pub(crate) fn record(&mut self, sample: HeatmapSample) {
        let passed = ((sample.time_s + 1e-9) / self.interval_s).floor() as u64;
        self.next_index = passed.max(self.next_index) + 1;
        self.samples.push(sample);
    }

    /// Resumes the schedule of a snapshotted recorder: `next_index` is
    /// the grid index it would sample next, `prior_count` how many
    /// samples it had recorded (they stay with the snapshotted run;
    /// [`samples`](MetricsRecorder::samples) holds post-resume samples
    /// only).
    pub(crate) fn resume_at(&mut self, next_index: u64, prior_count: u64) {
        self.next_index = next_index;
        self.prior_count = prior_count;
    }

    /// The grid index of the next due sample (for snapshots).
    pub(crate) fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Samples recorded over the whole run, including any recorded
    /// before a snapshot/resume boundary.
    pub fn total_count(&self) -> u64 {
        self.prior_count + self.samples.len() as u64
    }

    /// All recorded samples, oldest first.
    pub fn samples(&self) -> &[HeatmapSample] {
        &self.samples
    }

    /// Sampling interval in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Time-averaged summary over all samples (steady-state utilization
    /// numbers quoted throughout the paper's evaluation).
    pub fn summary(&self) -> UtilizationSummary {
        if self.samples.is_empty() {
            return UtilizationSummary::default();
        }
        let n = self.samples.len() as f64;
        UtilizationSummary {
            mean_cpu: self
                .samples
                .iter()
                .map(HeatmapSample::mean_cpu)
                .sum::<f64>()
                / n,
            mean_memory: self
                .samples
                .iter()
                .map(HeatmapSample::mean_memory)
                .sum::<f64>()
                / n,
            mean_allocated_cpu: self.samples.iter().map(|s| s.allocated_cpu).sum::<f64>() / n,
            mean_reserved_cpu: self.samples.iter().map(|s| s.reserved_cpu).sum::<f64>() / n,
        }
    }

    /// Summary restricted to samples in `[from_s, to_s)`.
    pub fn summary_between(&self, from_s: f64, to_s: f64) -> UtilizationSummary {
        let window: Vec<&HeatmapSample> = self
            .samples
            .iter()
            .filter(|s| s.time_s >= from_s && s.time_s < to_s)
            .collect();
        if window.is_empty() {
            return UtilizationSummary::default();
        }
        let n = window.len() as f64;
        UtilizationSummary {
            mean_cpu: window.iter().map(|s| s.mean_cpu()).sum::<f64>() / n,
            mean_memory: window.iter().map(|s| s.mean_memory()).sum::<f64>() / n,
            mean_allocated_cpu: window.iter().map(|s| s.allocated_cpu).sum::<f64>() / n,
            mean_reserved_cpu: window.iter().map(|s| s.reserved_cpu).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, cpu: f64) -> HeatmapSample {
        HeatmapSample {
            time_s: t,
            cpu: vec![cpu, cpu],
            memory: vec![0.5, 0.5],
            disk: vec![0.0, 0.0],
            allocated_cpu: cpu,
            reserved_cpu: cpu * 2.0,
            reserved_memory: 0.0,
            allocated_memory: 0.5,
        }
    }

    #[test]
    fn due_follows_interval() {
        let mut r = MetricsRecorder::new(10.0);
        assert!(r.due(0.0));
        r.record(sample(0.0, 0.2));
        assert!(!r.due(5.0));
        assert!(r.due(10.0));
    }

    #[test]
    fn summary_averages_samples() {
        let mut r = MetricsRecorder::new(1.0);
        r.record(sample(0.0, 0.2));
        r.record(sample(1.0, 0.6));
        let s = r.summary();
        assert!((s.mean_cpu - 0.4).abs() < 1e-12);
        assert!((s.mean_reserved_cpu - 0.8).abs() < 1e-12);
    }

    #[test]
    fn summary_between_filters_window() {
        let mut r = MetricsRecorder::new(1.0);
        r.record(sample(0.0, 0.0));
        r.record(sample(1.0, 1.0));
        let s = r.summary_between(0.5, 1.5);
        assert!((s.mean_cpu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let r = MetricsRecorder::new(1.0);
        assert_eq!(r.summary(), UtilizationSummary::default());
    }

    /// One million samples at a 0.1s interval stay *bitwise* on the
    /// `i * 0.1` grid: the schedule comes from one multiplication of an
    /// integer index, never from accumulating `t += interval`, so there
    /// is no float drift no matter how long the run. The naive
    /// accumulator the integer index replaced is off the grid by the
    /// end of the same span.
    #[test]
    fn million_samples_stay_on_the_grid() {
        let mut r = MetricsRecorder::new(0.1);
        let mut accumulated = 0.0f64;
        for i in 0..1_000_000u64 {
            let due = r.next_due_s();
            assert_eq!(due.to_bits(), (i as f64 * 0.1).to_bits(), "sample {i}");
            assert!(r.due(due), "sample {i} due at its own grid point");
            r.record(sample(due, 0.5));
            assert_eq!(r.next_index(), i + 1, "index advances by one on-grid");
            accumulated += 0.1;
            if r.samples.len() >= 4096 {
                r.samples.clear(); // keep the test's memory flat
            }
        }
        assert_eq!(r.next_due_s().to_bits(), 100_000.0f64.to_bits());
        assert_ne!(
            accumulated.to_bits(),
            100_000.0f64.to_bits(),
            "the accumulating schedule this replaced drifts off the grid"
        );
    }
}
