//! The simulation driver: event queue plus the tick loop.
//!
//! # Time semantics
//!
//! Physics is tick-quantized: the clock only ever rests at `start + k *
//! tick_s` instants (computed by integer tick index, never accumulated).
//! Events (arrivals, phase changes) may carry arbitrary timestamps; an
//! event at time `t` is *delivered* at the first tick boundary `>= t` —
//! immediately after physics advanced to that boundary and before the
//! manager's completion/tick callbacks for it — so the tick callback at
//! a boundary always sees every event due by that boundary, including
//! events scheduled exactly at the run horizon. Delivery latency is
//! therefore bounded by one tick, never two.
//!
//! # Idle fast-forward
//!
//! When the world is idle (nothing running, nothing pending) and the
//! manager declares its idle ticks are no-ops
//! ([`Manager::needs_idle_ticks`]` == false`), the driver jumps straight
//! to the next instant anything can happen: the covering tick of the
//! next queued event, of the next metrics sample, or the horizon.
//! Quiescent spans then cost O(log n) per event instead of O(span /
//! tick) — with outcomes (completion sets, digests, metrics grids)
//! bit-identical to the dense loop, which
//! [`Simulation::run_until_dense`] retains for differential testing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

use quasar_interference::InterferenceProfile;
use quasar_obs::registry::{Counter, Gauge, Registry};
use quasar_workloads::{Workload, WorkloadId};

use crate::cluster::{ClusterSpec, ClusterState};
use crate::managers::Manager;
use crate::world::World;

/// Registry handles for the driver metrics (`quasar.cluster.sim.*`).
struct SimMetrics {
    heap_depth: Gauge,
    delivered: Counter,
    ticks_skipped: Counter,
}

fn sim_metrics() -> &'static SimMetrics {
    static METRICS: OnceLock<SimMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        SimMetrics {
            heap_depth: reg.gauge("quasar.cluster.sim.heap_depth"),
            delivered: reg.counter("quasar.cluster.sim.events_delivered"),
            ticks_skipped: reg.counter("quasar.cluster.sim.ticks_skipped"),
        }
    })
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Physics/monitoring tick in seconds.
    pub tick_s: f64,
    /// Multiplicative measurement noise (e.g. 0.03 = ±3%).
    pub noise: f64,
    /// Utilization sampling interval in seconds.
    pub metrics_interval_s: f64,
    /// RNG seed for the world (noise).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            tick_s: 5.0,
            noise: 0.03,
            metrics_interval_s: 60.0,
            seed: 0xC10D,
        }
    }
}

/// A mid-run behavioural change of a workload, used to exercise the phase
/// detection of §4.1.
#[derive(Debug, Clone)]
pub enum PhaseChange {
    /// Multiply the workload's intrinsic rate/capacity by this factor.
    RateFactor(f64),
    /// Replace the workload's interference profile.
    Interference(InterferenceProfile),
}

#[derive(Debug)]
enum EventKind {
    Arrival(Box<Workload>),
    Phase(WorkloadId, PhaseChange),
}

struct Event {
    time_s: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time (then sequence for stability). total_cmp keeps
        // the heap invariant even if a non-finite timestamp slips through
        // a release build (NaN sorts deterministically instead of
        // panicking mid-pop or corrupting the ordering); insertion
        // rejects such timestamps in debug builds.
        other
            .time_s
            .total_cmp(&self.time_s)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A simulation: a [`World`], a [`Manager`], and a queue of future events.
///
/// # Examples
///
/// ```
/// use quasar_cluster::{ClusterSpec, SimConfig, Simulation, managers::NullManager};
/// use quasar_workloads::PlatformCatalog;
///
/// let spec = ClusterSpec::uniform(PlatformCatalog::local(), 1);
/// let mut sim = Simulation::new(spec, Box::new(NullManager), SimConfig::default());
/// sim.run_until(30.0);
/// assert_eq!(sim.world().now(), 30.0);
///
/// // The invariant is bitwise even for ticks with no finite binary
/// // representation: the driver steps by integer tick index instead of
/// // accumulating `+= tick_s`.
/// let spec = ClusterSpec::uniform(PlatformCatalog::local(), 1);
/// let mut sim = Simulation::new(
///     spec,
///     Box::new(NullManager),
///     SimConfig { tick_s: 0.1, ..SimConfig::default() },
/// );
/// sim.run_until(33.0);
/// assert_eq!(sim.world().now(), 33.0);
/// ```
pub struct Simulation {
    world: World,
    manager: Box<dyn Manager>,
    events: BinaryHeap<Event>,
    next_seq: u64,
}

impl Simulation {
    /// Builds a simulation over a freshly-constructed cluster.
    pub fn new(spec: ClusterSpec, manager: Box<dyn Manager>, config: SimConfig) -> Simulation {
        assert!(config.tick_s > 0.0, "tick must be positive");
        let world = World::new(
            ClusterState::new(spec),
            config.tick_s,
            config.noise,
            config.metrics_interval_s,
            config.seed,
        );
        Simulation {
            world,
            manager,
            events: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules a workload submission at time `at_s`.
    ///
    /// # Panics
    ///
    /// Panics if `at_s` is in the past.
    pub fn submit_at(&mut self, workload: Workload, at_s: f64) {
        assert!(at_s >= self.world.now(), "cannot submit in the past");
        self.push(at_s, EventKind::Arrival(Box::new(workload)));
    }

    /// Schedules a phase change for a workload at time `at_s`.
    pub fn schedule_phase_change(&mut self, id: WorkloadId, at_s: f64, change: PhaseChange) {
        assert!(at_s >= self.world.now(), "cannot schedule in the past");
        self.push(at_s, EventKind::Phase(id, change));
    }

    fn push(&mut self, time_s: f64, kind: EventKind) {
        debug_assert!(
            time_s.is_finite(),
            "event scheduled at non-finite time {time_s}"
        );
        self.events.push(Event {
            time_s,
            seq: self.next_seq,
            kind,
        });
        self.next_seq += 1;
        sim_metrics().heap_depth.set_max(self.events.len() as u64);
    }

    /// The simulated world (for inspection and result extraction).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access, for test harnesses that drive the world
    /// directly.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The manager's report name.
    pub fn manager_name(&self) -> String {
        self.manager.name().to_string()
    }

    /// Queued arrivals as `(time, seq, id)` in submission order, for
    /// snapshots. Errors if a phase change is queued: snapshots cover
    /// arrival streams only (workloads are regenerated on resume; phase
    /// payloads have no serial form).
    pub(crate) fn queued_arrivals(&self) -> Result<Vec<(f64, u64, WorkloadId)>, String> {
        let mut out = Vec::with_capacity(self.events.len());
        for e in self.events.iter() {
            match &e.kind {
                EventKind::Arrival(w) => out.push((e.time_s, e.seq, w.id())),
                EventKind::Phase(id, _) => {
                    return Err(format!(
                        "queued phase change for workload {} cannot be snapshotted",
                        id.0
                    ));
                }
            }
        }
        out.sort_by_key(|&(_, seq, _)| seq);
        Ok(out)
    }

    pub(crate) fn event_seq(&self) -> u64 {
        self.next_seq
    }

    /// Rebuilds the event queue from a snapshot (arrivals only), keeping
    /// the recorded per-event sequence numbers so heap tie-breaks replay
    /// identically.
    pub(crate) fn restore_queue(&mut self, arrivals: Vec<(f64, u64, Workload)>, next_seq: u64) {
        for (time_s, seq, workload) in arrivals {
            self.events.push(Event {
                time_s,
                seq,
                kind: EventKind::Arrival(Box::new(workload)),
            });
        }
        self.next_seq = next_seq;
        sim_metrics().heap_depth.set_max(self.events.len() as u64);
    }

    /// Runs the simulation until `t_end_s` (inclusive of the final tick),
    /// fast-forwarding idle spans when the manager allows it (see the
    /// module docs for the exact time semantics).
    ///
    /// Each iteration: advance physics one tick, deliver events due by
    /// the end of that tick (arrivals → `on_arrival`, phase changes →
    /// world mutation), notify completions, then give the manager its
    /// periodic `on_tick`. Events already due when the call starts —
    /// including events at exactly a previously-reached horizon — are
    /// delivered up front, and the final tick delivers everything due at
    /// `t_end_s` itself, so no event within the horizon is ever dropped.
    ///
    /// Tick instants are computed as `start + k * tick_s` by integer tick
    /// index `k` — not by repeated `+= tick_s` accumulation, which for
    /// non-dyadic ticks (0.1, 0.3, ...) drifts and over/undershoots the
    /// horizon. The final step clamps to `t_end_s`, so after the call
    /// `world().now() == t_end_s` holds bitwise whenever the clock moved.
    pub fn run_until(&mut self, t_end_s: f64) {
        self.drive(t_end_s, true);
    }

    /// The dense tick loop: identical semantics to
    /// [`run_until`](Simulation::run_until) but never fast-forwards idle
    /// spans, visiting every tick like the original tick-driven core.
    /// Retained as the differential-testing oracle for the event-driven
    /// loop (see DESIGN.md §7 for its retirement path); production
    /// callers should use `run_until`.
    pub fn run_until_dense(&mut self, t_end_s: f64) {
        self.drive(t_end_s, false);
    }

    fn drive(&mut self, t_end_s: f64, allow_skip: bool) {
        let tick = self.world.tick_s();
        let start = self.world.now();
        // Events already due — scheduled at exactly `start`, or at/before
        // a horizon an earlier call already reached — deliver now, at the
        // clock they were scheduled for.
        self.deliver_due(start);
        let mut k: u64 = 0;
        while self.world.now() + 1e-9 < t_end_s {
            k += 1;
            if allow_skip && self.world.is_idle() && !self.manager.needs_idle_ticks() {
                let jump = idle_jump(
                    k,
                    self.world.now(),
                    start,
                    tick,
                    t_end_s,
                    self.events.peek().map(|e| e.time_s),
                    self.world.next_metrics_due_s(),
                );
                if jump > k {
                    sim_metrics().ticks_skipped.add(jump - k);
                    k = jump;
                }
            }
            let next = (start + k as f64 * tick).min(t_end_s);
            let completed = self.world.advance_to(next);
            self.deliver_due(self.world.now());
            for id in completed {
                self.manager.on_completion(&mut self.world, id);
                self.world.retire_if_dropping(id);
            }
            self.manager.on_tick(&mut self.world);
        }
    }

    /// Delivers every queued event due at clock `now` (`time_s <= now`
    /// within tolerance), in time-then-submission order.
    fn deliver_due(&mut self, now: f64) {
        while self
            .events
            .peek()
            .map(|e| e.time_s <= now + 1e-9)
            .unwrap_or(false)
        {
            let event = self.events.pop().expect("peeked");
            sim_metrics().delivered.inc();
            match event.kind {
                EventKind::Arrival(workload) => {
                    let id = workload.id();
                    self.world.submit(*workload);
                    self.manager.on_arrival(&mut self.world, id);
                }
                EventKind::Phase(id, change) => match change {
                    PhaseChange::RateFactor(f) => self.world.apply_phase_rate(id, f),
                    PhaseChange::Interference(p) => self.world.apply_phase_interference(id, p),
                },
            }
        }
    }
}

/// The tick index an idle driver may jump to: the covering tick of the
/// earliest instant anything can happen (next queued event, next metrics
/// sample, or the horizon). Returns at least `k`, the index the dense
/// loop would visit next, and picks exactly the tick the dense loop
/// would first observe that instant at — so skipping changes nothing
/// observable.
fn idle_jump(
    k: u64,
    now: f64,
    start: f64,
    tick: f64,
    t_end_s: f64,
    next_event_s: Option<f64>,
    next_metrics_s: f64,
) -> u64 {
    let mut target = t_end_s.min(next_metrics_s);
    if let Some(te) = next_event_s {
        target = target.min(te);
    }
    if target <= now + 1e-9 {
        // Due already (or at this very instant): the next tick handles it.
        return k;
    }
    covering_tick(start, tick, target).max(k)
}

/// The first tick index `j` with `target <= start + j * tick + 1e-9` —
/// the tick at which the dense loop's delivery/metrics checks would see
/// `target` as due. Pinned by the same float expressions the loop uses,
/// so the choice is bitwise-consistent with dense stepping.
fn covering_tick(start: f64, tick: f64, target: f64) -> u64 {
    let mut j = (((target - start) / tick).ceil()).max(0.0) as u64;
    while j > 0 && target <= start + (j - 1) as f64 * tick + 1e-9 {
        j -= 1;
    }
    while target > start + j as f64 * tick + 1e-9 {
        j += 1;
    }
    j
}

/// Drives the shared tick loop for a bare `(world, manager)` pair with no
/// event queue — the cell-round driver: cells deliver their arrivals at
/// round boundaries, so within a round only physics, completions, and
/// ticks happen. Applies the same integer-tick stepping, idle
/// fast-forward, and completion-retention rules as [`Simulation`].
pub(crate) fn drive_ticks<M: Manager + ?Sized>(world: &mut World, manager: &mut M, t_end_s: f64) {
    let tick = world.tick_s();
    let start = world.now();
    let mut k: u64 = 0;
    while world.now() + 1e-9 < t_end_s {
        k += 1;
        if world.is_idle() && !manager.needs_idle_ticks() {
            let jump = idle_jump(
                k,
                world.now(),
                start,
                tick,
                t_end_s,
                None,
                world.next_metrics_due_s(),
            );
            if jump > k {
                sim_metrics().ticks_skipped.add(jump - k);
                k = jump;
            }
        }
        let next = (start + k as f64 * tick).min(t_end_s);
        let completed = world.advance_to(next);
        for id in completed {
            manager.on_completion(world, id);
            world.retire_if_dropping(id);
        }
        manager.on_tick(world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::NullManager;
    use crate::placement::NodeAlloc;
    use crate::world::JobState;
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{
        Dataset, FrameworkParams, NodeResources, PlatformCatalog, Priority, WorkloadClass,
    };

    /// A manager that places every arrival on the emptiest server at full
    /// size, for driver tests.
    struct GreedyFullServer;

    impl Manager for GreedyFullServer {
        fn name(&self) -> &str {
            "greedy-full"
        }

        fn on_arrival(&mut self, world: &mut World, id: WorkloadId) {
            let sid = world
                .servers()
                .iter()
                .filter(|s| s.used_cores() == 0)
                .max_by_key(|s| s.total_cores())
                .map(|s| s.id());
            if let Some(sid) = sid {
                let platform = world.platform_of(sid);
                let res = NodeResources::all_of(platform);
                let _ = world.place(
                    id,
                    vec![NodeAlloc::immediate(sid, res)],
                    FrameworkParams::default(),
                );
            }
        }

        fn on_tick(&mut self, _world: &mut World) {}

        fn on_completion(&mut self, _world: &mut World, _id: WorkloadId) {}

        fn needs_idle_ticks(&self) -> bool {
            false
        }
    }

    fn sim(manager: Box<dyn Manager>) -> Simulation {
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 1);
        Simulation::new(
            spec,
            manager,
            SimConfig {
                noise: 0.0,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut s = sim(Box::new(NullManager));
        s.run_until(33.0);
        assert_eq!(s.world().now(), 33.0);
    }

    #[test]
    fn non_dyadic_tick_lands_on_horizon_bitwise() {
        // Regression: repeated `now += 0.1` accumulates rounding error
        // (330 * 0.1 != 33.0 in binary), so the old driver either
        // overshot the horizon or stopped an epsilon short. Integer tick
        // indexing must land exactly, including across successive calls
        // that resume from a non-representable instant.
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 1);
        let mut s = Simulation::new(
            spec,
            Box::new(NullManager),
            SimConfig {
                tick_s: 0.1,
                noise: 0.0,
                ..SimConfig::default()
            },
        );
        s.run_until(33.0);
        assert_eq!(s.world().now(), 33.0);
        s.run_until(47.5);
        assert_eq!(s.world().now(), 47.5);
        s.run_until(47.65);
        assert_eq!(s.world().now(), 47.65);
    }

    #[test]
    fn arrivals_are_delivered_in_order() {
        let mut s = sim(Box::new(GreedyFullServer));
        let mut generator = Generator::new(PlatformCatalog::local(), 1);
        let a = generator.analytics_job(
            WorkloadClass::Hadoop,
            "a",
            Dataset::new("d", 5.0, 1.0),
            1,
            300.0,
            Priority::Guaranteed,
        );
        let b = generator.analytics_job(
            WorkloadClass::Hadoop,
            "b",
            Dataset::new("d", 5.0, 1.0),
            1,
            300.0,
            Priority::Guaranteed,
        );
        let (ida, idb) = (a.id(), b.id());
        s.submit_at(a, 10.0);
        s.submit_at(b, 20.0);
        s.run_until(15.0);
        assert_eq!(s.world().state(ida), JobState::Running);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { s.world().state(idb) }))
                .is_err(),
            "b not yet submitted"
        );
        s.run_until(25.0);
        assert_eq!(s.world().state(idb), JobState::Running);
    }

    #[test]
    fn phase_change_slows_a_job() {
        let mut s = sim(Box::new(GreedyFullServer));
        let mut generator = Generator::new(PlatformCatalog::local(), 2);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "a",
            Dataset::new("d", 5.0, 1.0),
            1,
            500.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        s.submit_at(job, 0.0);
        s.schedule_phase_change(id, 50.0, PhaseChange::RateFactor(0.01));
        s.run_until(49.0);
        let before = match s.world().observation(id).unwrap() {
            crate::observe::Observation::Batch { rate, .. } => rate,
            _ => unreachable!(),
        };
        s.run_until(60.0);
        let after = match s.world().observation(id).unwrap() {
            crate::observe::Observation::Batch { rate, .. } => rate,
            _ => unreachable!(),
        };
        assert!(after < before * 0.1, "phase change must slow the job");
    }

    #[test]
    fn completions_notify_manager_and_free_resources() {
        struct CountCompletions(std::rc::Rc<std::cell::Cell<usize>>);
        impl Manager for CountCompletions {
            fn name(&self) -> &str {
                "count"
            }
            fn on_arrival(&mut self, world: &mut World, id: WorkloadId) {
                GreedyFullServer.on_arrival(world, id);
            }
            fn on_tick(&mut self, _world: &mut World) {}
            fn on_completion(&mut self, _world: &mut World, _id: WorkloadId) {
                self.0.set(self.0.get() + 1);
            }
        }
        let counter = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut s = sim(Box::new(CountCompletions(counter.clone())));
        let mut generator = Generator::new(PlatformCatalog::local(), 3);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "a",
            Dataset::new("d", 2.0, 1.0),
            1,
            120.0,
            Priority::Guaranteed,
        );
        s.submit_at(job, 0.0);
        s.run_until(5_000.0);
        assert_eq!(counter.get(), 1, "exactly one completion callback");
        assert_eq!(s.world().used_cores(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot submit in the past")]
    fn past_submission_panics() {
        let mut s = sim(Box::new(NullManager));
        s.run_until(10.0);
        let mut generator = Generator::new(PlatformCatalog::local(), 4);
        let job = generator.single_node_job("x", 60.0, Priority::BestEffort);
        s.submit_at(job, 5.0);
    }

    /// Regression (horizon drop): an arrival scheduled at exactly the
    /// run horizon — which `submit_at`'s assert permits — used to be
    /// silently left in the queue when `run_until` exited. It must be
    /// delivered at the horizon, within the same call.
    #[test]
    fn events_at_the_horizon_are_delivered() {
        let mut s = sim(Box::new(GreedyFullServer));
        let mut generator = Generator::new(PlatformCatalog::local(), 5);
        let job = generator.single_node_job("edge", 300.0, Priority::Guaranteed);
        let id = job.id();
        s.submit_at(job, 30.0);
        s.run_until(30.0);
        assert_eq!(
            s.world().state(id),
            JobState::Running,
            "horizon arrival must fire before run_until returns"
        );
        let record = &s.world().completions()[0];
        assert_eq!(record.submitted_s, 30.0);

        // Same at a horizon that is not a tick multiple.
        let mut s = sim(Box::new(GreedyFullServer));
        let job = generator.single_node_job("edge2", 300.0, Priority::Guaranteed);
        let id = job.id();
        s.submit_at(job, 32.0);
        s.run_until(32.0);
        assert_eq!(s.world().state(id), JobState::Running);
    }

    /// Regression (delivery latency): an event at mid-tick time `t` must
    /// be delivered at the first tick boundary `>= t` and be visible to
    /// that boundary's `on_tick` — not one full tick later, as the old
    /// start-of-tick delivery condition produced.
    #[test]
    fn mid_tick_events_deliver_at_the_covering_tick() {
        /// Records the clock of the first `on_tick` that sees a pending
        /// workload, and of the `on_arrival` itself.
        #[derive(Default)]
        struct FirstSight {
            arrival_at: std::cell::Cell<f64>,
            tick_saw_pending_at: std::cell::Cell<f64>,
        }
        struct Watcher(std::rc::Rc<FirstSight>);
        impl Manager for Watcher {
            fn name(&self) -> &str {
                "watcher"
            }
            fn on_arrival(&mut self, world: &mut World, _id: WorkloadId) {
                if self.0.arrival_at.get() == 0.0 {
                    self.0.arrival_at.set(world.now());
                }
            }
            fn on_tick(&mut self, world: &mut World) {
                if self.0.tick_saw_pending_at.get() == 0.0
                    && !world.ids_in_state(JobState::Pending).is_empty()
                {
                    self.0.tick_saw_pending_at.set(world.now());
                }
            }
            fn on_completion(&mut self, _world: &mut World, _id: WorkloadId) {}
        }

        let sight = std::rc::Rc::new(FirstSight::default());
        let mut s = sim(Box::new(Watcher(sight.clone())));
        let mut generator = Generator::new(PlatformCatalog::local(), 6);
        let job = generator.single_node_job("mid", 300.0, Priority::Guaranteed);
        s.submit_at(job, 7.0); // mid-tick: ticks land at 5, 10, 15, ...
        s.run_until(30.0);
        assert_eq!(
            sight.arrival_at.get(),
            10.0,
            "delivered at the covering tick boundary"
        );
        assert_eq!(
            sight.tick_saw_pending_at.get(),
            10.0,
            "the covering tick's own on_tick must already see the event"
        );
    }

    /// The idle fast-forward must be observationally equivalent to the
    /// dense loop: same completion digest, same completion records, same
    /// metrics sample count and grid.
    #[test]
    fn idle_skip_matches_dense_loop_bitwise() {
        let run = |dense: bool| {
            let mut s = sim(Box::new(GreedyFullServer));
            let mut generator = Generator::new(PlatformCatalog::local(), 7);
            // Long idle gaps between arrivals, horizon far past the last
            // completion — exactly the spans the skip path eats.
            for (i, at) in [(0u64, 100.0), (1, 2_000.0), (2, 7_333.0)] {
                let job = generator.single_node_job(format!("j{i}"), 400.0, Priority::Guaranteed);
                s.submit_at(job, at);
            }
            if dense {
                s.run_until_dense(20_000.0);
            } else {
                s.run_until(20_000.0);
            }
            (
                s.world().completion_digest(),
                s.world().completions(),
                s.world()
                    .metrics()
                    .samples()
                    .iter()
                    .map(|m| m.time_s.to_bits())
                    .collect::<Vec<_>>(),
                s.world().now().to_bits(),
            )
        };
        let dense = run(true);
        let skipped = run(false);
        assert_eq!(dense.0, skipped.0, "completion digest");
        assert_eq!(dense.1, skipped.1, "completion records");
        assert_eq!(dense.2, skipped.2, "metrics grid");
        assert_eq!(dense.3, skipped.3, "final clock");
    }
}
