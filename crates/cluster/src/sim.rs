//! The simulation driver: event queue plus the tick loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use quasar_interference::InterferenceProfile;
use quasar_workloads::{Workload, WorkloadId};

use crate::cluster::{ClusterSpec, ClusterState};
use crate::managers::Manager;
use crate::world::World;

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Physics/monitoring tick in seconds.
    pub tick_s: f64,
    /// Multiplicative measurement noise (e.g. 0.03 = ±3%).
    pub noise: f64,
    /// Utilization sampling interval in seconds.
    pub metrics_interval_s: f64,
    /// RNG seed for the world (noise).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            tick_s: 5.0,
            noise: 0.03,
            metrics_interval_s: 60.0,
            seed: 0xC10D,
        }
    }
}

/// A mid-run behavioural change of a workload, used to exercise the phase
/// detection of §4.1.
#[derive(Debug, Clone)]
pub enum PhaseChange {
    /// Multiply the workload's intrinsic rate/capacity by this factor.
    RateFactor(f64),
    /// Replace the workload's interference profile.
    Interference(InterferenceProfile),
}

#[derive(Debug)]
enum EventKind {
    Arrival(Box<Workload>),
    Phase(WorkloadId, PhaseChange),
}

struct Event {
    time_s: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time (then sequence for stability). total_cmp keeps
        // the heap invariant even if a non-finite timestamp slips through
        // a release build (NaN sorts deterministically instead of
        // panicking mid-pop or corrupting the ordering); insertion
        // rejects such timestamps in debug builds.
        other
            .time_s
            .total_cmp(&self.time_s)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A simulation: a [`World`], a [`Manager`], and a queue of future events.
///
/// # Examples
///
/// ```
/// use quasar_cluster::{ClusterSpec, SimConfig, Simulation, managers::NullManager};
/// use quasar_workloads::PlatformCatalog;
///
/// let spec = ClusterSpec::uniform(PlatformCatalog::local(), 1);
/// let mut sim = Simulation::new(spec, Box::new(NullManager), SimConfig::default());
/// sim.run_until(30.0);
/// assert_eq!(sim.world().now(), 30.0);
///
/// // The invariant is bitwise even for ticks with no finite binary
/// // representation: the driver steps by integer tick index instead of
/// // accumulating `+= tick_s`.
/// let spec = ClusterSpec::uniform(PlatformCatalog::local(), 1);
/// let mut sim = Simulation::new(
///     spec,
///     Box::new(NullManager),
///     SimConfig { tick_s: 0.1, ..SimConfig::default() },
/// );
/// sim.run_until(33.0);
/// assert_eq!(sim.world().now(), 33.0);
/// ```
pub struct Simulation {
    world: World,
    manager: Box<dyn Manager>,
    events: BinaryHeap<Event>,
    next_seq: u64,
}

impl Simulation {
    /// Builds a simulation over a freshly-constructed cluster.
    pub fn new(spec: ClusterSpec, manager: Box<dyn Manager>, config: SimConfig) -> Simulation {
        assert!(config.tick_s > 0.0, "tick must be positive");
        let world = World::new(
            ClusterState::new(spec),
            config.tick_s,
            config.noise,
            config.metrics_interval_s,
            config.seed,
        );
        Simulation {
            world,
            manager,
            events: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules a workload submission at time `at_s`.
    ///
    /// # Panics
    ///
    /// Panics if `at_s` is in the past.
    pub fn submit_at(&mut self, workload: Workload, at_s: f64) {
        assert!(at_s >= self.world.now(), "cannot submit in the past");
        self.push(at_s, EventKind::Arrival(Box::new(workload)));
    }

    /// Schedules a phase change for a workload at time `at_s`.
    pub fn schedule_phase_change(&mut self, id: WorkloadId, at_s: f64, change: PhaseChange) {
        assert!(at_s >= self.world.now(), "cannot schedule in the past");
        self.push(at_s, EventKind::Phase(id, change));
    }

    fn push(&mut self, time_s: f64, kind: EventKind) {
        debug_assert!(
            time_s.is_finite(),
            "event scheduled at non-finite time {time_s}"
        );
        self.events.push(Event {
            time_s,
            seq: self.next_seq,
            kind,
        });
        self.next_seq += 1;
    }

    /// The simulated world (for inspection and result extraction).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access, for test harnesses that drive the world
    /// directly.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The manager's report name.
    pub fn manager_name(&self) -> String {
        self.manager.name().to_string()
    }

    /// Runs the simulation until `t_end_s` (inclusive of the final tick).
    ///
    /// Each iteration: deliver due events (arrivals → `on_arrival`, phase
    /// changes → world mutation), advance physics one tick, notify
    /// completions, then give the manager its periodic `on_tick`.
    ///
    /// Tick instants are computed as `start + k * tick_s` by integer tick
    /// index `k` — not by repeated `+= tick_s` accumulation, which for
    /// non-dyadic ticks (0.1, 0.3, ...) drifts and over/undershoots the
    /// horizon. The final step clamps to `t_end_s`, so after the call
    /// `world().now() == t_end_s` holds bitwise whenever the clock moved.
    pub fn run_until(&mut self, t_end_s: f64) {
        let tick = self.world.tick_s();
        let start = self.world.now();
        let mut k: u64 = 0;
        while self.world.now() + 1e-9 < t_end_s {
            let now = self.world.now();
            // Deliver events due by the end of this tick.
            while self
                .events
                .peek()
                .map(|e| e.time_s <= now + 1e-9)
                .unwrap_or(false)
            {
                let event = self.events.pop().expect("peeked");
                match event.kind {
                    EventKind::Arrival(workload) => {
                        let id = workload.id();
                        self.world.submit(*workload);
                        self.manager.on_arrival(&mut self.world, id);
                    }
                    EventKind::Phase(id, change) => match change {
                        PhaseChange::RateFactor(f) => self.world.apply_phase_rate(id, f),
                        PhaseChange::Interference(p) => self.world.apply_phase_interference(id, p),
                    },
                }
            }

            k += 1;
            let next = (start + k as f64 * tick).min(t_end_s);
            let completed = self.world.advance_to(next);
            for id in completed {
                self.manager.on_completion(&mut self.world, id);
            }
            self.manager.on_tick(&mut self.world);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::NullManager;
    use crate::placement::NodeAlloc;
    use crate::world::JobState;
    use quasar_workloads::generate::Generator;
    use quasar_workloads::{
        Dataset, FrameworkParams, NodeResources, PlatformCatalog, Priority, WorkloadClass,
    };

    /// A manager that places every arrival on the emptiest server at full
    /// size, for driver tests.
    struct GreedyFullServer;

    impl Manager for GreedyFullServer {
        fn name(&self) -> &str {
            "greedy-full"
        }

        fn on_arrival(&mut self, world: &mut World, id: WorkloadId) {
            let sid = world
                .servers()
                .iter()
                .filter(|s| s.used_cores() == 0)
                .max_by_key(|s| s.total_cores())
                .map(|s| s.id());
            if let Some(sid) = sid {
                let platform = world.platform_of(sid);
                let res = NodeResources::all_of(platform);
                let _ = world.place(
                    id,
                    vec![NodeAlloc::immediate(sid, res)],
                    FrameworkParams::default(),
                );
            }
        }

        fn on_tick(&mut self, _world: &mut World) {}

        fn on_completion(&mut self, _world: &mut World, _id: WorkloadId) {}
    }

    fn sim(manager: Box<dyn Manager>) -> Simulation {
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 1);
        Simulation::new(
            spec,
            manager,
            SimConfig {
                noise: 0.0,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut s = sim(Box::new(NullManager));
        s.run_until(33.0);
        assert_eq!(s.world().now(), 33.0);
    }

    #[test]
    fn non_dyadic_tick_lands_on_horizon_bitwise() {
        // Regression: repeated `now += 0.1` accumulates rounding error
        // (330 * 0.1 != 33.0 in binary), so the old driver either
        // overshot the horizon or stopped an epsilon short. Integer tick
        // indexing must land exactly, including across successive calls
        // that resume from a non-representable instant.
        let spec = ClusterSpec::uniform(PlatformCatalog::local(), 1);
        let mut s = Simulation::new(
            spec,
            Box::new(NullManager),
            SimConfig {
                tick_s: 0.1,
                noise: 0.0,
                ..SimConfig::default()
            },
        );
        s.run_until(33.0);
        assert_eq!(s.world().now(), 33.0);
        s.run_until(47.5);
        assert_eq!(s.world().now(), 47.5);
        s.run_until(47.65);
        assert_eq!(s.world().now(), 47.65);
    }

    #[test]
    fn arrivals_are_delivered_in_order() {
        let mut s = sim(Box::new(GreedyFullServer));
        let mut generator = Generator::new(PlatformCatalog::local(), 1);
        let a = generator.analytics_job(
            WorkloadClass::Hadoop,
            "a",
            Dataset::new("d", 5.0, 1.0),
            1,
            300.0,
            Priority::Guaranteed,
        );
        let b = generator.analytics_job(
            WorkloadClass::Hadoop,
            "b",
            Dataset::new("d", 5.0, 1.0),
            1,
            300.0,
            Priority::Guaranteed,
        );
        let (ida, idb) = (a.id(), b.id());
        s.submit_at(a, 10.0);
        s.submit_at(b, 20.0);
        s.run_until(15.0);
        assert_eq!(s.world().state(ida), JobState::Running);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { s.world().state(idb) }))
                .is_err(),
            "b not yet submitted"
        );
        s.run_until(25.0);
        assert_eq!(s.world().state(idb), JobState::Running);
    }

    #[test]
    fn phase_change_slows_a_job() {
        let mut s = sim(Box::new(GreedyFullServer));
        let mut generator = Generator::new(PlatformCatalog::local(), 2);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "a",
            Dataset::new("d", 5.0, 1.0),
            1,
            500.0,
            Priority::Guaranteed,
        );
        let id = job.id();
        s.submit_at(job, 0.0);
        s.schedule_phase_change(id, 50.0, PhaseChange::RateFactor(0.01));
        s.run_until(49.0);
        let before = match s.world().observation(id).unwrap() {
            crate::observe::Observation::Batch { rate, .. } => rate,
            _ => unreachable!(),
        };
        s.run_until(60.0);
        let after = match s.world().observation(id).unwrap() {
            crate::observe::Observation::Batch { rate, .. } => rate,
            _ => unreachable!(),
        };
        assert!(after < before * 0.1, "phase change must slow the job");
    }

    #[test]
    fn completions_notify_manager_and_free_resources() {
        struct CountCompletions(std::rc::Rc<std::cell::Cell<usize>>);
        impl Manager for CountCompletions {
            fn name(&self) -> &str {
                "count"
            }
            fn on_arrival(&mut self, world: &mut World, id: WorkloadId) {
                GreedyFullServer.on_arrival(world, id);
            }
            fn on_tick(&mut self, _world: &mut World) {}
            fn on_completion(&mut self, _world: &mut World, _id: WorkloadId) {
                self.0.set(self.0.get() + 1);
            }
        }
        let counter = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut s = sim(Box::new(CountCompletions(counter.clone())));
        let mut generator = Generator::new(PlatformCatalog::local(), 3);
        let job = generator.analytics_job(
            WorkloadClass::Hadoop,
            "a",
            Dataset::new("d", 2.0, 1.0),
            1,
            120.0,
            Priority::Guaranteed,
        );
        s.submit_at(job, 0.0);
        s.run_until(5_000.0);
        assert_eq!(counter.get(), 1, "exactly one completion callback");
        assert_eq!(s.world().used_cores(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot submit in the past")]
    fn past_submission_panics() {
        let mut s = sim(Box::new(NullManager));
        s.run_until(10.0);
        let mut generator = Generator::new(PlatformCatalog::local(), 4);
        let job = generator.single_node_job("x", 60.0, Priority::BestEffort);
        s.submit_at(job, 5.0);
    }
}
