//! Simulated servers.

use std::fmt;

use quasar_workloads::{NodeResources, Platform, PlatformId};

/// Identifier of a server within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub usize);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One physical server: a platform instance plus bookkeeping of the
/// resources currently committed to placements.
///
/// # Examples
///
/// ```
/// use quasar_cluster::{Server, ServerId};
/// use quasar_workloads::{NodeResources, PlatformCatalog};
///
/// let catalog = PlatformCatalog::local();
/// let platform = catalog.highest_end();
/// let mut server = Server::new(ServerId(0), platform);
/// assert!(server.fits(NodeResources::new(platform.cores, platform.memory_gb)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Server {
    id: ServerId,
    platform: PlatformId,
    total_cores: u32,
    total_memory_gb: f64,
    used_cores: u32,
    used_memory_gb: f64,
}

impl Server {
    /// Creates a server of the given platform.
    pub fn new(id: ServerId, platform: &Platform) -> Server {
        Server {
            id,
            platform: platform.id,
            total_cores: platform.cores,
            total_memory_gb: platform.memory_gb,
            used_cores: 0,
            used_memory_gb: 0.0,
        }
    }

    /// Server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Platform id of this server.
    pub fn platform(&self) -> PlatformId {
        self.platform
    }

    /// Total cores.
    pub fn total_cores(&self) -> u32 {
        self.total_cores
    }

    /// Total memory in GB.
    pub fn total_memory_gb(&self) -> f64 {
        self.total_memory_gb
    }

    /// Cores currently committed.
    pub fn used_cores(&self) -> u32 {
        self.used_cores
    }

    /// Memory currently committed, in GB.
    pub fn used_memory_gb(&self) -> f64 {
        self.used_memory_gb
    }

    /// Free cores.
    pub fn free_cores(&self) -> u32 {
        self.total_cores - self.used_cores
    }

    /// Free memory in GB.
    pub fn free_memory_gb(&self) -> f64 {
        (self.total_memory_gb - self.used_memory_gb).max(0.0)
    }

    /// Whether an allocation fits in the remaining capacity.
    pub fn fits(&self, res: NodeResources) -> bool {
        res.cores <= self.free_cores() && res.memory_gb <= self.free_memory_gb() + 1e-9
    }

    /// Fraction of cores committed, in `[0, 1]`.
    pub fn core_commit_fraction(&self) -> f64 {
        self.used_cores as f64 / self.total_cores as f64
    }

    /// Commits an allocation.
    ///
    /// # Panics
    ///
    /// Panics if the allocation does not fit; callers must check
    /// [`Server::fits`] first (the cluster does).
    pub(crate) fn commit(&mut self, res: NodeResources) {
        assert!(self.fits(res), "allocation exceeds server capacity");
        self.used_cores += res.cores;
        self.used_memory_gb += res.memory_gb;
    }

    /// Releases a previously committed allocation.
    ///
    /// # Panics
    ///
    /// Panics if more is released than was committed.
    pub(crate) fn release(&mut self, res: NodeResources) {
        assert!(
            res.cores <= self.used_cores && res.memory_gb <= self.used_memory_gb + 1e-6,
            "releasing more than committed"
        );
        self.used_cores -= res.cores;
        self.used_memory_gb = (self.used_memory_gb - res.memory_gb).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_workloads::PlatformCatalog;

    fn server() -> Server {
        let catalog = PlatformCatalog::local();
        Server::new(ServerId(3), catalog.by_name("J").unwrap())
    }

    #[test]
    fn commit_and_release_round_trip() {
        let mut s = server();
        let r = NodeResources::new(8, 16.0);
        s.commit(r);
        assert_eq!(s.free_cores(), 16);
        assert_eq!(s.free_memory_gb(), 32.0);
        s.release(r);
        assert_eq!(s.free_cores(), 24);
        assert_eq!(s.used_memory_gb(), 0.0);
    }

    #[test]
    fn fits_checks_both_dimensions() {
        let mut s = server();
        s.commit(NodeResources::new(20, 8.0));
        assert!(!s.fits(NodeResources::new(8, 1.0)), "cores exhausted");
        assert!(!s.fits(NodeResources::new(1, 48.0)), "memory exhausted");
        assert!(s.fits(NodeResources::new(4, 40.0)));
    }

    #[test]
    #[should_panic(expected = "exceeds server capacity")]
    fn overcommit_panics() {
        let mut s = server();
        s.commit(NodeResources::new(25, 1.0));
    }

    #[test]
    #[should_panic(expected = "releasing more than committed")]
    fn over_release_panics() {
        let mut s = server();
        s.release(NodeResources::new(1, 1.0));
    }

    #[test]
    fn commit_fraction() {
        let mut s = server();
        s.commit(NodeResources::new(12, 4.0));
        assert!((s.core_commit_fraction() - 0.5).abs() < 1e-12);
    }
}
