//! The manager trait implemented by Quasar and every baseline.

use quasar_workloads::WorkloadId;

use crate::world::World;

/// A cluster manager: reacts to workload arrivals, periodic ticks, and
/// batch completions by placing, resizing, and evicting workloads through
/// the [`World`] API.
///
/// Implementations must only use the measurement-bounded `World` methods
/// (observations, profiling, probes) — never workload ground truth — to
/// preserve the paper's evaluation methodology.
pub trait Manager {
    /// A short name for reports.
    fn name(&self) -> &str;

    /// Called once when a workload is submitted. The workload is pending;
    /// the manager may profile it and place it now, or defer to a later
    /// tick (e.g. admission control).
    fn on_arrival(&mut self, world: &mut World, id: WorkloadId);

    /// Called every simulation tick after physics advanced.
    fn on_tick(&mut self, world: &mut World);

    /// Called when a batch workload completes (resources already freed).
    fn on_completion(&mut self, world: &mut World, id: WorkloadId);
}

/// A manager that never places anything; useful for tests and for driving
/// the world manually.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullManager;

impl Manager for NullManager {
    fn name(&self) -> &str {
        "null"
    }

    fn on_arrival(&mut self, _world: &mut World, _id: WorkloadId) {}

    fn on_tick(&mut self, _world: &mut World) {}

    fn on_completion(&mut self, _world: &mut World, _id: WorkloadId) {}
}
