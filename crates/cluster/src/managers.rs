//! The manager trait implemented by Quasar and every baseline.

use quasar_workloads::{NodeResources, WorkloadId};

use crate::placement::NodeAlloc;
use crate::world::{JobState, World};

/// A cluster manager: reacts to workload arrivals, periodic ticks, and
/// batch completions by placing, resizing, and evicting workloads through
/// the [`World`] API.
///
/// Implementations must only use the measurement-bounded `World` methods
/// (observations, profiling, probes) — never workload ground truth — to
/// preserve the paper's evaluation methodology.
pub trait Manager {
    /// A short name for reports.
    fn name(&self) -> &str;

    /// Called once when a workload is submitted. The workload is pending;
    /// the manager may profile it and place it now, or defer to a later
    /// tick (e.g. admission control).
    fn on_arrival(&mut self, world: &mut World, id: WorkloadId);

    /// Called every simulation tick after physics advanced.
    fn on_tick(&mut self, world: &mut World);

    /// Called when a batch workload completes (resources already freed).
    fn on_completion(&mut self, world: &mut World, id: WorkloadId);

    /// Whether this manager's [`on_tick`](Manager::on_tick) does
    /// observable work even when the world is idle (no running and no
    /// pending workloads) — e.g. wall-clock-style timers that fire
    /// adaptation sweeps. Defaults to `true`, which keeps every tick: a
    /// driver may only fast-forward idle spans for managers that return
    /// `false`, i.e. whose idle `on_tick` is a no-op.
    fn needs_idle_ticks(&self) -> bool {
        true
    }
}

/// A stateless FIFO greedy baseline: places pending workloads in id
/// order, each onto the first server with room for a fixed
/// cores/memory slice, and stops at the first workload that does not
/// fit (strict FIFO head-of-line blocking, so placement order is
/// deterministic). It keeps no state of its own — every decision is
/// derived from the world each call — which makes it safe to resume
/// from a [`snapshot`](crate::snapshot): the `bench-sim` harness and
/// the snapshot tests both drive it.
#[derive(Debug, Clone, Copy)]
pub struct FifoGreedy {
    slice: NodeResources,
}

impl FifoGreedy {
    /// A FIFO greedy manager that allocates every workload a single
    /// `cores` × `memory_gb` node slice.
    pub fn new(cores: u32, memory_gb: f64) -> FifoGreedy {
        FifoGreedy {
            slice: NodeResources::new(cores, memory_gb),
        }
    }

    fn try_place(&self, world: &mut World, id: WorkloadId) -> bool {
        let slice = self.slice;
        let sid = world
            .servers()
            .iter()
            .find(|s| s.free_cores() >= slice.cores && s.free_memory_gb() >= slice.memory_gb)
            .map(|s| s.id());
        match sid {
            Some(sid) => world
                .place(
                    id,
                    vec![NodeAlloc::immediate(sid, slice)],
                    quasar_workloads::FrameworkParams::default(),
                )
                .is_ok(),
            None => false,
        }
    }
}

impl Manager for FifoGreedy {
    fn name(&self) -> &str {
        "fifo-greedy"
    }

    fn on_arrival(&mut self, world: &mut World, id: WorkloadId) {
        self.try_place(world, id);
    }

    fn on_tick(&mut self, world: &mut World) {
        for id in world.ids_in_state(JobState::Pending) {
            if !self.try_place(world, id) {
                break;
            }
        }
    }

    fn on_completion(&mut self, _world: &mut World, _id: WorkloadId) {}

    // Pending work is visible in the world, so an idle world means an
    // idle manager: idle spans may be fast-forwarded.
    fn needs_idle_ticks(&self) -> bool {
        false
    }
}

/// A manager that never places anything; useful for tests and for driving
/// the world manually.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullManager;

impl Manager for NullManager {
    fn name(&self) -> &str {
        "null"
    }

    fn on_arrival(&mut self, _world: &mut World, _id: WorkloadId) {}

    fn on_tick(&mut self, _world: &mut World) {}

    fn on_completion(&mut self, _world: &mut World, _id: WorkloadId) {}

    fn needs_idle_ticks(&self) -> bool {
        false
    }
}
