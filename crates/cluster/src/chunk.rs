//! Chunked journal persistence: the journal streams through fixed-size
//! sealed chunks behind a [`ChunkProvider`], so a month-long run's
//! decision history is bounded in memory and replayable from storage.
//!
//! A sealed chunk is a line-oriented text block: one index header
//! followed by one line per event. Times are serialized as the hex of
//! their IEEE-754 bits, so a chunk round-trips *bit-exactly* — replaying
//! a stored stream folds to the same digest the live run produced.
//!
//! # Examples
//!
//! ```
//! use quasar_cluster::chunk::{ChunkProvider, MemoryChunks, SealedChunk};
//! use quasar_cluster::journal::JournalEvent;
//! use quasar_workloads::WorkloadId;
//!
//! let chunk = SealedChunk {
//!     index: 0,
//!     events: vec![(1.5, JournalEvent::Completed { workload: WorkloadId(7) })],
//! };
//! let mut store = MemoryChunks::new();
//! store.store(&chunk).unwrap();
//! assert_eq!(store.load(0).unwrap().unwrap(), chunk);
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use quasar_workloads::{NodeResources, WorkloadId};

use crate::journal::JournalEvent;
use crate::server::ServerId;

/// Schema tag carried by every sealed chunk's header line.
pub const CHUNK_SCHEMA: &str = "quasar.journal.chunk.v1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one serialized event line (without trailing newline) into a
/// running FNV-1a digest. A `\n` byte is folded after the line so the
/// digest is a digest of the byte stream, independent of how lines are
/// grouped into chunks.
pub fn fold_line(mut digest: u64, line: &str) -> u64 {
    for byte in line.bytes().chain(std::iter::once(b'\n')) {
        digest ^= byte as u64;
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// The FNV-1a offset basis — the digest of an empty stream.
pub fn digest_seed() -> u64 {
    FNV_OFFSET
}

pub(crate) fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

pub(crate) fn parse_bits(s: &str) -> io::Result<f64> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| bad(format!("bad f64 bits: {s:?}")))
}

pub(crate) fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

pub(crate) fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> io::Result<T> {
    s.parse()
        .map_err(|_| bad(format!("bad {what} field: {s:?}")))
}

/// Serializes one `(time, event)` pair as a single line (no newline).
///
/// Format: `<time bits> <kind> <fields...>`, all space-separated; floats
/// travel as hex bit patterns.
pub fn serialize_event(at_s: f64, event: &JournalEvent) -> String {
    let mut line = format!("{} {}", bits(at_s), event.kind());
    match event {
        JournalEvent::Placed {
            workload,
            nodes,
            cores,
            delay_s,
        } => {
            let _ = write!(
                line,
                " {} {} {} {}",
                workload.0,
                nodes,
                cores,
                bits(*delay_s)
            );
        }
        JournalEvent::Evicted { workload, requeued } => {
            let _ = write!(line, " {} {}", workload.0, u8::from(*requeued));
        }
        JournalEvent::NodeAdded {
            workload,
            server,
            resources,
        }
        | JournalEvent::NodeResized {
            workload,
            server,
            resources,
        } => {
            let _ = write!(
                line,
                " {} {} {} {}",
                workload.0,
                server.0,
                resources.cores,
                bits(resources.memory_gb)
            );
        }
        JournalEvent::NodeRemoved { workload, server } => {
            let _ = write!(line, " {} {}", workload.0, server.0);
        }
        JournalEvent::ParamsSet { workload } | JournalEvent::Completed { workload } => {
            let _ = write!(line, " {}", workload.0);
        }
        JournalEvent::IsolationSet { workload, isolated } => {
            let _ = write!(line, " {} {}", workload.0, u8::from(*isolated));
        }
        JournalEvent::QosEpisode {
            workload,
            cause,
            start_s,
            duration_s,
            peak_depth,
        } => {
            let _ = write!(
                line,
                " {} {} {} {} {}",
                workload.0,
                cause.as_str(),
                bits(*start_s),
                bits(*duration_s),
                bits(*peak_depth)
            );
        }
    }
    line
}

/// Parses one line produced by [`serialize_event`].
///
/// # Errors
///
/// Fails with `InvalidData` on unknown kinds or malformed fields.
pub fn parse_event(line: &str) -> io::Result<(f64, JournalEvent)> {
    let mut f = line.split(' ');
    let mut next = |what: &str| f.next().ok_or_else(|| bad(format!("missing {what}")));
    let at_s = parse_bits(next("time")?)?;
    let kind = next("kind")?;
    let event = match kind {
        "placed" => JournalEvent::Placed {
            workload: WorkloadId(parse_num(next("workload")?, "workload")?),
            nodes: parse_num(next("nodes")?, "nodes")?,
            cores: parse_num(next("cores")?, "cores")?,
            delay_s: parse_bits(next("delay")?)?,
        },
        "evicted" => JournalEvent::Evicted {
            workload: WorkloadId(parse_num(next("workload")?, "workload")?),
            requeued: parse_num::<u8>(next("requeued")?, "requeued")? != 0,
        },
        "node_added" | "node_resized" => {
            let workload = WorkloadId(parse_num(next("workload")?, "workload")?);
            let server = ServerId(parse_num(next("server")?, "server")?);
            let resources = NodeResources::new(
                parse_num(next("cores")?, "cores")?,
                parse_bits(next("memory")?)?,
            );
            if kind == "node_added" {
                JournalEvent::NodeAdded {
                    workload,
                    server,
                    resources,
                }
            } else {
                JournalEvent::NodeResized {
                    workload,
                    server,
                    resources,
                }
            }
        }
        "node_removed" => JournalEvent::NodeRemoved {
            workload: WorkloadId(parse_num(next("workload")?, "workload")?),
            server: ServerId(parse_num(next("server")?, "server")?),
        },
        "params_set" => JournalEvent::ParamsSet {
            workload: WorkloadId(parse_num(next("workload")?, "workload")?),
        },
        "isolation_set" => JournalEvent::IsolationSet {
            workload: WorkloadId(parse_num(next("workload")?, "workload")?),
            isolated: parse_num::<u8>(next("isolated")?, "isolated")? != 0,
        },
        "completed" => JournalEvent::Completed {
            workload: WorkloadId(parse_num(next("workload")?, "workload")?),
        },
        "qos_episode" => {
            let workload = WorkloadId(parse_num(next("workload")?, "workload")?);
            let cause_tag = next("cause")?;
            let cause = crate::qos::QosCause::parse(cause_tag)
                .ok_or_else(|| bad(format!("unknown qos cause: {cause_tag:?}")))?;
            JournalEvent::QosEpisode {
                workload,
                cause,
                start_s: parse_bits(next("start")?)?,
                duration_s: parse_bits(next("duration")?)?,
                peak_depth: parse_bits(next("depth")?)?,
            }
        }
        other => return Err(bad(format!("unknown event kind: {other:?}"))),
    };
    Ok((at_s, event))
}

/// A fixed slice of the journal stream, sealed and ready for storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedChunk {
    /// Position of this chunk in the stream (0-based, contiguous).
    pub index: u64,
    /// The `(time, event)` pairs, in record order. Never empty.
    pub events: Vec<(f64, JournalEvent)>,
}

impl SealedChunk {
    /// Time of the first event in the chunk.
    pub fn first_s(&self) -> f64 {
        self.events.first().map(|(t, _)| *t).unwrap_or(f64::NAN)
    }

    /// Time of the last event in the chunk.
    pub fn last_s(&self) -> f64 {
        self.events.last().map(|(t, _)| *t).unwrap_or(f64::NAN)
    }

    /// Renders the chunk as its stored text form: an index header line
    /// (`quasar.journal.chunk.v1 index=N events=M first=<bits>
    /// last=<bits>`) followed by one event line each.
    pub fn serialize(&self) -> String {
        let mut out = format!(
            "{CHUNK_SCHEMA} index={} events={} first={} last={}\n",
            self.index,
            self.events.len(),
            bits(self.first_s()),
            bits(self.last_s()),
        );
        for (t, e) in &self.events {
            out.push_str(&serialize_event(*t, e));
            out.push('\n');
        }
        out
    }

    /// Parses a chunk from its stored text form, validating the header
    /// against the body.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on schema mismatch, malformed lines, or
    /// a header that disagrees with the events that follow.
    pub fn parse(text: &str) -> io::Result<SealedChunk> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty chunk".into()))?;
        let mut fields = header.split(' ');
        if fields.next() != Some(CHUNK_SCHEMA) {
            return Err(bad(format!("bad chunk schema in header: {header:?}")));
        }
        let mut field = |name: &str| -> io::Result<&str> {
            let f = fields
                .next()
                .ok_or_else(|| bad(format!("missing header field {name}")))?;
            f.strip_prefix(name)
                .and_then(|f| f.strip_prefix('='))
                .ok_or_else(|| bad(format!("expected header field {name}, got {f:?}")))
        };
        let index: u64 = parse_num(field("index")?, "index")?;
        let count: usize = parse_num(field("events")?, "events")?;
        let first = parse_bits(field("first")?)?;
        let last = parse_bits(field("last")?)?;
        let events: Vec<(f64, JournalEvent)> = lines.map(parse_event).collect::<io::Result<_>>()?;
        let chunk = SealedChunk { index, events };
        if chunk.events.len() != count
            || chunk.first_s().to_bits() != first.to_bits()
            || chunk.last_s().to_bits() != last.to_bits()
        {
            return Err(bad(format!(
                "chunk header disagrees with body: {header:?} vs {} events [{}, {}]",
                chunk.events.len(),
                chunk.first_s(),
                chunk.last_s(),
            )));
        }
        Ok(chunk)
    }
}

/// Storage backend for sealed journal chunks.
///
/// Providers own durability and lookup; the journal owns sealing and
/// digests. Implementations must store chunks retrievably by their
/// stream index.
pub trait ChunkProvider: Send {
    /// Persists a sealed chunk.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    fn store(&mut self, chunk: &SealedChunk) -> io::Result<()>;

    /// Loads the chunk at `index`, or `None` past the end of the stream.
    ///
    /// # Errors
    ///
    /// Propagates storage failures and corrupt-chunk parse errors.
    fn load(&self, index: u64) -> io::Result<Option<SealedChunk>>;

    /// Number of chunks stored.
    fn count(&self) -> u64;
}

/// In-memory provider: keeps every chunk in its serialized text form
/// (so store→load still exercises the full parse path). For tests and
/// short runs.
#[derive(Debug, Default)]
pub struct MemoryChunks {
    chunks: Vec<String>,
}

impl MemoryChunks {
    /// An empty in-memory chunk store.
    pub fn new() -> MemoryChunks {
        MemoryChunks::default()
    }
}

impl ChunkProvider for MemoryChunks {
    fn store(&mut self, chunk: &SealedChunk) -> io::Result<()> {
        if chunk.index != self.chunks.len() as u64 {
            return Err(bad(format!(
                "chunk {} stored out of order (have {})",
                chunk.index,
                self.chunks.len()
            )));
        }
        self.chunks.push(chunk.serialize());
        Ok(())
    }

    fn load(&self, index: u64) -> io::Result<Option<SealedChunk>> {
        match self.chunks.get(index as usize) {
            Some(text) => SealedChunk::parse(text).map(Some),
            None => Ok(None),
        }
    }

    fn count(&self) -> u64 {
        self.chunks.len() as u64
    }
}

/// File-backed provider: one `chunk-NNNNNNNN.qjc` text file per chunk
/// in a directory. Memory use is one open chunk regardless of run
/// length.
#[derive(Debug)]
pub struct FileChunks {
    dir: PathBuf,
    count: u64,
}

impl FileChunks {
    /// Opens (creating if needed) a chunk directory, resuming the count
    /// from the files already present.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or scanned.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<FileChunks> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut count = 0;
        while dir.join(chunk_file(count)).exists() {
            count += 1;
        }
        Ok(FileChunks { dir, count })
    }

    /// The directory chunks are stored in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

fn chunk_file(index: u64) -> String {
    format!("chunk-{index:08}.qjc")
}

impl ChunkProvider for FileChunks {
    fn store(&mut self, chunk: &SealedChunk) -> io::Result<()> {
        if chunk.index != self.count {
            return Err(bad(format!(
                "chunk {} stored out of order (have {})",
                chunk.index, self.count
            )));
        }
        std::fs::write(self.dir.join(chunk_file(chunk.index)), chunk.serialize())?;
        self.count += 1;
        Ok(())
    }

    fn load(&self, index: u64) -> io::Result<Option<SealedChunk>> {
        let path = self.dir.join(chunk_file(index));
        match std::fs::read_to_string(&path) {
            Ok(text) => SealedChunk::parse(&text).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn count(&self) -> u64 {
        self.count
    }
}

/// Replays every chunk in a provider, folding each event line into a
/// digest exactly as the live stream did. Equal digests mean the stored
/// stream is byte-identical to the one the run journaled.
///
/// # Errors
///
/// Propagates provider load failures.
pub fn replay_digest(provider: &dyn ChunkProvider) -> io::Result<u64> {
    let mut digest = FNV_OFFSET;
    let mut events = 0u64;
    for index in 0..provider.count() {
        let chunk = provider
            .load(index)
            .and_then(|c| c.ok_or_else(|| bad(format!("missing chunk {index}"))))?;
        for (t, e) in &chunk.events {
            digest = fold_line(digest, &serialize_event(*t, e));
            events += 1;
        }
    }
    let _ = events;
    Ok(digest)
}

/// Replays every chunk into one flat `(time, event)` stream.
///
/// # Errors
///
/// Propagates provider load failures.
pub fn replay(provider: &dyn ChunkProvider) -> io::Result<Vec<(f64, JournalEvent)>> {
    let mut out = Vec::new();
    for index in 0..provider.count() {
        let chunk = provider
            .load(index)
            .and_then(|c| c.ok_or_else(|| bad(format!("missing chunk {index}"))))?;
        out.extend(chunk.events);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<(f64, JournalEvent)> {
        vec![
            (
                0.1 + 0.2, // deliberately non-representable sum
                JournalEvent::Placed {
                    workload: WorkloadId(3),
                    nodes: 2,
                    cores: 16,
                    delay_s: 30.5,
                },
            ),
            (
                1.0,
                JournalEvent::Evicted {
                    workload: WorkloadId(3),
                    requeued: true,
                },
            ),
            (
                2.0,
                JournalEvent::NodeAdded {
                    workload: WorkloadId(4),
                    server: ServerId(1),
                    resources: NodeResources::new(4, 7.3),
                },
            ),
            (
                3.0,
                JournalEvent::NodeRemoved {
                    workload: WorkloadId(4),
                    server: ServerId(1),
                },
            ),
            (
                4.0,
                JournalEvent::NodeResized {
                    workload: WorkloadId(4),
                    server: ServerId(2),
                    resources: NodeResources::new(8, 16.0),
                },
            ),
            (
                5.0,
                JournalEvent::ParamsSet {
                    workload: WorkloadId(4),
                },
            ),
            (
                6.0,
                JournalEvent::IsolationSet {
                    workload: WorkloadId(4),
                    isolated: false,
                },
            ),
            (
                7.0,
                JournalEvent::Completed {
                    workload: WorkloadId(3),
                },
            ),
            (
                8.0,
                JournalEvent::QosEpisode {
                    workload: WorkloadId(3),
                    cause: crate::qos::QosCause::QueueWait,
                    start_s: 2.5,
                    duration_s: 4.5,
                    peak_depth: 0.625,
                },
            ),
        ]
    }

    #[test]
    fn every_event_kind_round_trips_bitwise() {
        for (t, e) in sample_events() {
            let line = serialize_event(t, &e);
            let (t2, e2) = parse_event(&line).unwrap();
            assert_eq!(t.to_bits(), t2.to_bits(), "time bits for {line}");
            assert_eq!(e, e2, "event for {line}");
        }
    }

    #[test]
    fn sealed_chunk_round_trips_through_text() {
        let chunk = SealedChunk {
            index: 5,
            events: sample_events(),
        };
        let text = chunk.serialize();
        assert!(text.starts_with("quasar.journal.chunk.v1 index=5 events=9 "));
        let parsed = SealedChunk::parse(&text).unwrap();
        assert_eq!(parsed, chunk);
    }

    #[test]
    fn header_body_disagreement_is_rejected() {
        let chunk = SealedChunk {
            index: 0,
            events: sample_events(),
        };
        let mut text = chunk.serialize();
        // Drop the last event line; the header still claims 9 events.
        text.truncate(text.trim_end().rfind('\n').unwrap() + 1);
        assert!(SealedChunk::parse(&text).is_err());
    }

    #[test]
    fn memory_provider_round_trips_and_orders() {
        let mut store = MemoryChunks::new();
        let a = SealedChunk {
            index: 0,
            events: sample_events(),
        };
        store.store(&a).unwrap();
        assert!(
            store
                .store(&SealedChunk {
                    index: 7,
                    events: sample_events(),
                })
                .is_err(),
            "out-of-order store must fail"
        );
        assert_eq!(store.count(), 1);
        assert_eq!(store.load(0).unwrap().unwrap(), a);
        assert!(store.load(1).unwrap().is_none());
    }

    #[test]
    fn file_provider_persists_and_reopens() {
        let dir = std::env::temp_dir().join(format!("quasar-chunks-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = FileChunks::open(&dir).unwrap();
        for index in 0..3 {
            store
                .store(&SealedChunk {
                    index,
                    events: sample_events(),
                })
                .unwrap();
        }
        assert_eq!(store.count(), 3);
        // Reopen resumes the count from disk.
        let reopened = FileChunks::open(&dir).unwrap();
        assert_eq!(reopened.count(), 3);
        assert_eq!(reopened.load(2).unwrap().unwrap().index, 2);
        let live: u64 = {
            let mut d = digest_seed();
            for _ in 0..3 {
                for (t, e) in sample_events() {
                    d = fold_line(d, &serialize_event(t, &e));
                }
            }
            d
        };
        assert_eq!(replay_digest(&reopened).unwrap(), live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_is_chunk_boundary_independent() {
        let events = sample_events();
        let mut one = MemoryChunks::new();
        one.store(&SealedChunk {
            index: 0,
            events: events.clone(),
        })
        .unwrap();
        let mut many = MemoryChunks::new();
        for (i, (t, e)) in events.iter().enumerate() {
            many.store(&SealedChunk {
                index: i as u64,
                events: vec![(*t, e.clone())],
            })
            .unwrap();
        }
        assert_eq!(
            replay_digest(&one).unwrap(),
            replay_digest(&many).unwrap(),
            "digest covers the line stream, not the chunking"
        );
    }
}
